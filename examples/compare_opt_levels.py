#!/usr/bin/env python3
"""The embedded-systems motivation (Section I / Fig. 1): compare O0..Oz on
a benchmark suite for size and the MCA runtime proxy, on both targets.

Run:  python examples/compare_opt_levels.py [suite]
      (suite: mibench | spec2006 | spec2017; default mibench)
"""

import sys

from repro import load_suite
from repro.codegen import object_size
from repro.mca import estimate_throughput
from repro.passes import OPT_LEVELS, build_pipeline


def main() -> None:
    suite_name = sys.argv[1] if len(sys.argv) > 1 else "mibench"
    suite = load_suite(suite_name)
    print(f"== {suite_name}: {len(suite)} benchmarks ==\n")

    for target in ("x86-64", "aarch64"):
        print(f"--- {target} ---")
        header = f"{'benchmark':16}" + "".join(f"{lvl:>12}" for lvl in OPT_LEVELS)
        print(header + "   (object bytes)")
        totals = {lvl: 0 for lvl in OPT_LEVELS}
        cycle_totals = {lvl: 0.0 for lvl in OPT_LEVELS}
        for name, module in suite:
            row = f"{name:16}"
            for level in OPT_LEVELS:
                copy = module.clone()
                build_pipeline(level).run(copy)
                size = object_size(copy, target).total_bytes
                totals[level] += size
                cycle_totals[level] += estimate_throughput(
                    copy, target
                ).total_cycles
                row += f"{size:12}"
            print(row)
        print(f"{'TOTAL size':16}" + "".join(f"{totals[l]:12}" for l in OPT_LEVELS))
        print(
            f"{'TOTAL cycles':16}"
            + "".join(f"{cycle_totals[l]:12.0f}" for l in OPT_LEVELS)
        )
        o3, oz = totals["O3"], totals["Oz"]
        c3, cz = cycle_totals["O3"], cycle_totals["Oz"]
        print(
            f"\nOz vs O3: {100 * (o3 - oz) / o3:.1f}% smaller, "
            f"{100 * (cz - c3) / c3:.1f}% slower "
            f"(the trade-off POSET-RL attacks)\n"
        )


if __name__ == "__main__":
    main()
