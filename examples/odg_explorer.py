#!/usr/bin/env python3
"""Explore the Oz Dependence Graph (Fig. 4 / Table III).

Prints the ODG's structure, the critical nodes at several thresholds, the
34 generated walks, and then demonstrates *why* sub-sequence ordering
matters: the same program compiled under two hand-picked orderings of the
same actions lands at different sizes and speeds.

Run:  python examples/odg_explorer.py
"""

from repro.codegen import object_size
from repro.core import OzDependenceGraph, PAPER_ODG_SUBSEQUENCES, make_action_space
from repro.mca import estimate_throughput
from repro.workloads import ProgramProfile, generate_program


def show_graph() -> None:
    odg = OzDependenceGraph()
    summary = odg.summary()
    print("== Oz Dependence Graph ==")
    print(f"nodes:   {summary['nodes']} (unique Oz passes)")
    print(f"edges:   {summary['edges']}")
    print(f"critical nodes (degree >= 8): {summary['critical_nodes']}")

    print("\ndegrees at other thresholds:")
    for k in (6, 8, 10, 12):
        nodes = OzDependenceGraph(critical_degree=k).critical_nodes()
        print(f"  k>={k:2}: {nodes}")

    walks = odg.generate_subsequences()
    print(f"\n{len(walks)} generated walks (first five):")
    for walk in walks[:5]:
        print("   -" + " -".join(walk))
    verbatim = {tuple(w) for w in walks} & {
        tuple(s) for s in PAPER_ODG_SUBSEQUENCES
    }
    print(f"{len(verbatim)}/34 match the paper's Table III verbatim")


def show_ordering_sensitivity() -> None:
    print("\n== ordering sensitivity ==")
    module = generate_program(
        ProgramProfile(name="explore", seed=33, segments=8)
    )
    space = make_action_space("odg")

    # The same multiset of actions, two orders: loop work before inlining
    # vs after. (Indices into Table III; 23 = the big inline group,
    # 7 = indvars/idiom/unroll group... see PAPER_ODG_SUBSEQUENCES.)
    orders = {
        "loops-then-inline": [7, 17, 8, 23, 3, 0],
        "inline-then-loops": [23, 3, 0, 7, 17, 8],
    }
    for label, actions in orders.items():
        copy = module.clone()
        for action in actions:
            space.apply(action, copy)
        size = object_size(copy, "x86-64").total_bytes
        cycles = estimate_throughput(copy, "x86-64").total_cycles
        print(f"{label:20} -> size={size:5} B  cycles={cycles:9.1f}")
    print("same actions, different order, different binary — the phase "
          "ordering problem in one screenful.")


if __name__ == "__main__":
    show_graph()
    show_ordering_sensitivity()
