#!/usr/bin/env python3
"""Full POSET-RL training run with the paper's evaluation protocol.

Trains a Double-DQN agent on the llvm-test-suite-like corpus, then
evaluates against -Oz on MiBench / SPEC 2006 / SPEC 2017 and prints
Table IV / Table V style rows. Supports both action spaces and targets.

Run:  python examples/train_posetrl.py --episodes 900 --space odg \
          --target x86-64 --save model.npz
"""

import argparse
import time

from repro import PosetRL, load_suite
from repro.core.presets import paper_config, scaled_config


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=900)
    parser.add_argument("--space", choices=("odg", "manual"), default="odg")
    parser.add_argument("--target", choices=("x86-64", "aarch64"),
                        default="x86-64")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--corpus-size", type=int, default=48,
                        help="programs from the training suite (max 130)")
    parser.add_argument("--paper-hparams", action="store_true",
                        help="use the paper's lr/epsilon schedule instead "
                             "of the laptop-scaled preset (needs far more "
                             "episodes to converge)")
    parser.add_argument("--save", type=str, default=None,
                        help="write the trained Q-network to this .npz")
    args = parser.parse_args()

    config = paper_config() if args.paper_hparams else scaled_config()
    agent = PosetRL(
        action_space=args.space,
        target=args.target,
        seed=args.seed,
        agent_config=config,
    )
    corpus = load_suite("llvm_test_suite")[: args.corpus_size]

    print(f"training: space={args.space} target={args.target} "
          f"episodes={args.episodes} corpus={len(corpus)}")
    start = time.time()

    def progress(stat):
        if (stat.episode + 1) % 100 == 0:
            print(f"  episode {stat.episode + 1:5}: "
                  f"reward={stat.total_reward:7.2f} "
                  f"eps={stat.epsilon:.3f} "
                  f"({time.time() - start:.0f}s)")

    agent.train(corpus, episodes=args.episodes, callback=progress)
    print(f"training done in {time.time() - start:.0f}s\n")

    print(f"{'suite':10} {'min':>8} {'avg':>8} {'max':>8} {'runtime':>9}")
    for suite_name in ("mibench", "spec2006", "spec2017"):
        summary = agent.evaluate_suite(suite_name, load_suite(suite_name))
        row = summary.row()
        print(f"{suite_name:10} {row['min']:8.2f} {row['avg']:8.2f} "
              f"{row['max']:8.2f} {row['runtime']:9.2f}")

    if args.save:
        agent.save(args.save)
        print(f"\nmodel saved to {args.save}")


if __name__ == "__main__":
    main()
