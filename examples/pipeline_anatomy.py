#!/usr/bin/env python3
"""Anatomy of the -Oz pipeline on one program.

Runs the full 90-pass -Oz sequence with statistics collection and shows
which passes did the work: instruction deltas, change counts, time — then
contrasts the fixed pipeline against the POSET-RL sub-sequence view of the
same passes (which groups fire, in Table III terms).

Run:  python examples/pipeline_anatomy.py [seed]
"""

import sys

from repro.codegen import object_size
from repro.core import PAPER_ODG_SUBSEQUENCES, make_action_space
from repro.mca import estimate_throughput
from repro.passes import PassManager
from repro.passes.pipelines import _oz_passes
from repro.workloads import ProgramProfile, generate_program


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    module = generate_program(
        ProgramProfile(name=f"anatomy{seed}", seed=seed, segments=8)
    )
    print(f"program: {module.instruction_count} instructions, "
          f"{object_size(module, 'x86-64').total_bytes} B unoptimized\n")

    manager = PassManager(_oz_passes(), collect_stats=True)
    manager.run(module)
    print("== -Oz pipeline statistics (hottest passes first) ==")
    print(manager.stats.report())
    print(f"\nafter -Oz: {module.instruction_count} instructions, "
          f"{object_size(module, 'x86-64').total_bytes} B, "
          f"{estimate_throughput(module, 'x86-64').total_cycles:.0f} cycles")

    print("\n== the same passes through the POSET-RL action space ==")
    fresh = generate_program(
        ProgramProfile(name=f"anatomy{seed}", seed=seed, segments=8)
    )
    space = make_action_space("odg")
    for index in range(len(space)):
        before = object_size(fresh, "x86-64").total_bytes
        changed = space.apply(index, fresh)
        after = object_size(fresh, "x86-64").total_bytes
        if changed and after != before:
            passes = " -".join(PAPER_ODG_SUBSEQUENCES[index][:4])
            more = "…" if len(PAPER_ODG_SUBSEQUENCES[index]) > 4 else ""
            print(f"  action {index:2} (-{passes}{more}): "
                  f"{before} -> {after} B")
    print(f"\nafter all 34 sub-sequences once: "
          f"{object_size(fresh, 'x86-64').total_bytes} B "
          f"(vs -Oz order above — ordering matters)")


if __name__ == "__main__":
    main()
