#!/usr/bin/env python3
"""Quickstart: the POSET-RL loop in miniature.

Builds a small program, shows the -Oz baseline, trains a Double-DQN agent
for a couple of minutes of CPU, and compares the predicted phase ordering
against -Oz on size and the MCA runtime proxy.

Run:  python examples/quickstart.py
"""

from repro import PosetRL, load_suite
from repro.codegen import object_size
from repro.core.evaluate import optimize_with_oz
from repro.core.presets import quick_config
from repro.ir import parse_module, print_module, run_module
from repro.mca import estimate_throughput
from repro.passes import optimize

SOURCE = """
define i32 @entry(i32 %n) {
entry:
  %buf = alloca [32 x i32], align 4
  br label %zero
zero:
  %i = phi i32 [ 0, %entry ], [ %i2, %zero ]
  %p = gep [32 x i32]* %buf, i32 0, i32 %i
  store i32 0, i32* %p, align 4
  %i2 = add i32 %i, 1
  %zc = icmp slt i32 %i2, 32
  br i1 %zc, label %zero, label %sum
sum:
  br label %loop
loop:
  %j = phi i32 [ 0, %sum ], [ %j2, %loop ]
  %acc = phi i32 [ 0, %sum ], [ %acc2, %loop ]
  %q = gep [32 x i32]* %buf, i32 0, i32 %j
  %v = load i32, i32* %q, align 4
  %t = mul i32 %j, 3
  %u = add i32 %t, %v
  %acc2 = add i32 %acc, %u
  %j2 = add i32 %j, 1
  %c = icmp slt i32 %j2, %n
  br i1 %c, label %loop, label %out
out:
  ret i32 %acc2
}
"""


def describe(tag: str, module) -> None:
    size = object_size(module, "x86-64").total_bytes
    cycles = estimate_throughput(module, "x86-64").total_cycles
    result, _ = run_module(module, "entry", [16])
    print(f"{tag:24} size={size:5} B   cycles={cycles:8.1f}   entry(16)={result}")


def main() -> None:
    module = parse_module(SOURCE)
    print("== one program, three compilers ==")
    describe("unoptimized", module)

    oz = module.clone()
    optimize(oz, "Oz")
    describe("-Oz (fixed order)", oz)

    print("\n== training POSET-RL (ODG action space, ~1 minute) ==")
    corpus = load_suite("llvm_test_suite")[:12]
    agent = PosetRL(action_space="odg", target="x86-64", seed=0,
                    agent_config=quick_config())
    stats = agent.train(corpus, episodes=120)
    tail = stats[-20:]
    print(f"trained {len(stats)} episodes; "
          f"mean reward of last 20: "
          f"{sum(s.total_reward for s in tail) / len(tail):.2f}")

    actions = agent.predict(module)
    print(f"predicted action sequence (Table III indices): {actions}")
    optimized = agent.apply_actions(module, actions)
    describe("POSET-RL predicted", optimized)

    baseline = optimize_with_oz(module, "x86-64")
    agent_size = object_size(optimized, "x86-64").total_bytes
    delta = 100.0 * (baseline["size"] - agent_size) / baseline["size"]
    print(f"\nsize vs -Oz: {delta:+.2f}%  "
          f"({'smaller' if delta > 0 else 'larger'} than the fixed pipeline)")
    print("(a quickstart-sized budget — the benchmark harness trains ~8x "
          "longer; see examples/train_posetrl.py and benchmarks/)")


if __name__ == "__main__":
    main()
