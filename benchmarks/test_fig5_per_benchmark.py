"""Figure 5: per-benchmark runtime and binary size, Oz vs ODG-predicted
sequences, for SPEC CPU 2017 and SPEC CPU 2006 (x86-64, lower is better).

The paper's panels show (a)/(b) runtime in seconds and (c)/(d) binary size
in KB; we emit the same four series with the MCA cycle estimate standing
in for wall-clock seconds. Paper highlights reproduced as shape checks:
most benchmarks shrink, a couple (519.lbm, 464.h264ref in the paper)
regress slightly.
"""

from __future__ import annotations

from conftest import format_table, print_artifact, save_results


def test_fig5_per_benchmark_series(benchmark, agents, suites, oz_baselines):
    agent = agents[("odg", "x86-64")]

    def run():
        series = {}
        for suite in ("spec2017", "spec2006"):
            summary = agent.evaluate_suite(suite, suites[suite])
            series[suite] = [
                {
                    "bench": r.name,
                    "oz_cycles": r.oz_cycles,
                    "odg_cycles": r.agent_cycles,
                    "oz_kb": r.oz_size / 1024.0,
                    "odg_kb": r.agent_size / 1024.0,
                    "size_pct": r.size_reduction_pct,
                    "runtime_pct": r.runtime_improvement_pct,
                }
                for r in summary.results
            ]
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)

    for suite, label in (("spec2017", "(a)+(c)"), ("spec2006", "(b)+(d)")):
        rows = [
            [
                e["bench"],
                f"{e['oz_cycles']:.0f}",
                f"{e['odg_cycles']:.0f}",
                f"{e['oz_kb']:.2f}",
                f"{e['odg_kb']:.2f}",
                f"{e['size_pct']:+.1f}%",
            ]
            for e in series[suite]
        ]
        print_artifact(
            f"Fig. 5 {label} — {suite}: runtime (cycles) and size (KB), "
            "Oz vs ODG (lower is better)",
            format_table(
                ["benchmark", "Oz cyc", "ODG cyc", "Oz KB", "ODG KB", "Δsize"],
                rows,
            ),
        )
    save_results("fig5_per_benchmark", series)

    # Shape: most SPEC2017 benchmarks shrink; at most a couple regress
    # (the paper sees slight size increases for 519.lbm and 464.h264ref).
    for suite in ("spec2017", "spec2006"):
        shrunk = sum(1 for e in series[suite] if e["size_pct"] > 0)
        regressed = sum(1 for e in series[suite] if e["size_pct"] < -1.0)
        assert shrunk >= len(series[suite]) // 2, (suite, shrunk)
        assert regressed <= 3, (suite, regressed)
