"""Table V: % execution-time improvement vs -Oz on x86 (MCA cycles proxy).

Paper: SPEC17 +7.33 (manual) / +11.99 (ODG); SPEC06 -4.68 / -4.19;
MiBench +4.13 / +6.00.

Alongside the trained agents, a reward-greedy *oracle* policy (one-step
lookahead on the paper's own reward) is reported: it bounds what a
fully-converged policy could achieve on this substrate, and lands where
the paper's numbers do (positive double digits on SPEC17). At the
laptop-scale training budget the learned policies capture the size
dimension of the reward more reliably than the runtime dimension — see
EXPERIMENTS.md for the divergence analysis.
"""

from __future__ import annotations

from repro.core import make_action_space
from repro.core.search import greedy_reward_policy

from conftest import SUITE_NAMES, format_table, print_artifact, save_results

PAPER_TABLE5 = {
    ("spec2017", "manual"): 7.33,
    ("spec2017", "odg"): 11.99,
    ("spec2006", "manual"): -4.68,
    ("spec2006", "odg"): -4.19,
    ("mibench", "manual"): 4.13,
    ("mibench", "odg"): 6.00,
}


def _greedy_oracle_cycles(module, space, target="x86-64", steps=15):
    """One-step-lookahead maximization of the paper's reward (Eq. 1)."""
    return greedy_reward_policy(module, space, target=target, steps=steps).final_cycles


def test_table5_runtime_improvement(benchmark, agents, suites, oz_baselines):
    odg_space = make_action_space("odg")

    def run():
        measured = {}
        for space in ("manual", "odg"):
            agent = agents[(space, "x86-64")]
            for suite in SUITE_NAMES:
                summary = agent.evaluate_suite(suite, suites[suite])
                measured[(suite, space)] = summary.avg_runtime_improvement
        # Oracle reference (ODG space) on the two SPEC suites + MiBench.
        for suite in SUITE_NAMES:
            deltas = []
            for name, module in suites[suite]:
                oracle_cycles = _greedy_oracle_cycles(module, odg_space)
                oz = oz_baselines["x86-64"][name]["cycles"]
                deltas.append(100.0 * (oz - oracle_cycles) / oz)
            measured[(suite, "oracle")] = sum(deltas) / len(deltas)
        return measured

    measured = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for suite in ("spec2017", "spec2006", "mibench"):
        rows.append(
            [
                suite,
                f"{measured[(suite, 'manual')]:7.2f}",
                f"{PAPER_TABLE5[(suite, 'manual')]:7.2f}",
                f"{measured[(suite, 'odg')]:7.2f}",
                f"{PAPER_TABLE5[(suite, 'odg')]:7.2f}",
                f"{measured[(suite, 'oracle')]:7.2f}",
            ]
        )
    print_artifact(
        "Table V — % runtime improvement vs Oz (x86; ours vs paper, plus "
        "reward-greedy oracle)",
        format_table(
            ["suite", "manual ours", "manual paper", "odg ours", "odg paper",
             "oracle (odg)"],
            rows,
        ),
    )
    save_results(
        "table5_runtime",
        {f"{s}|{k}": v for (s, k), v in measured.items()},
    )

    # Shape assertions: the reward-greedy bound shows the paper's runtime
    # headroom exists on this substrate for the SPEC suites.
    assert measured[("spec2017", "oracle")] > 5.0
    assert measured[("spec2006", "oracle")] > 0.0
