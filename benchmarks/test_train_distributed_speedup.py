"""Distributed actor-learner throughput vs the serial training loop.

Four actor subprocesses roll out episodes concurrently while the learner
ingests chunks and trains — uncached, so environment stepping (the part
the actors parallelize) dominates the step cost. The ≥2x assertion is
the point of going distributed, but it is physically impossible on a
single-core runner (the actors time-slice one core and add IPC on top),
so — same convention as the gateway and vectorized-training benchmarks —
the strict gate applies when ≥4 CPUs are available and a no-collapse
floor (pipeline overhead must not halve throughput) applies otherwise.
``benchmarks/results/perf_train_distributed.json`` records ``cpu_count``
so readers can interpret the number, plus the pipeline health readings
(broadcasts, snapshot staleness, per-actor rates) of the measured run.
"""

from __future__ import annotations

import os

from repro import PosetRL
from repro.workloads import ProgramProfile, generate_program

from conftest import print_artifact, save_results

N_ACTORS = 4
EPISODE_LENGTH = 6
TOTAL_STEPS = 240


def _corpus():
    return [
        (
            f"bench{i}",
            generate_program(
                ProgramProfile(name=f"bench{i}", seed=40 + i, segments=2)
            ),
        )
        for i in range(4)
    ]


def test_train_distributed_speedup():
    corpus = _corpus()

    serial_agent = PosetRL(seed=0, episode_length=EPISODE_LENGTH, cache=False)
    serial_agent.train(corpus, episodes=TOTAL_STEPS // EPISODE_LENGTH)
    serial = serial_agent.last_train_throughput

    dist_agent = PosetRL(seed=0, episode_length=EPISODE_LENGTH, cache=False)
    dist_agent.train_distributed(
        corpus, total_steps=TOTAL_STEPS, actors=N_ACTORS, broadcast_every=2
    )
    dist = dist_agent.last_train_throughput
    report = dist_agent.last_distributed_report

    cpus = len(os.sched_getaffinity(0))
    speedup = (
        dist.steps_per_second / serial.steps_per_second
        if serial.steps_per_second
        else float("inf")
    )
    payload = {
        "actors": N_ACTORS,
        "cpu_count": cpus,
        "total_steps": TOTAL_STEPS,
        "serial": serial.as_dict(),
        "distributed": dist.as_dict(),
        "speedup": round(speedup, 2),
        "pipeline": report.as_dict(),
        "note": (
            "strict >=2x gate applies with >=4 CPUs; on fewer cores the "
            "actor subprocesses time-slice the core(s), so only the "
            "no-collapse floor (>=0.4x) is asserted"
        ),
    }
    save_results("perf_train_distributed", payload)
    print_artifact(
        "Distributed actor-learner training (4 actors vs serial, uncached)",
        f"serial      {serial.steps_per_second:8.1f} steps/s\n"
        f"distributed {dist.steps_per_second:8.1f} steps/s  "
        f"({speedup:.2f}x, cpus={cpus})\n"
        f"broadcasts={report.broadcasts}  "
        f"mean_staleness={report.mean_staleness:.1f}  "
        f"clean_drain={report.clean_drain}",
    )

    assert report.clean_drain, payload
    assert report.broadcasts >= 1, payload
    assert dist.total_steps >= TOTAL_STEPS, payload
    if cpus >= 4:
        assert speedup >= 2.0, payload
    else:
        assert speedup >= 0.4, payload
