"""Extension benches (paper Section VII future work).

* **Parameterized actions** — compares the plain ODG action space
  against the parameter-expanded one (unroll budgets and inline
  thresholds as part of the action) under the reward-greedy policy —
  isolating the value of parameter choice from RL training noise.
* **Algorithm ablation** — trains DDQN, prioritized-DDQN and PPO behind
  the same facade on one small corpus and budget, emitting
  ``benchmarks/results/perf_ablation_algos.json``. Assertions are
  structural (every learner actually trains; the prioritized run's
  sum-tree diverges from uniform; PPO runs update epochs) — a 100-step
  budget says nothing statistically about final policy quality.
"""

from __future__ import annotations

import statistics

from repro import PosetRL, load_suite
from repro.core import make_action_space
from repro.core.extensions import make_parameterized_action_space
from repro.core.search import greedy_reward_policy
from repro.core.evaluate import optimize_with_oz
from repro.rl.dqn import AgentConfig
from repro.workloads import ProgramProfile, generate_program

from conftest import format_table, print_artifact, save_results


def test_ablation_parameterized_actions(benchmark):
    suite = load_suite("mibench")
    plain_space = make_action_space("odg")
    param_space = make_parameterized_action_space()

    def run():
        rows = []
        for name, module in suite:
            oz = optimize_with_oz(module, "x86-64")
            plain = greedy_reward_policy(module, plain_space, steps=8)
            param = greedy_reward_policy(module, param_space, steps=8)
            rows.append(
                {
                    "bench": name,
                    "oz_size": oz["size"],
                    "plain_size": plain.final_size,
                    "param_size": param.final_size,
                    "oz_cycles": oz["cycles"],
                    "plain_cycles": plain.final_cycles,
                    "param_cycles": param.final_cycles,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = [
        [
            r["bench"],
            r["oz_size"],
            r["plain_size"],
            r["param_size"],
            f"{r['plain_cycles']:.0f}",
            f"{r['param_cycles']:.0f}",
        ]
        for r in rows
    ]
    print_artifact(
        "Extension — parameterized actions (greedy policy, MiBench)",
        format_table(
            ["benchmark", "Oz B", "plain B", "param B", "plain cyc", "param cyc"],
            table,
        ),
    )
    save_results("ablation_parameterized", rows)

    # The parameterized space strictly contains the plain one, so a greedy
    # policy over it can only match or beat the per-step reward; check the
    # aggregate outcome is not worse on cycles (its main lever is unroll).
    plain_cycles = statistics.mean(r["plain_cycles"] for r in rows)
    param_cycles = statistics.mean(r["param_cycles"] for r in rows)
    assert param_cycles <= plain_cycles * 1.05


ALGOS = ("ddqn", "prioritized-ddqn", "ppo")
ALGO_EPISODES = 20
ALGO_EPISODE_LENGTH = 5


def test_ablation_algorithms(benchmark):
    corpus = [
        (
            f"prog{i}",
            generate_program(
                ProgramProfile(name=f"prog{i}", seed=70 + i, segments=2)
            ),
        )
        for i in range(4)
    ]
    # Small replay thresholds so every learner trains inside the budget.
    config = AgentConfig(min_replay=16, batch_size=8, train_every=2,
                         target_sync_every=32, epsilon_steps=80)

    def run_algo(algo):
        rl = PosetRL(seed=0, episode_length=ALGO_EPISODE_LENGTH,
                     agent_config=config, algo=algo)
        stats = rl.train_vectorized(corpus, episodes=ALGO_EPISODES, n_envs=2)
        half = len(stats) // 2
        return rl, {
            "algo": algo,
            "episodes": len(stats),
            "train_updates": rl.agent.train_steps,
            "reward_first_half": round(
                statistics.mean(s.total_reward for s in stats[:half]), 4
            ),
            "reward_second_half": round(
                statistics.mean(s.total_reward for s in stats[half:]), 4
            ),
            "steps_per_second": round(
                rl.last_train_throughput.steps_per_second, 1
            ),
            "wall_seconds": round(
                rl.last_train_throughput.wall_seconds, 3
            ),
        }

    def run():
        out = []
        for algo in ALGOS:
            rl, row = run_algo(algo)
            if algo == "prioritized-ddqn":
                row["priority_stats"] = {
                    k: round(v, 4)
                    for k, v in rl.agent.memory.priority_stats().items()
                }
            out.append(row)
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print_artifact(
        "Extension — algorithm ablation (same corpus/budget/seed)",
        format_table(
            ["algo", "episodes", "updates", "reward 1st half",
             "reward 2nd half", "steps/s"],
            [
                [r["algo"], r["episodes"], r["train_updates"],
                 f"{r['reward_first_half']:.3f}",
                 f"{r['reward_second_half']:.3f}",
                 f"{r['steps_per_second']:.0f}"]
                for r in rows
            ],
        ),
    )
    save_results("perf_ablation_algos", rows)

    by_algo = {r["algo"]: r for r in rows}
    assert set(by_algo) == set(ALGOS)
    for r in rows:
        assert r["episodes"] == ALGO_EPISODES
        assert r["train_updates"] > 0, r
    # TD-error feedback moved the sum tree off the uniform entry mass.
    stats = by_algo["prioritized-ddqn"]["priority_stats"]
    assert stats["max"] != stats["mean"] or stats["max"] != 1.0, stats
