"""Extension bench (paper Section VII future work): parameterized actions.

Compares the plain ODG action space against the parameter-expanded one
(unroll budgets and inline thresholds as part of the action) under the
reward-greedy policy — isolating the value of parameter choice from
RL training noise.
"""

from __future__ import annotations

import statistics

from repro import load_suite
from repro.core import make_action_space
from repro.core.extensions import make_parameterized_action_space
from repro.core.search import greedy_reward_policy
from repro.core.evaluate import optimize_with_oz

from conftest import format_table, print_artifact, save_results


def test_ablation_parameterized_actions(benchmark):
    suite = load_suite("mibench")
    plain_space = make_action_space("odg")
    param_space = make_parameterized_action_space()

    def run():
        rows = []
        for name, module in suite:
            oz = optimize_with_oz(module, "x86-64")
            plain = greedy_reward_policy(module, plain_space, steps=8)
            param = greedy_reward_policy(module, param_space, steps=8)
            rows.append(
                {
                    "bench": name,
                    "oz_size": oz["size"],
                    "plain_size": plain.final_size,
                    "param_size": param.final_size,
                    "oz_cycles": oz["cycles"],
                    "plain_cycles": plain.final_cycles,
                    "param_cycles": param.final_cycles,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = [
        [
            r["bench"],
            r["oz_size"],
            r["plain_size"],
            r["param_size"],
            f"{r['plain_cycles']:.0f}",
            f"{r['param_cycles']:.0f}",
        ]
        for r in rows
    ]
    print_artifact(
        "Extension — parameterized actions (greedy policy, MiBench)",
        format_table(
            ["benchmark", "Oz B", "plain B", "param B", "plain cyc", "param cyc"],
            table,
        ),
    )
    save_results("ablation_parameterized", rows)

    # The parameterized space strictly contains the plain one, so a greedy
    # policy over it can only match or beat the per-step reward; check the
    # aggregate outcome is not worse on cycles (its main lever is unroll).
    plain_cycles = statistics.mean(r["plain_cycles"] for r in rows)
    param_cycles = statistics.mean(r["param_cycles"] for r in rows)
    assert param_cycles <= plain_cycles * 1.05
