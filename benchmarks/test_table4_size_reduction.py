"""Table IV: % of min/mean/max binary-size reduction vs -Oz, for manual and
ODG action spaces, on x86-64 and AArch64, across SPEC 2017 / SPEC 2006 /
MiBench.

Paper (ODG, x86): SPEC17 -1.63/6.19/22.94, SPEC06 -0.02/4.38/9.93,
MiBench -1.28/1.87/8.68 — with manual consistently weaker on average.
Expected reproduction: the *shape* — ODG averages positive on every suite,
ODG ≥ manual on average, maxima well above averages, minima slightly
negative.
"""

from __future__ import annotations

from typing import Dict

from conftest import SUITE_NAMES, format_table, print_artifact, save_results

PAPER_TABLE4 = {
    # (suite, space, target): (min, avg, max)
    ("spec2017", "manual", "x86-64"): (-2.14, 0.12, 3.74),
    ("spec2006", "manual", "x86-64"): (-3.69, -0.56, 2.45),
    ("mibench", "manual", "x86-64"): (-4.82, -1.26, 0.91),
    ("spec2017", "odg", "x86-64"): (-1.63, 6.19, 22.94),
    ("spec2006", "odg", "x86-64"): (-0.02, 4.38, 9.93),
    ("mibench", "odg", "x86-64"): (-1.28, 1.87, 8.68),
    ("spec2017", "manual", "aarch64"): (-8.45, 0.88, 4.88),
    ("spec2006", "manual", "aarch64"): (-5.16, 2.47, 6.64),
    ("mibench", "manual", "aarch64"): (-9.43, -2.31, 0.54),
    ("spec2017", "odg", "aarch64"): (-0.99, 5.33, 20.29),
    ("spec2006", "odg", "aarch64"): (-0.82, 5.04, 9.58),
    ("mibench", "odg", "aarch64"): (-7.54, 0.01, 7.20),
}


def test_table4_size_reduction(benchmark, agents, suites):
    def run():
        measured: Dict = {}
        for (space, target), agent in agents.items():
            for suite in SUITE_NAMES:
                summary = agent.evaluate_suite(suite, suites[suite])
                measured[(suite, space, target)] = summary
        return measured

    measured = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    payload = {}
    for target in ("x86-64", "aarch64"):
        for suite in ("spec2017", "spec2006", "mibench"):
            row = [f"{suite} ({target})"]
            for space in ("manual", "odg"):
                s = measured[(suite, space, target)]
                paper = PAPER_TABLE4[(suite, space, target)]
                row.append(
                    f"{s.min_size_reduction:6.2f}/{s.avg_size_reduction:5.2f}/"
                    f"{s.max_size_reduction:5.2f}"
                )
                row.append(f"{paper[0]:6.2f}/{paper[1]:5.2f}/{paper[2]:5.2f}")
                payload[f"{suite}|{space}|{target}"] = {
                    "measured": [
                        s.min_size_reduction,
                        s.avg_size_reduction,
                        s.max_size_reduction,
                    ],
                    "paper": list(paper),
                    "per_benchmark": {
                        r.name: r.size_reduction_pct for r in s.results
                    },
                }
            rows.append(row)

    print_artifact(
        "Table IV — % size reduction vs Oz (min/avg/max; ours vs paper)",
        format_table(
            ["suite (target)", "manual ours", "manual paper", "odg ours", "odg paper"],
            rows,
        ),
    )
    save_results("table4_size_reduction", payload)

    # Shape assertions (the paper's qualitative claims).
    for target in ("x86-64", "aarch64"):
        odg_avgs = [
            measured[(suite, "odg", target)].avg_size_reduction
            for suite in SUITE_NAMES
        ]
        manual_avgs = [
            measured[(suite, "manual", target)].avg_size_reduction
            for suite in SUITE_NAMES
        ]
        # ODG beats manual on average size reduction (the headline claim).
        assert sum(odg_avgs) > sum(manual_avgs), (target, odg_avgs, manual_avgs)
        # ODG achieves meaningful maxima somewhere.
        assert any(
            measured[(suite, "odg", target)].max_size_reduction > 5.0
            for suite in SUITE_NAMES
        )
    # ODG average is positive on the SPEC suites for x86 (paper: positive
    # on all; MiBench is the noisiest in both).
    assert measured[("spec2017", "odg", "x86-64")].avg_size_reduction > 0
    assert measured[("spec2006", "odg", "x86-64")].avg_size_reduction > 0
