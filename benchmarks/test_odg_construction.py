"""Figure 4 / Table III: the Oz Dependence Graph.

Regenerates the ODG from the Table I sequence, reports the critical nodes
(paper: simplifycfg 11, instcombine 10, loop-simplify 8 with k ≥ 8) and
the 34 walked sub-sequences, and checks the overlap with the paper's
published table (28/34 verbatim; the remainder differ only by the paper's
inconsistent terminal-node handling).
"""

from __future__ import annotations

from repro.core import OzDependenceGraph, PAPER_ODG_SUBSEQUENCES

from conftest import format_table, print_artifact, save_results


def test_fig4_odg_and_table3_walks(benchmark):
    odg = benchmark.pedantic(OzDependenceGraph, rounds=3, iterations=1)
    summary = odg.summary()
    walks = odg.generate_subsequences()

    print_artifact(
        "Fig. 4 — ODG summary",
        format_table(
            ["metric", "value"],
            [
                ["nodes (unique passes)", summary["nodes"]],
                ["edges", summary["edges"]],
                ["sequence length", summary["sequence_length"]],
                ["critical nodes (k>=8)", summary["critical_nodes"]],
                ["generated walks", len(walks)],
            ],
        ),
    )

    generated = {tuple(w) for w in walks}
    paper = {tuple(s) for s in PAPER_ODG_SUBSEQUENCES}
    exact = len(generated & paper)
    body = "\n".join(
        f"{i + 1:3}. {'-' + ' -'.join(w)}" for i, w in enumerate(walks)
    )
    print_artifact(
        f"Table III — 34 ODG sub-sequences ({exact}/34 match the paper verbatim)",
        body,
    )
    save_results(
        "odg_construction",
        {
            "summary": summary,
            "walks": walks,
            "verbatim_matches": exact,
        },
    )

    assert summary["critical_nodes"] == {
        "simplifycfg": 11,
        "instcombine": 10,
        "loop-simplify": 8,
    }
    assert len(walks) == 34
    assert exact == 28
