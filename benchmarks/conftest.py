"""Shared fixtures for the benchmark harness.

Each paper artifact (table/figure) has one module here. Heavy state —
trained agents, benchmark suites, Oz baselines — is built once per session
and shared. Results are printed as paper-style rows and also written to
``benchmarks/results/*.json`` so EXPERIMENTS.md can cite exact numbers.

Knobs (environment variables):

* ``REPRO_BENCH_EPISODES``  — training episodes per agent (default 900).
* ``REPRO_BENCH_SEED``      — agent seed (default 0).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Tuple

import pytest

from repro import PosetRL, load_suite
from repro.core.evaluate import optimize_with_oz
from repro.core.presets import scaled_config
from repro.ir.module import Module

RESULTS_DIR = Path(__file__).parent / "results"

EPISODES = int(os.environ.get("REPRO_BENCH_EPISODES", "900"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))

SUITE_NAMES = ("mibench", "spec2006", "spec2017")


def save_results(name: str, payload) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / f"{name}.json", "w") as fh:
        json.dump(payload, fh, indent=2, default=str)


@pytest.fixture(scope="session")
def suites() -> Dict[str, List[Tuple[str, Module]]]:
    return {name: load_suite(name) for name in SUITE_NAMES}


@pytest.fixture(scope="session")
def training_corpus():
    return load_suite("llvm_test_suite")[:48]


@pytest.fixture(scope="session")
def oz_baselines(suites):
    """Size/cycles of -Oz per benchmark per target."""
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for target in ("x86-64", "aarch64"):
        out[target] = {}
        for suite, benches in suites.items():
            for name, module in benches:
                out[target][name] = optimize_with_oz(module, target)
    return out


def _train_agent(action_space: str, target: str, corpus) -> PosetRL:
    agent = PosetRL(
        action_space=action_space,
        target=target,
        seed=SEED,
        agent_config=scaled_config(),
    )
    agent.train(corpus, episodes=EPISODES)
    return agent


@pytest.fixture(scope="session")
def agents(training_corpus) -> Dict[Tuple[str, str], PosetRL]:
    """Trained agents keyed by (action_space, target) — the paper trains
    manual and ODG models for x86 and AArch64 (Section V-A)."""
    out = {}
    for action_space in ("manual", "odg"):
        for target in ("x86-64", "aarch64"):
            out[(action_space, target)] = _train_agent(
                action_space, target, training_corpus
            )
    return out


def format_table(headers: List[str], rows: List[List]) -> str:
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    def fmt(row):
        return "  ".join(str(c).rjust(w) for c, w in zip(row, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)


def print_artifact(title: str, body: str) -> None:
    bar = "=" * max(len(title), 8)
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
