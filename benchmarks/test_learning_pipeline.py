"""Closed-loop learning pipeline: journal throughput and tap overhead.

Two gates, emitted into ``benchmarks/results/perf_learning.json``:

* **journal throughput** — synthetic trajectories through
  ``ExperienceJournal`` (write + atomic segment flush) and back through
  ``OnlineTrainer.ingest`` (read + replay-ring fill). Both sides must
  sustain well beyond serving's trajectory production rate — the
  journal must never be the reason the tap drops experience.
* **tap overhead** — the same closed-loop serving load with and without
  an experience tap attached. The tap sits on the scheduler's finalize
  path, so it must be a rounding error next to the rollout itself; the
  gate only guards against a pathological slowdown.
"""

from __future__ import annotations

import time

import numpy as np

from repro import PosetRL
from repro.ir.printer import print_module
from repro.learning import ExperienceJournal, ExperienceTap, OnlineTrainer
from repro.serving import OptimizationService, request_pool, run_load
from repro.workloads import ProgramProfile, generate_program

from conftest import format_table, print_artifact, save_results

STATE_DIM = 300
EPISODE_LENGTH = 6

# Floors are deliberately loose: they catch an accidental O(n^2) or a
# sync-on-every-append regression, not machine-to-machine variance.
MIN_JOURNAL_WRITE_TPS = 5_000.0
MIN_JOURNAL_INGEST_TPS = 5_000.0
MAX_TAP_SLOWDOWN = 2.0  # tapped serving may not run 2x slower


def _synthetic_trajectories(count: int, steps: int = 15, seed: int = 0):
    rng = np.random.RandomState(seed)
    out = []
    for _ in range(count):
        states = rng.standard_normal(
            (steps + 1, STATE_DIM)
        ).astype(np.float32)
        actions = rng.randint(0, 34, size=steps)
        rewards = rng.standard_normal(steps)
        out.append((list(states), list(actions), list(rewards)))
    return out


def test_journal_write_and_ingest_throughput(tmp_path):
    trajectories = _synthetic_trajectories(200)
    transitions = sum(len(t[1]) for t in trajectories)
    journal_dir = str(tmp_path / "journal")
    tap = ExperienceTap(ExperienceJournal(journal_dir, segment_size=256))

    start = time.perf_counter()
    for states, actions, rewards in trajectories:
        assert tap.record(states, actions, rewards)
    tap.flush()
    write_s = time.perf_counter() - start
    write_tps = transitions / write_s

    base = str(tmp_path / "base.npz")
    PosetRL(seed=0, episode_length=EPISODE_LENGTH).save(base)
    trainer = OnlineTrainer(base, [journal_dir], replay_capacity=8192)
    start = time.perf_counter()
    ingested = trainer.ingest()
    ingest_s = time.perf_counter() - start
    assert ingested == transitions
    ingest_tps = ingested / ingest_s

    payload = {
        "transitions": transitions,
        "segments": len(tap.journal.segments()),
        "write_seconds": round(write_s, 4),
        "write_transitions_per_s": round(write_tps, 1),
        "ingest_seconds": round(ingest_s, 4),
        "ingest_transitions_per_s": round(ingest_tps, 1),
    }
    save_results("perf_learning_journal", payload)
    print_artifact(
        "Experience journal throughput",
        format_table(
            ["side", "transitions/s"],
            [["write+flush", f"{write_tps:,.0f}"],
             ["read+ingest", f"{ingest_tps:,.0f}"]],
        ),
    )
    assert write_tps >= MIN_JOURNAL_WRITE_TPS
    assert ingest_tps >= MIN_JOURNAL_INGEST_TPS


def test_tap_overhead_on_serving(tmp_path):
    corpus = [
        (
            f"tapbench{i}",
            print_module(
                generate_program(
                    ProgramProfile(name=f"tapbench{i}", seed=40 + i,
                                   segments=2)
                )
            ),
        )
        for i in range(4)
    ]
    agent = PosetRL(seed=0, episode_length=EPISODE_LENGTH)

    def run_once(experience_tap):
        service = OptimizationService.from_agent(
            agent,
            experience_tap=experience_tap,
            result_cache_size=None,
            include_ir=False,
            batch_window_s=0.001,
        )
        with service:
            # Warm the metrics caches so both runs measure steady state.
            run_load(service, request_pool(corpus, len(corpus)),
                     concurrency=2)
            report = run_load(service, request_pool(corpus, 16),
                              concurrency=2)
        assert report.status_counts == {"ok": 16 + 0}
        return report.wall_seconds

    plain_s = run_once(None)
    tap = ExperienceTap(
        ExperienceJournal(str(tmp_path / "journal"), segment_size=64)
    )
    tapped_s = run_once(tap)
    assert tap.counters["trajectories"] == 16 + 4  # warmup logs too
    slowdown = tapped_s / plain_s if plain_s else 1.0

    payload = {
        "plain_seconds": round(plain_s, 4),
        "tapped_seconds": round(tapped_s, 4),
        "slowdown": round(slowdown, 3),
    }
    save_results("perf_learning_tap", payload)
    print_artifact(
        "Experience tap overhead",
        format_table(
            ["mode", "wall s"],
            [["no tap", f"{plain_s:.3f}"],
             ["tapped", f"{tapped_s:.3f}"],
             ["slowdown", f"{slowdown:.2f}x"]],
        ),
    )
    assert slowdown <= MAX_TAP_SLOWDOWN
