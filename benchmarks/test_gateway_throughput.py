"""Sharded gateway: aggregate throughput, overload behaviour, locality.

Three gates, all emitted into ``benchmarks/results/perf_gateway.json``:

* **aggregate throughput** — closed-loop over a cold mixed corpus,
  4-shard gateway vs the single-process service. The ≥2x assertion is
  the point of sharding, but it is physically impossible on a
  single-core runner (N subprocesses time-slice one core), so — same
  convention as the vectorized-training benchmark — the strict gate
  applies when ≥4 CPUs are available and a no-collapse floor (IPC +
  routing overhead must not halve throughput) applies otherwise. The
  JSON records ``cpu_count`` so readers can interpret the number.
* **overload** — open-loop arrivals at ~2x measured capacity against a
  small admission window: nonzero shed, in-flight bounded by the
  window, served p99 bounded (queueing is capped, so latency cannot
  grow with the backlog).
* **routing locality** — a repeat-heavy workload must see the same
  result-cache hit ratio through the fingerprint-affine gateway as on a
  single process (within 5 points): affinity means sharding does not
  cold-split the cache.
"""

from __future__ import annotations

import json
import os
import time

from repro import PosetRL
from repro.ir.printer import print_module
from repro.serving import (
    OptimizationService,
    OptimizeRequest,
    ShardedGateway,
    run_load,
    run_open_loop,
)
from repro.workloads import ProgramProfile, generate_program

from conftest import RESULTS_DIR, save_results

N_SHARDS = 4
EPISODE_LENGTH = 6
RESULT_NAME = "perf_gateway"


def _update_results(section: str, payload) -> None:
    """Read-modify-write one section of perf_gateway.json: the three
    tests run (and can be re-run) independently."""
    path = RESULTS_DIR / f"{RESULT_NAME}.json"
    existing = {}
    if path.exists():
        with open(path) as fh:
            existing = json.load(fh)
    existing[section] = payload
    existing["cpu_count"] = len(os.sched_getaffinity(0))
    save_results(RESULT_NAME, existing)


def _corpus(count: int, *, seed0: int, segments: int = 2):
    return [
        (
            f"gwb{i}",
            print_module(
                generate_program(
                    ProgramProfile(
                        name=f"gwb{i}", seed=seed0 + i, segments=segments
                    )
                )
            ),
        )
        for i in range(count)
    ]


def _requests(corpus, count: int):
    return [
        OptimizeRequest(ir_text=corpus[i % len(corpus)][1],
                        name=corpus[i % len(corpus)][0])
        for i in range(count)
    ]


def _fresh_agent():
    return PosetRL(episode_length=EPISODE_LENGTH, seed=0)


def test_gateway_aggregate_throughput():
    """4-shard gateway vs single process on a cold mixed corpus."""
    cpus = len(os.sched_getaffinity(0))
    corpus = _corpus(24, seed0=9000)
    requests = _requests(corpus, 48)

    service = OptimizationService.from_agent(
        _fresh_agent(), batch_window_s=0.002, include_ir=False, verify=False,
    )
    with service:
        single = run_load(service, requests, concurrency=8)

    gateway = ShardedGateway.from_agent(
        _fresh_agent(), N_SHARDS,
        batch_window_s=0.002, include_ir=False, verify=False,
        max_pending=256,
    )
    with gateway:
        sharded = run_load(gateway, requests, concurrency=8)
    gw_counters = gateway.stats().counters

    speedup = (
        sharded.throughput_rps / single.throughput_rps
        if single.throughput_rps else float("inf")
    )
    payload = {
        "n_shards": N_SHARDS,
        "requests": len(requests),
        "distinct_modules": len(corpus),
        "single_process": single.as_dict(),
        "sharded": sharded.as_dict(),
        "gateway_counters": gw_counters,
        "speedup": round(speedup, 2),
        "gate": (
            ">=2x (>=4 CPUs)" if cpus >= N_SHARDS
            else ">=0.4x no-collapse floor (single-core runner: N "
            "subprocesses time-slice one core, so aggregate speedup is "
            "physically capped at ~1x; the >=2x gate needs >=4 CPUs)"
        ),
    }
    _update_results("aggregate_throughput", payload)
    print(
        f"\ngateway throughput at {N_SHARDS} shards: "
        f"{single.throughput_rps:.1f} -> {sharded.throughput_rps:.1f} req/s "
        f"({speedup:.2f}x, cpus={cpus})"
    )
    assert sharded.status_counts.get("ok", 0) == len(requests), payload
    if cpus >= N_SHARDS:
        assert speedup >= 2.0, payload
    else:
        assert speedup >= 0.4, payload


def test_gateway_overload_bounded():
    """Open loop at ~2x capacity: nonzero shed, bounded p99."""
    corpus = _corpus(8, seed0=9100)
    max_pending = 8
    gateway = ShardedGateway.from_agent(
        _fresh_agent(), 2,
        batch_window_s=0.002, include_ir=False, verify=False,
        max_pending=max_pending,
    )
    with gateway:
        # Calibrate capacity closed-loop on fresh (cold) modules...
        calibration = run_load(
            gateway, _requests(corpus, len(corpus)), concurrency=4
        )
        capacity_rps = calibration.throughput_rps
        # ...then offer 2x that rate on a *different* cold corpus.
        overload_corpus = _corpus(8, seed0=9200)
        report = run_open_loop(
            gateway,
            _requests(overload_corpus, 120),
            arrival_rate=max(2.0, 2.0 * capacity_rps),
            total=120,
            seed=7,
        )

    payload = {
        "calibrated_capacity_rps": round(capacity_rps, 2),
        "offered_rate_rps": round(max(2.0, 2.0 * capacity_rps), 2),
        "max_pending": max_pending,
        "open_loop": report.as_dict(),
    }
    _update_results("overload", payload)
    print(
        f"\noverload at 2x capacity ({capacity_rps:.1f} rps): "
        f"goodput={report.goodput_rps:.1f} rps "
        f"shed={report.shed}/{report.offered} p99={report.p99_ms:.0f}ms"
    )
    assert report.completed == report.offered, payload
    assert report.shed > 0, payload
    assert report.max_in_flight <= max_pending + 1, payload
    # Served latency is bounded by the admission window, not the backlog:
    # at most max_pending requests queue ahead of any served one.
    assert report.p99_ms < 60_000.0, payload


def test_gateway_cache_locality():
    """Repeat-heavy workload: affinity keeps per-shard caches as hot as
    one process's cache (hit ratio within 5 points)."""
    corpus = _corpus(8, seed0=9300)
    repeats = 10
    requests = _requests(corpus, len(corpus) * repeats)

    # Warm each distinct module once, sequentially, so the measured runs
    # contain no duplicate-in-flight misses (a repeat arriving while the
    # first compute is still running) — those would charge scheduling
    # noise to the locality comparison.
    service = OptimizationService.from_agent(
        _fresh_agent(), batch_window_s=0.002, include_ir=False, verify=False,
    )
    with service:
        for name, text in corpus:
            service.optimize(text, name=name)
        single = run_load(service, requests, concurrency=8)
    single_ratio = single.cache_hits / single.requests

    gateway = ShardedGateway.from_agent(
        _fresh_agent(), N_SHARDS,
        batch_window_s=0.002, include_ir=False, verify=False,
        max_pending=256,
    )
    with gateway:
        for name, text in corpus:
            gateway.optimize(text, name=name)
        sharded = run_load(gateway, requests, concurrency=8)
        restarts = gateway.stats().counters["worker_restarts"]
    sharded_ratio = sharded.cache_hits / sharded.requests

    payload = {
        "n_shards": N_SHARDS,
        "distinct_modules": len(corpus),
        "repeats": repeats,
        "single_process_hit_ratio": round(single_ratio, 4),
        "sharded_hit_ratio": round(sharded_ratio, 4),
        "worker_restarts": restarts,
        "single_process": single.as_dict(),
        "sharded": sharded.as_dict(),
    }
    _update_results("cache_locality", payload)
    print(
        f"\ncache locality at {N_SHARDS} shards: single={single_ratio:.3f} "
        f"sharded={sharded_ratio:.3f} (restarts={restarts})"
    )
    assert restarts == 0, payload
    assert sharded_ratio >= single_ratio - 0.05, payload
