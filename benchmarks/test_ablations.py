"""Ablations over the design choices DESIGN.md calls out.

Not artifacts of the paper, but experiments its design implies:

* reward weights α/β (the paper fixes α=10, β=5 "to give more weight to
  BinSize") — sweep the ratio and observe the size/runtime trade-off move;
* DQN vs Double DQN (the paper argues Double DQN avoids overestimation);
* ODG critical-degree threshold k (the paper picks k ≥ 8);
* episode length (the paper's sequences are 15 actions).
"""

from __future__ import annotations

import statistics

from repro import PosetRL, load_suite
from repro.core import OzDependenceGraph, RewardWeights
from repro.core.presets import quick_config

from conftest import format_table, print_artifact, save_results

EPISODES = 150


def _train_eval(weights=None, double=True, episode_length=15, seed=0):
    corpus = load_suite("llvm_test_suite")[:16]
    agent = PosetRL(
        action_space="odg",
        seed=seed,
        weights=weights or RewardWeights(),
        double_dqn=double,
        episode_length=episode_length,
        agent_config=quick_config(),
    )
    agent.train(corpus, episodes=EPISODES)
    summary = agent.evaluate_suite("mibench", load_suite("mibench"))
    return summary


def test_ablation_reward_weights(benchmark):
    def run():
        rows = {}
        for alpha, beta in ((10.0, 5.0), (10.0, 0.0), (0.0, 5.0)):
            s = _train_eval(weights=RewardWeights(alpha, beta))
            rows[(alpha, beta)] = (
                s.avg_size_reduction,
                s.avg_runtime_improvement,
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = [
        [f"α={a} β={b}", f"{v[0]:7.2f}", f"{v[1]:8.2f}"]
        for (a, b), v in rows.items()
    ]
    print_artifact(
        "Ablation — reward weights (MiBench, avg % vs Oz)",
        format_table(["weights", "Δsize", "Δruntime"], table),
    )
    save_results(
        "ablation_reward_weights",
        {f"{a}/{b}": v for (a, b), v in rows.items()},
    )
    # Size-only reward should not do *worse* on size than runtime-only.
    assert rows[(10.0, 0.0)][0] >= rows[(0.0, 5.0)][0] - 1.0


def test_ablation_double_dqn(benchmark):
    def run():
        results = {}
        for double in (True, False):
            sizes = [
                _train_eval(double=double, seed=seed).avg_size_reduction
                for seed in (0, 1)
            ]
            results[double] = statistics.mean(sizes)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_artifact(
        "Ablation — Double DQN vs vanilla DQN (MiBench avg Δsize, 2 seeds)",
        format_table(
            ["agent", "avg Δsize %"],
            [
                ["Double DQN (paper)", f"{results[True]:6.2f}"],
                ["vanilla DQN", f"{results[False]:6.2f}"],
            ],
        ),
    )
    save_results(
        "ablation_double_dqn",
        {"double": results[True], "vanilla": results[False]},
    )
    # Both must at least produce valid numbers; the ranking is seed-noisy
    # at this scale, so no ordering is asserted.
    assert all(isinstance(v, float) for v in results.values())


def test_ablation_odg_threshold(benchmark):
    def run():
        rows = []
        for k in (6, 8, 10, 12):
            odg = OzDependenceGraph(critical_degree=k)
            walks = odg.generate_subsequences()
            rows.append(
                {
                    "k": k,
                    "critical": len(odg.critical_nodes()),
                    "actions": len(walks),
                    "avg_len": statistics.mean(len(w) for w in walks)
                    if walks
                    else 0.0,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_artifact(
        "Ablation — ODG critical-degree threshold k (paper uses k ≥ 8)",
        format_table(
            ["k", "critical nodes", "action-space size", "avg walk length"],
            [
                [r["k"], r["critical"], r["actions"], f"{r['avg_len']:.1f}"]
                for r in rows
            ],
        ),
    )
    save_results("ablation_odg_threshold", rows)
    by_k = {r["k"]: r for r in rows}
    assert by_k[8]["critical"] == 3
    assert by_k[8]["actions"] == 34
    # Looser threshold -> more critical nodes -> different action space.
    assert by_k[6]["critical"] >= by_k[8]["critical"]
    assert by_k[12]["critical"] <= by_k[8]["critical"]


def test_ablation_episode_length(benchmark):
    def run():
        rows = {}
        for length in (5, 10, 15):
            s = _train_eval(episode_length=length)
            rows[length] = (s.avg_size_reduction, s.avg_runtime_improvement)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_artifact(
        "Ablation — episode length (paper: 15)",
        format_table(
            ["episode length", "Δsize %", "Δruntime %"],
            [[k, f"{v[0]:6.2f}", f"{v[1]:7.2f}"] for k, v in rows.items()],
        ),
    )
    save_results(
        "ablation_episode_length", {str(k): v for k, v in rows.items()}
    )
    assert set(rows) == {5, 10, 15}
