"""Throughput microbenchmarks for the substrate itself (pytest-benchmark
proper): how fast are the pieces the RL loop leans on — cloning, the Oz
pipeline, embeddings, size/MCA measurement, one environment step — plus a
cached-vs-uncached training-loop comparison for the incremental metrics
engine (written to ``benchmarks/results/perf_metrics_cache.json``) and a
batched-vs-serial training-throughput comparison for the vectorized
trainer (``benchmarks/results/perf_train_vectorized.json``)."""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from conftest import save_results

from repro import PosetRL
from repro.codegen import object_size
from repro.core import MetricsEngine, PhaseOrderingEnv
from repro.embeddings import program_embedding
from repro.mca import estimate_throughput
from repro.passes import build_pipeline
from repro.rl.dqn import AgentConfig, DoubleDQNAgent
from repro.workloads import ProgramProfile, generate_program


@pytest.fixture(scope="module")
def module():
    return generate_program(ProgramProfile(name="micro", seed=17, segments=8))


def test_clone_throughput(benchmark, module):
    benchmark(module.clone)


def test_oz_pipeline_throughput(benchmark, module):
    def run():
        build_pipeline("Oz").run(module.clone())

    benchmark(run)


def test_embedding_throughput(benchmark, module):
    benchmark(program_embedding, module)


def test_object_size_throughput(benchmark, module):
    benchmark(object_size, module, "x86-64")


def test_mca_throughput(benchmark, module):
    benchmark(estimate_throughput, module, "x86-64")


def test_env_step_throughput(benchmark, module):
    env = PhaseOrderingEnv(module)

    def step():
        env.reset()
        env.step(23)

    benchmark(step)


def test_env_step_throughput_uncached(benchmark, module):
    env = PhaseOrderingEnv(module, cache=False)

    def step():
        env.reset()
        env.step(23)

    benchmark(step)


def _run_training_loop(module, episode_pool, cache: bool) -> float:
    """Wall time of a repeated-episode loop, the RL hot pattern: an
    ε-greedy agent revisits a handful of good sequences over and over."""
    env = PhaseOrderingEnv(module, cache=cache)
    start = time.perf_counter()
    for actions in episode_pool:
        env.reset()
        for action in actions:
            env.step(action)
    return time.perf_counter() - start


def test_metrics_cache_training_speedup(module):
    """Cached training loop must be ≥3× faster than uncached on repeated
    episodes, with bit-identical metrics; emits perf_metrics_cache.json."""
    rng = np.random.RandomState(7)
    distinct = [
        [int(a) for a in rng.randint(0, 34, size=15)] for _ in range(3)
    ]
    # 18 episodes cycling over 3 sequences — exploitation-style revisits.
    episode_pool = [distinct[i % len(distinct)] for i in range(18)]

    uncached_s = _run_training_loop(module, episode_pool, cache=False)
    cached_env = PhaseOrderingEnv(module, cache=True)
    start = time.perf_counter()
    final_sizes = []
    for actions in episode_pool:
        cached_env.reset()
        for action in actions:
            cached_env.step(action)
        final_sizes.append(cached_env.last_size)
    cached_s = time.perf_counter() - start

    # Equivalence spot check: cached replays land on the uncached sizes.
    check_env = PhaseOrderingEnv(module, cache=False)
    for actions, cached_size in zip(episode_pool[:3], final_sizes[:3]):
        check_env.rollout(actions)
        assert check_env.last_size == cached_size

    speedup = uncached_s / cached_s if cached_s > 0 else float("inf")
    stats = cached_env.cache_stats()
    payload = {
        "episodes": len(episode_pool),
        "steps_per_episode": 15,
        "uncached_seconds": round(uncached_s, 4),
        "cached_seconds": round(cached_s, 4),
        "speedup": round(speedup, 2),
        "cache_stats": stats,
    }
    save_results("perf_metrics_cache", payload)
    print(
        f"\ntraining-loop speedup: {speedup:.1f}x "
        f"(uncached {uncached_s:.3f}s vs cached {cached_s:.3f}s), "
        f"transition hit rate "
        f"{stats['transitions']['hit_rate']:.0%}"
    )
    assert speedup >= 3.0, payload


# -- vectorized training -----------------------------------------------------

N_ENVS = 8
STATE_DIM = 300


def _decision_path_seconds(states, reps: int, batched: bool) -> float:
    """Wall time of the per-step agent work — ε-greedy action selection
    plus replay insertion — over ``reps × n_envs`` transitions.

    ``min_replay`` is set beyond the horizon so the measurement isolates
    the decision path (the network-update cadence is identical between
    serial and batched by construction, so it would only add equal time
    to both sides). ε is annealed to its floor first: a trained agent
    exploits almost every step, and exploitation is where the batched
    forward pays.
    """
    config = AgentConfig(
        num_actions=34, min_replay=10**9, epsilon_steps=64, seed=0
    )
    agent = DoubleDQNAgent(config)
    warm = states[0]
    for _ in range(config.epsilon_steps):
        agent.remember(warm, 0, 0.0, warm, False)

    n = states.shape[0]
    rewards = np.linspace(-1.0, 1.0, n)
    dones = np.zeros(n, dtype=bool)
    start = time.perf_counter()
    if batched:
        for _ in range(reps):
            actions = agent.act_batch(states)
            agent.remember_batch(states, actions, rewards, states, dones)
    else:
        for _ in range(reps):
            for i in range(n):
                action = agent.act(states[i])
                agent.remember(
                    states[i], action, float(rewards[i]), states[i], False
                )
    return time.perf_counter() - start


def test_train_vectorized_speedup():
    """Batched training throughput vs the serial loop, metrics cache
    disabled throughout; emits perf_train_vectorized.json.

    Two measurements:

    * **decision path** — the per-step agent work that vectorization
      batches (one ``(8, 300)`` forward + bulk replay insertion instead
      of 8 single-state forwards + 8 pushes). Asserted ≥2× at
      ``n_envs=8``; environment stepping is excluded, so this holds on
      any core count.
    * **end to end** — ``PosetRL.train`` vs ``train_vectorized`` on the
      same uncached corpus and step budget. Reported (not asserted ≥2×):
      uncached stepping is dominated by the pass pipeline + measurement,
      which in-process lockstep cannot parallelize — on a single core it
      lands near 1×; ``workers=N`` moves it toward N× on multi-core.
    """
    corpus = [
        (
            f"bench{i}",
            generate_program(
                ProgramProfile(name=f"bench{i}", seed=40 + i, segments=2)
            ),
        )
        for i in range(4)
    ]
    # Real observation vectors: the base embeddings of 8 programs.
    engine = MetricsEngine(enabled=False)
    states = np.stack([
        engine.embedding(
            generate_program(
                ProgramProfile(name=f"s{i}", seed=60 + i, segments=2)
            )
        )
        for i in range(N_ENVS)
    ]).astype(np.float64)
    assert states.shape == (N_ENVS, STATE_DIM)

    reps = 250
    serial_s = min(
        _decision_path_seconds(states, reps, batched=False) for _ in range(3)
    )
    batched_s = min(
        _decision_path_seconds(states, reps, batched=True) for _ in range(3)
    )
    steps = reps * N_ENVS
    decision_speedup = serial_s / batched_s if batched_s else float("inf")

    total_steps = 120
    vec_agent = PosetRL(seed=0, cache=False)
    vec_agent.train_vectorized(corpus, total_steps=total_steps, n_envs=N_ENVS)
    vec_report = vec_agent.last_train_throughput
    serial_agent = PosetRL(seed=0, cache=False)
    serial_agent.train(
        corpus, episodes=total_steps // serial_agent.episode_length
    )
    serial_report = serial_agent.last_train_throughput
    e2e_speedup = (
        vec_report.steps_per_second / serial_report.steps_per_second
        if serial_report.steps_per_second
        else float("inf")
    )

    payload = {
        "n_envs": N_ENVS,
        "cpu_count": os.cpu_count(),
        "decision_path": {
            "transitions": steps,
            "serial_us_per_step": round(1e6 * serial_s / steps, 2),
            "batched_us_per_step": round(1e6 * batched_s / steps, 2),
            "serial_steps_per_second": round(steps / serial_s, 1),
            "batched_steps_per_second": round(steps / batched_s, 1),
            "speedup": round(decision_speedup, 2),
        },
        "end_to_end_uncached": {
            "serial": serial_report.as_dict(),
            "vectorized": vec_report.as_dict(),
            "speedup": round(e2e_speedup, 2),
            "note": (
                "in-process lockstep; env stepping dominates uncached and "
                "is serial on one core — use workers=N for multi-core scaling"
            ),
        },
    }
    save_results("perf_train_vectorized", payload)
    print(
        f"\ndecision-path speedup at n_envs={N_ENVS}: "
        f"{decision_speedup:.2f}x "
        f"({1e6 * serial_s / steps:.1f}us -> {1e6 * batched_s / steps:.1f}us "
        f"per step); end-to-end uncached {e2e_speedup:.2f}x "
        f"({serial_report.steps_per_second:.0f} -> "
        f"{vec_report.steps_per_second:.0f} steps/s)"
    )
    assert decision_speedup >= 2.0, payload
    # End-to-end must at least not regress materially on one core.
    assert e2e_speedup >= 0.5, payload
