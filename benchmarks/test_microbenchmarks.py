"""Throughput microbenchmarks for the substrate itself (pytest-benchmark
proper): how fast are the pieces the RL loop leans on — cloning, the Oz
pipeline, embeddings, size/MCA measurement, one environment step — plus a
cached-vs-uncached training-loop comparison for the incremental metrics
engine (written to ``benchmarks/results/perf_metrics_cache.json``) and a
batched-vs-serial training-throughput comparison for the vectorized
trainer (``benchmarks/results/perf_train_vectorized.json``) and a
batched-serving-vs-serial-predict comparison for the optimization
service (``benchmarks/results/perf_serving.json``)."""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from conftest import save_results

from repro import PosetRL
from repro.codegen import object_size
from repro.core import MetricsEngine, PhaseOrderingEnv
from repro.embeddings import program_embedding
from repro.mca import estimate_throughput
from repro.passes import build_pipeline
from repro.rl.dqn import AgentConfig, DoubleDQNAgent
from repro.workloads import ProgramProfile, generate_program


@pytest.fixture(scope="module")
def module():
    return generate_program(ProgramProfile(name="micro", seed=17, segments=8))


def test_clone_throughput(benchmark, module):
    benchmark(module.clone)


def test_oz_pipeline_throughput(benchmark, module):
    def run():
        build_pipeline("Oz").run(module.clone())

    benchmark(run)


def test_embedding_throughput(benchmark, module):
    benchmark(program_embedding, module)


def test_object_size_throughput(benchmark, module):
    benchmark(object_size, module, "x86-64")


def test_mca_throughput(benchmark, module):
    benchmark(estimate_throughput, module, "x86-64")


def test_env_step_throughput(benchmark, module):
    env = PhaseOrderingEnv(module)

    def step():
        env.reset()
        env.step(23)

    benchmark(step)


def test_env_step_throughput_uncached(benchmark, module):
    env = PhaseOrderingEnv(module, cache=False)

    def step():
        env.reset()
        env.step(23)

    benchmark(step)


def _run_training_loop(module, episode_pool, cache: bool) -> float:
    """Wall time of a repeated-episode loop, the RL hot pattern: an
    ε-greedy agent revisits a handful of good sequences over and over."""
    env = PhaseOrderingEnv(module, cache=cache)
    start = time.perf_counter()
    for actions in episode_pool:
        env.reset()
        for action in actions:
            env.step(action)
    return time.perf_counter() - start


def test_metrics_cache_training_speedup(module):
    """Cached training loop must be ≥3× faster than uncached on repeated
    episodes, with bit-identical metrics; emits perf_metrics_cache.json."""
    rng = np.random.RandomState(7)
    distinct = [
        [int(a) for a in rng.randint(0, 34, size=15)] for _ in range(3)
    ]
    # 18 episodes cycling over 3 sequences — exploitation-style revisits.
    episode_pool = [distinct[i % len(distinct)] for i in range(18)]

    uncached_s = _run_training_loop(module, episode_pool, cache=False)
    cached_env = PhaseOrderingEnv(module, cache=True)
    start = time.perf_counter()
    final_sizes = []
    for actions in episode_pool:
        cached_env.reset()
        for action in actions:
            cached_env.step(action)
        final_sizes.append(cached_env.last_size)
    cached_s = time.perf_counter() - start

    # Equivalence spot check: cached replays land on the uncached sizes.
    check_env = PhaseOrderingEnv(module, cache=False)
    for actions, cached_size in zip(episode_pool[:3], final_sizes[:3]):
        check_env.rollout(actions)
        assert check_env.last_size == cached_size

    speedup = uncached_s / cached_s if cached_s > 0 else float("inf")
    stats = cached_env.cache_stats()
    payload = {
        "episodes": len(episode_pool),
        "steps_per_episode": 15,
        "uncached_seconds": round(uncached_s, 4),
        "cached_seconds": round(cached_s, 4),
        "speedup": round(speedup, 2),
        "cache_stats": stats,
    }
    save_results("perf_metrics_cache", payload)
    print(
        f"\ntraining-loop speedup: {speedup:.1f}x "
        f"(uncached {uncached_s:.3f}s vs cached {cached_s:.3f}s), "
        f"transition hit rate "
        f"{stats['transitions']['hit_rate']:.0%}"
    )
    assert speedup >= 3.0, payload


# -- vectorized training -----------------------------------------------------

N_ENVS = 8
STATE_DIM = 300


def _decision_path_seconds(states, reps: int, batched: bool) -> float:
    """Wall time of the per-step agent work — ε-greedy action selection
    plus replay insertion — over ``reps × n_envs`` transitions.

    ``min_replay`` is set beyond the horizon so the measurement isolates
    the decision path (the network-update cadence is identical between
    serial and batched by construction, so it would only add equal time
    to both sides). ε is annealed to its floor first: a trained agent
    exploits almost every step, and exploitation is where the batched
    forward pays.
    """
    config = AgentConfig(
        num_actions=34, min_replay=10**9, epsilon_steps=64, seed=0
    )
    agent = DoubleDQNAgent(config)
    warm = states[0]
    for _ in range(config.epsilon_steps):
        agent.remember(warm, 0, 0.0, warm, False)

    n = states.shape[0]
    rewards = np.linspace(-1.0, 1.0, n)
    dones = np.zeros(n, dtype=bool)
    start = time.perf_counter()
    if batched:
        for _ in range(reps):
            actions = agent.act_batch(states)
            agent.remember_batch(states, actions, rewards, states, dones)
    else:
        for _ in range(reps):
            for i in range(n):
                action = agent.act(states[i])
                agent.remember(
                    states[i], action, float(rewards[i]), states[i], False
                )
    return time.perf_counter() - start


def test_train_vectorized_speedup():
    """Batched training throughput vs the serial loop, metrics cache
    disabled throughout; emits perf_train_vectorized.json.

    Two measurements:

    * **decision path** — the per-step agent work that vectorization
      batches (one ``(8, 300)`` forward + bulk replay insertion instead
      of 8 single-state forwards + 8 pushes). Asserted ≥2× at
      ``n_envs=8``; environment stepping is excluded, so this holds on
      any core count.
    * **end to end** — ``PosetRL.train`` vs ``train_vectorized`` on the
      same uncached corpus and step budget. Reported (not asserted ≥2×):
      uncached stepping is dominated by the pass pipeline + measurement,
      which in-process lockstep cannot parallelize — on a single core it
      lands near 1×; ``workers=N`` moves it toward N× on multi-core.
    """
    corpus = [
        (
            f"bench{i}",
            generate_program(
                ProgramProfile(name=f"bench{i}", seed=40 + i, segments=2)
            ),
        )
        for i in range(4)
    ]
    # Real observation vectors: the base embeddings of 8 programs.
    engine = MetricsEngine(enabled=False)
    states = np.stack([
        engine.embedding(
            generate_program(
                ProgramProfile(name=f"s{i}", seed=60 + i, segments=2)
            )
        )
        for i in range(N_ENVS)
    ]).astype(np.float64)
    assert states.shape == (N_ENVS, STATE_DIM)

    reps = 250
    serial_s = min(
        _decision_path_seconds(states, reps, batched=False) for _ in range(3)
    )
    batched_s = min(
        _decision_path_seconds(states, reps, batched=True) for _ in range(3)
    )
    steps = reps * N_ENVS
    decision_speedup = serial_s / batched_s if batched_s else float("inf")

    total_steps = 120
    vec_agent = PosetRL(seed=0, cache=False)
    vec_agent.train_vectorized(corpus, total_steps=total_steps, n_envs=N_ENVS)
    vec_report = vec_agent.last_train_throughput
    serial_agent = PosetRL(seed=0, cache=False)
    serial_agent.train(
        corpus, episodes=total_steps // serial_agent.episode_length
    )
    serial_report = serial_agent.last_train_throughput
    e2e_speedup = (
        vec_report.steps_per_second / serial_report.steps_per_second
        if serial_report.steps_per_second
        else float("inf")
    )

    payload = {
        "n_envs": N_ENVS,
        "cpu_count": os.cpu_count(),
        "decision_path": {
            "transitions": steps,
            "serial_us_per_step": round(1e6 * serial_s / steps, 2),
            "batched_us_per_step": round(1e6 * batched_s / steps, 2),
            "serial_steps_per_second": round(steps / serial_s, 1),
            "batched_steps_per_second": round(steps / batched_s, 1),
            "speedup": round(decision_speedup, 2),
        },
        "end_to_end_uncached": {
            "serial": serial_report.as_dict(),
            "vectorized": vec_report.as_dict(),
            "speedup": round(e2e_speedup, 2),
            "note": (
                "in-process lockstep; env stepping dominates uncached and "
                "is serial on one core — use workers=N for multi-core scaling"
            ),
        },
    }
    save_results("perf_train_vectorized", payload)
    print(
        f"\ndecision-path speedup at n_envs={N_ENVS}: "
        f"{decision_speedup:.2f}x "
        f"({1e6 * serial_s / steps:.1f}us -> {1e6 * batched_s / steps:.1f}us "
        f"per step); end-to-end uncached {e2e_speedup:.2f}x "
        f"({serial_report.steps_per_second:.0f} -> "
        f"{vec_report.steps_per_second:.0f} steps/s)"
    )
    assert decision_speedup >= 2.0, payload
    # End-to-end must at least not regress materially on one core.
    assert e2e_speedup >= 0.5, payload


# -- batched serving ---------------------------------------------------------


def test_serving_batched_throughput():
    """Batched serving vs serial per-request ``PosetRL.predict`` at
    concurrency 8; emits perf_serving.json.

    Both sides run the same policy over the same module corpus on warm
    metrics caches (an untimed warm-up pass covers every distinct
    module). The serving side gets no result cache and returns no IR, so
    every timed request performs a full greedy rollout — the measured win
    is micro-batching alone: eight in-flight rollouts per batched forward
    instead of one forward per step per request.
    """
    from repro.ir.printer import print_module
    from repro.serving import OptimizationService, request_pool, run_load

    corpus_modules = [
        (
            f"serve{i}",
            generate_program(
                ProgramProfile(name=f"serve{i}", seed=50 + i, segments=2)
            ),
        )
        for i in range(4)
    ]
    corpus = [(name, print_module(m)) for name, m in corpus_modules]
    concurrency = 8
    n_requests = 64

    agent = PosetRL(seed=0)
    service = OptimizationService.from_agent(
        agent,
        max_batch=concurrency,
        batch_window_s=0.002,
        result_cache_size=None,  # force full rollouts: measure batching
        include_ir=False,
    )
    requests = request_pool(corpus, n_requests)
    with service:
        # untimed warm-up: populate the transition caches for both sides
        run_load(service, request_pool(corpus, len(corpus)),
                 concurrency=concurrency)
        report = run_load(service, requests, concurrency=concurrency)
    assert report.status_counts == {"ok": n_requests}

    # Serial baseline: the same rollouts, one request at a time, on its
    # own equally-warm metrics engine.
    serial_agent = PosetRL(seed=0)
    for _, module in corpus_modules:
        serial_agent.predict(module)
    serial_modules = [
        corpus_modules[i % len(corpus_modules)][1] for i in range(n_requests)
    ]
    start = time.perf_counter()
    for module in serial_modules:
        serial_agent.predict(module)
    serial_s = time.perf_counter() - start
    serial_rps = n_requests / serial_s if serial_s else float("inf")

    speedup = (
        report.throughput_rps / serial_rps if serial_rps else float("inf")
    )

    # Cache-hit isolation: a repeat submission must complete without
    # invoking any pass or measurement code. MetricsEngine counters and
    # scheduler tick counts are the witnesses.
    cached = OptimizationService.from_agent(agent, include_ir=False)
    with cached:
        first = cached.optimize(corpus[0][1], name="first")
        metrics_before = cached.stats()["metrics"]
        ticks_before = cached.counters["batch_ticks"]
        hit = cached.optimize(corpus[0][1], name="again")
        metrics_after = cached.stats()["metrics"]
    assert hit.cache_hit
    assert hit.report() == first.report()  # bit-identical recorded report
    assert metrics_after == metrics_before, (
        "cache hit touched measurement code"
    )
    assert cached.counters["batch_ticks"] == ticks_before, (
        "cache hit reached the scheduler"
    )

    payload = {
        "concurrency": concurrency,
        "max_batch": concurrency,
        "requests": n_requests,
        "distinct_modules": len(corpus),
        "cpu_count": os.cpu_count(),
        "serial_predict": {
            "wall_seconds": round(serial_s, 4),
            "throughput_rps": round(serial_rps, 2),
        },
        "batched_serving": report.as_dict(),
        "speedup": round(speedup, 2),
        "cache_hit_latency_s": round(hit.latency_s, 6),
    }
    save_results("perf_serving", payload)
    print(
        f"\nbatched serving speedup at concurrency {concurrency}: "
        f"{speedup:.2f}x ({serial_rps:.0f} -> "
        f"{report.throughput_rps:.0f} req/s), "
        f"p50 {report.p50_ms:.2f}ms p99 {report.p99_ms:.2f}ms, "
        f"cache hit {1e3 * hit.latency_s:.3f}ms"
    )
    assert speedup >= 2.0, payload


# -- observability overhead --------------------------------------------------


def test_observability_overhead():
    """Observability cost on the serving hot path; emits
    perf_observability.json.

    Two claims, two checks:

    * **Enabled is cheap (<5%).** The serving hot path's per-request
      work — uncached episode rollouts, every step running its pass and
      re-measuring the module — is driven single-threaded and
      deterministically (the exact loop the scheduler runs per session,
      minus thread-scheduling noise) with observability off and on. The
      enabled side — per-pass StatsTimer records, pipeline span
      synthesis — must cost under 5% of CPU time.
    * **Disabled is free.** Freedom is structural, not statistical:
      disabled construction binds the no-op singletons (no registry
      lookups, no label resolution, no branches beyond pre-existing
      ``is not None`` checks on the hot path), which is asserted
      directly rather than inferred from timing noise.

    The fully-memoized null-request serving path (warm transition
    caches, tiny modules) is deliberately not the percentage target: a
    request there is ~200µs of pure scheduler bookkeeping, so any fixed
    per-request publication cost reads as a huge percentage of nothing.
    The end-to-end served path is covered by bounding the *absolute*
    per-request publication cost there instead (<100µs).
    """
    import gc

    from repro import observability as obs
    from repro.caching import LRUCache
    from repro.ir.printer import print_module
    from repro.observability.registry import NULL_INSTRUMENT
    from repro.serving import OptimizationService, request_pool, run_load

    agent = PosetRL(seed=0)
    # A mid-size module: per-pass work is large enough that the fixed
    # per-pass instrumentation cost is measured against representative
    # work, not against toy passes that finish in tens of microseconds.
    # (Real LLVM modules from the paper's corpora are larger still.)
    work_module = generate_program(
        ProgramProfile(name="obswork", seed=90, segments=10)
    )

    def run_episode() -> float:
        """CPU seconds for one full uncached rollout."""
        engine = MetricsEngine(enabled=False)
        env = PhaseOrderingEnv(
            work_module, agent.actions, target=agent.target,
            episode_length=agent.episode_length, metrics=engine,
        )
        gc.collect()
        gc.disable()
        try:
            start = time.process_time()
            env.reset()
            done = False
            action = 0
            while not done:
                _, _, done, _ = env.step(action % len(agent.actions))
                action += 1
            return time.process_time() - start
        finally:
            gc.enable()

    def measure_work(enable_observability: bool) -> float:
        if enable_observability:
            obs.enable()
        try:
            return run_episode()
        finally:
            if enable_observability:
                obs.disable()

    def median(values):
        ordered = sorted(values)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])

    # Paired rounds: each round times disabled and enabled back-to-back
    # (alternating which goes first), and the statistic is the *median of
    # per-round ratios*. CPU-time drift on this container (frequency
    # scaling, noisy neighbours) moves at the seconds scale — with short
    # per-side units it hits both halves of a round near-equally and
    # cancels in the ratio, and the median discards rounds that straddle
    # a throttling transition; a min taken independently per side can
    # pair a slow-regime disabled floor with a fast-regime enabled one.
    # Even the median of 15 paired ratios can land high when a sustained
    # throttling window lines up with one side's units, so the gate
    # retries the whole measurement up to 3 times: a genuine regression
    # (true overhead past the bound) fails every attempt, a noise spike
    # does not survive three.
    measure_work(False)  # warm both paths
    measure_work(True)
    work_rounds = 15
    work_attempts = []

    def measure_overhead():
        disabled, enabled = [], []
        for i in range(work_rounds):
            order = (False, True) if i % 2 == 0 else (True, False)
            for flag in order:
                (enabled if flag else disabled).append(measure_work(flag))
        ratio = median([e / d - 1.0 for d, e in zip(disabled, enabled)])
        work_attempts.append(
            {
                "disabled_seconds": [round(s, 4) for s in disabled],
                "enabled_seconds": [round(s, 4) for s in enabled],
                "overhead_fraction": round(ratio, 4),
            }
        )
        return ratio

    overhead = measure_overhead()
    for _ in range(2):
        if overhead < 0.05:
            break
        overhead = min(overhead, measure_overhead())

    # End-to-end served null requests (fully memoized, ~200µs of
    # scheduler bookkeeping each): bound the *absolute* per-request
    # publication cost — stage histograms, span tree, counters.
    corpus = [
        (
            f"obs{i}",
            print_module(generate_program(
                ProgramProfile(name=f"obs{i}", seed=90 + i, segments=2)
            )),
        )
        for i in range(4)
    ]
    concurrency = 8

    def measure_serving(enable_observability: bool, n_requests: int) -> float:
        if enable_observability:
            obs.enable()
        try:
            service = OptimizationService.from_agent(
                PosetRL(seed=0),
                max_batch=concurrency,
                batch_window_s=0.002,
                result_cache_size=None,  # full rollouts every request
                include_ir=False,
            )
            assert service._observe is enable_observability
            with service:
                # Warm the transition caches: steady-state null requests.
                run_load(service, request_pool(corpus, len(corpus)),
                         concurrency=concurrency)
                gc.collect()
                gc.disable()
                try:
                    cpu_start = time.process_time()
                    report = run_load(
                        service, request_pool(corpus, n_requests),
                        concurrency=concurrency,
                    )
                    cpu_s = time.process_time() - cpu_start
                finally:
                    gc.enable()
            assert report.status_counts == {"ok": n_requests}
            return cpu_s
        finally:
            if enable_observability:
                obs.disable()

    null_requests, null_rounds = 96, 5
    null_attempts = []

    def measure_publication():
        disabled, enabled = [], []
        for i in range(null_rounds):
            order = (False, True) if i % 2 == 0 else (True, False)
            for flag in order:
                (enabled if flag else disabled).append(
                    measure_serving(flag, null_requests)
                )
        us = max(0.0, median(
            [(e - d) / null_requests * 1e6
             for d, e in zip(disabled, enabled)]
        ))
        null_attempts.append(
            {
                "disabled_seconds": [round(s, 4) for s in disabled],
                "enabled_seconds": [round(s, 4) for s in enabled],
                "publication_us_per_request": round(us, 1),
            }
        )
        return us

    publication_us = measure_publication()
    for _ in range(2):
        if publication_us < 100.0:
            break
        publication_us = min(publication_us, measure_publication())

    # Disabled-is-free, asserted structurally.
    assert obs.get_registry().counter("probe_total") is NULL_INSTRUMENT
    assert LRUCache(capacity=2, name="probe")._metrics is None
    disabled_service = OptimizationService.from_agent(
        PosetRL(seed=0), include_ir=False
    )
    assert disabled_service._observe is False
    assert disabled_service._registry is obs.get_registry()

    payload = {
        "concurrency": concurrency,
        "cpu_count": os.cpu_count(),
        "work_rounds": work_rounds,
        "work_attempts": work_attempts,
        "overhead_fraction": round(overhead, 4),
        "null_requests": null_requests,
        "null_rounds": null_rounds,
        "null_attempts": null_attempts,
        "publication_us_per_request": round(publication_us, 1),
        "disabled_is_structurally_noop": True,
    }
    save_results("perf_observability", payload)
    print(
        f"\nobservability overhead on the serving hot path: "
        f"{100 * overhead:+.2f}% "
        f"(median of {work_rounds} paired-round CPU-time ratios on "
        f"uncached rollouts, {len(work_attempts)} attempt(s)); "
        f"publication cost {publication_us:.1f}us/request on served "
        f"null requests"
    )
    assert overhead < 0.05, payload
    assert publication_us < 100.0, payload
