"""Throughput microbenchmarks for the substrate itself (pytest-benchmark
proper): how fast are the pieces the RL loop leans on — cloning, the Oz
pipeline, embeddings, size/MCA measurement, one environment step — plus a
cached-vs-uncached training-loop comparison for the incremental metrics
engine (written to ``benchmarks/results/perf_metrics_cache.json``)."""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import save_results

from repro.codegen import object_size
from repro.core import MetricsEngine, PhaseOrderingEnv
from repro.embeddings import program_embedding
from repro.mca import estimate_throughput
from repro.passes import build_pipeline
from repro.workloads import ProgramProfile, generate_program


@pytest.fixture(scope="module")
def module():
    return generate_program(ProgramProfile(name="micro", seed=17, segments=8))


def test_clone_throughput(benchmark, module):
    benchmark(module.clone)


def test_oz_pipeline_throughput(benchmark, module):
    def run():
        build_pipeline("Oz").run(module.clone())

    benchmark(run)


def test_embedding_throughput(benchmark, module):
    benchmark(program_embedding, module)


def test_object_size_throughput(benchmark, module):
    benchmark(object_size, module, "x86-64")


def test_mca_throughput(benchmark, module):
    benchmark(estimate_throughput, module, "x86-64")


def test_env_step_throughput(benchmark, module):
    env = PhaseOrderingEnv(module)

    def step():
        env.reset()
        env.step(23)

    benchmark(step)


def test_env_step_throughput_uncached(benchmark, module):
    env = PhaseOrderingEnv(module, cache=False)

    def step():
        env.reset()
        env.step(23)

    benchmark(step)


def _run_training_loop(module, episode_pool, cache: bool) -> float:
    """Wall time of a repeated-episode loop, the RL hot pattern: an
    ε-greedy agent revisits a handful of good sequences over and over."""
    env = PhaseOrderingEnv(module, cache=cache)
    start = time.perf_counter()
    for actions in episode_pool:
        env.reset()
        for action in actions:
            env.step(action)
    return time.perf_counter() - start


def test_metrics_cache_training_speedup(module):
    """Cached training loop must be ≥3× faster than uncached on repeated
    episodes, with bit-identical metrics; emits perf_metrics_cache.json."""
    rng = np.random.RandomState(7)
    distinct = [
        [int(a) for a in rng.randint(0, 34, size=15)] for _ in range(3)
    ]
    # 18 episodes cycling over 3 sequences — exploitation-style revisits.
    episode_pool = [distinct[i % len(distinct)] for i in range(18)]

    uncached_s = _run_training_loop(module, episode_pool, cache=False)
    cached_env = PhaseOrderingEnv(module, cache=True)
    start = time.perf_counter()
    final_sizes = []
    for actions in episode_pool:
        cached_env.reset()
        for action in actions:
            cached_env.step(action)
        final_sizes.append(cached_env.last_size)
    cached_s = time.perf_counter() - start

    # Equivalence spot check: cached replays land on the uncached sizes.
    check_env = PhaseOrderingEnv(module, cache=False)
    for actions, cached_size in zip(episode_pool[:3], final_sizes[:3]):
        check_env.rollout(actions)
        assert check_env.last_size == cached_size

    speedup = uncached_s / cached_s if cached_s > 0 else float("inf")
    stats = cached_env.cache_stats()
    payload = {
        "episodes": len(episode_pool),
        "steps_per_episode": 15,
        "uncached_seconds": round(uncached_s, 4),
        "cached_seconds": round(cached_s, 4),
        "speedup": round(speedup, 2),
        "cache_stats": stats,
    }
    save_results("perf_metrics_cache", payload)
    print(
        f"\ntraining-loop speedup: {speedup:.1f}x "
        f"(uncached {uncached_s:.3f}s vs cached {cached_s:.3f}s), "
        f"transition hit rate "
        f"{stats['transitions']['hit_rate']:.0%}"
    )
    assert speedup >= 3.0, payload
