"""Throughput microbenchmarks for the substrate itself (pytest-benchmark
proper): how fast are the pieces the RL loop leans on — cloning, the Oz
pipeline, embeddings, size/MCA measurement, one environment step — plus a
cached-vs-uncached training-loop comparison for the incremental metrics
engine (written to ``benchmarks/results/perf_metrics_cache.json``) and a
batched-vs-serial training-throughput comparison for the vectorized
trainer (``benchmarks/results/perf_train_vectorized.json``) and a
batched-serving-vs-serial-predict comparison for the optimization
service (``benchmarks/results/perf_serving.json``)."""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from conftest import save_results

from repro import PosetRL
from repro.codegen import object_size
from repro.core import MetricsEngine, PhaseOrderingEnv
from repro.embeddings import program_embedding
from repro.mca import estimate_throughput
from repro.passes import build_pipeline
from repro.rl.dqn import AgentConfig, DoubleDQNAgent
from repro.workloads import ProgramProfile, generate_program


@pytest.fixture(scope="module")
def module():
    return generate_program(ProgramProfile(name="micro", seed=17, segments=8))


def test_clone_throughput(benchmark, module):
    benchmark(module.clone)


def test_oz_pipeline_throughput(benchmark, module):
    def run():
        build_pipeline("Oz").run(module.clone())

    benchmark(run)


def test_embedding_throughput(benchmark, module):
    benchmark(program_embedding, module)


def test_object_size_throughput(benchmark, module):
    benchmark(object_size, module, "x86-64")


def test_mca_throughput(benchmark, module):
    benchmark(estimate_throughput, module, "x86-64")


def test_env_step_throughput(benchmark, module):
    env = PhaseOrderingEnv(module)

    def step():
        env.reset()
        env.step(23)

    benchmark(step)


def test_env_step_throughput_uncached(benchmark, module):
    env = PhaseOrderingEnv(module, cache=False)

    def step():
        env.reset()
        env.step(23)

    benchmark(step)


def _run_training_loop(module, episode_pool, cache: bool) -> float:
    """Wall time of a repeated-episode loop, the RL hot pattern: an
    ε-greedy agent revisits a handful of good sequences over and over."""
    env = PhaseOrderingEnv(module, cache=cache)
    start = time.perf_counter()
    for actions in episode_pool:
        env.reset()
        for action in actions:
            env.step(action)
    return time.perf_counter() - start


def test_metrics_cache_training_speedup(module):
    """Cached training loop must be ≥3× faster than uncached on repeated
    episodes, with bit-identical metrics; emits perf_metrics_cache.json."""
    rng = np.random.RandomState(7)
    distinct = [
        [int(a) for a in rng.randint(0, 34, size=15)] for _ in range(3)
    ]
    # 18 episodes cycling over 3 sequences — exploitation-style revisits.
    episode_pool = [distinct[i % len(distinct)] for i in range(18)]

    uncached_s = _run_training_loop(module, episode_pool, cache=False)
    cached_env = PhaseOrderingEnv(module, cache=True)
    start = time.perf_counter()
    final_sizes = []
    for actions in episode_pool:
        cached_env.reset()
        for action in actions:
            cached_env.step(action)
        final_sizes.append(cached_env.last_size)
    cached_s = time.perf_counter() - start

    # Equivalence spot check: cached replays land on the uncached sizes.
    check_env = PhaseOrderingEnv(module, cache=False)
    for actions, cached_size in zip(episode_pool[:3], final_sizes[:3]):
        check_env.rollout(actions)
        assert check_env.last_size == cached_size

    speedup = uncached_s / cached_s if cached_s > 0 else float("inf")
    stats = cached_env.cache_stats()
    payload = {
        "episodes": len(episode_pool),
        "steps_per_episode": 15,
        "uncached_seconds": round(uncached_s, 4),
        "cached_seconds": round(cached_s, 4),
        "speedup": round(speedup, 2),
        "cache_stats": stats,
    }
    save_results("perf_metrics_cache", payload)
    print(
        f"\ntraining-loop speedup: {speedup:.1f}x "
        f"(uncached {uncached_s:.3f}s vs cached {cached_s:.3f}s), "
        f"transition hit rate "
        f"{stats['transitions']['hit_rate']:.0%}"
    )
    assert speedup >= 3.0, payload


# -- vectorized training -----------------------------------------------------

N_ENVS = 8
STATE_DIM = 300


def _decision_path_seconds(states, reps: int, batched: bool) -> float:
    """Wall time of the per-step agent work — ε-greedy action selection
    plus replay insertion — over ``reps × n_envs`` transitions.

    ``min_replay`` is set beyond the horizon so the measurement isolates
    the decision path (the network-update cadence is identical between
    serial and batched by construction, so it would only add equal time
    to both sides). ε is annealed to its floor first: a trained agent
    exploits almost every step, and exploitation is where the batched
    forward pays.
    """
    config = AgentConfig(
        num_actions=34, min_replay=10**9, epsilon_steps=64, seed=0
    )
    agent = DoubleDQNAgent(config)
    warm = states[0]
    for _ in range(config.epsilon_steps):
        agent.remember(warm, 0, 0.0, warm, False)

    n = states.shape[0]
    rewards = np.linspace(-1.0, 1.0, n)
    dones = np.zeros(n, dtype=bool)
    start = time.perf_counter()
    if batched:
        for _ in range(reps):
            actions = agent.act_batch(states)
            agent.remember_batch(states, actions, rewards, states, dones)
    else:
        for _ in range(reps):
            for i in range(n):
                action = agent.act(states[i])
                agent.remember(
                    states[i], action, float(rewards[i]), states[i], False
                )
    return time.perf_counter() - start


def test_train_vectorized_speedup():
    """Batched training throughput vs the serial loop, metrics cache
    disabled throughout; emits perf_train_vectorized.json.

    Two measurements:

    * **decision path** — the per-step agent work that vectorization
      batches (one ``(8, 300)`` forward + bulk replay insertion instead
      of 8 single-state forwards + 8 pushes). Asserted ≥2× at
      ``n_envs=8``; environment stepping is excluded, so this holds on
      any core count.
    * **end to end** — ``PosetRL.train`` vs ``train_vectorized`` on the
      same uncached corpus and step budget. Reported (not asserted ≥2×):
      uncached stepping is dominated by the pass pipeline + measurement,
      which in-process lockstep cannot parallelize — on a single core it
      lands near 1×; ``workers=N`` moves it toward N× on multi-core.
    """
    corpus = [
        (
            f"bench{i}",
            generate_program(
                ProgramProfile(name=f"bench{i}", seed=40 + i, segments=2)
            ),
        )
        for i in range(4)
    ]
    # Real observation vectors: the base embeddings of 8 programs.
    engine = MetricsEngine(enabled=False)
    states = np.stack([
        engine.embedding(
            generate_program(
                ProgramProfile(name=f"s{i}", seed=60 + i, segments=2)
            )
        )
        for i in range(N_ENVS)
    ]).astype(np.float64)
    assert states.shape == (N_ENVS, STATE_DIM)

    reps = 250
    serial_s = min(
        _decision_path_seconds(states, reps, batched=False) for _ in range(3)
    )
    batched_s = min(
        _decision_path_seconds(states, reps, batched=True) for _ in range(3)
    )
    steps = reps * N_ENVS
    decision_speedup = serial_s / batched_s if batched_s else float("inf")

    total_steps = 120
    vec_agent = PosetRL(seed=0, cache=False)
    vec_agent.train_vectorized(corpus, total_steps=total_steps, n_envs=N_ENVS)
    vec_report = vec_agent.last_train_throughput
    serial_agent = PosetRL(seed=0, cache=False)
    serial_agent.train(
        corpus, episodes=total_steps // serial_agent.episode_length
    )
    serial_report = serial_agent.last_train_throughput
    e2e_speedup = (
        vec_report.steps_per_second / serial_report.steps_per_second
        if serial_report.steps_per_second
        else float("inf")
    )

    payload = {
        "n_envs": N_ENVS,
        "cpu_count": os.cpu_count(),
        "decision_path": {
            "transitions": steps,
            "serial_us_per_step": round(1e6 * serial_s / steps, 2),
            "batched_us_per_step": round(1e6 * batched_s / steps, 2),
            "serial_steps_per_second": round(steps / serial_s, 1),
            "batched_steps_per_second": round(steps / batched_s, 1),
            "speedup": round(decision_speedup, 2),
        },
        "end_to_end_uncached": {
            "serial": serial_report.as_dict(),
            "vectorized": vec_report.as_dict(),
            "speedup": round(e2e_speedup, 2),
            "note": (
                "in-process lockstep; env stepping dominates uncached and "
                "is serial on one core — use workers=N for multi-core scaling"
            ),
        },
    }
    save_results("perf_train_vectorized", payload)
    print(
        f"\ndecision-path speedup at n_envs={N_ENVS}: "
        f"{decision_speedup:.2f}x "
        f"({1e6 * serial_s / steps:.1f}us -> {1e6 * batched_s / steps:.1f}us "
        f"per step); end-to-end uncached {e2e_speedup:.2f}x "
        f"({serial_report.steps_per_second:.0f} -> "
        f"{vec_report.steps_per_second:.0f} steps/s)"
    )
    assert decision_speedup >= 2.0, payload
    # End-to-end must at least not regress materially on one core.
    assert e2e_speedup >= 0.5, payload


# -- batched serving ---------------------------------------------------------


def test_serving_batched_throughput():
    """Batched serving vs serial per-request ``PosetRL.predict`` at
    concurrency 8; emits perf_serving.json.

    Both sides run the same policy over the same module corpus on warm
    metrics caches (an untimed warm-up pass covers every distinct
    module). The serving side gets no result cache and returns no IR, so
    every timed request performs a full greedy rollout — the measured win
    is micro-batching alone: eight in-flight rollouts per batched forward
    instead of one forward per step per request.
    """
    from repro.ir.printer import print_module
    from repro.serving import OptimizationService, request_pool, run_load

    corpus_modules = [
        (
            f"serve{i}",
            generate_program(
                ProgramProfile(name=f"serve{i}", seed=50 + i, segments=2)
            ),
        )
        for i in range(4)
    ]
    corpus = [(name, print_module(m)) for name, m in corpus_modules]
    concurrency = 8
    n_requests = 64

    agent = PosetRL(seed=0)
    service = OptimizationService.from_agent(
        agent,
        max_batch=concurrency,
        batch_window_s=0.002,
        result_cache_size=None,  # force full rollouts: measure batching
        include_ir=False,
    )
    requests = request_pool(corpus, n_requests)
    with service:
        # untimed warm-up: populate the transition caches for both sides
        run_load(service, request_pool(corpus, len(corpus)),
                 concurrency=concurrency)
        report = run_load(service, requests, concurrency=concurrency)
    assert report.status_counts == {"ok": n_requests}

    # Serial baseline: the same rollouts, one request at a time, on its
    # own equally-warm metrics engine.
    serial_agent = PosetRL(seed=0)
    for _, module in corpus_modules:
        serial_agent.predict(module)
    serial_modules = [
        corpus_modules[i % len(corpus_modules)][1] for i in range(n_requests)
    ]
    start = time.perf_counter()
    for module in serial_modules:
        serial_agent.predict(module)
    serial_s = time.perf_counter() - start
    serial_rps = n_requests / serial_s if serial_s else float("inf")

    speedup = (
        report.throughput_rps / serial_rps if serial_rps else float("inf")
    )

    # Cache-hit isolation: a repeat submission must complete without
    # invoking any pass or measurement code. MetricsEngine counters and
    # scheduler tick counts are the witnesses.
    cached = OptimizationService.from_agent(agent, include_ir=False)
    with cached:
        first = cached.optimize(corpus[0][1], name="first")
        metrics_before = cached.stats()["metrics"]
        ticks_before = cached.counters["batch_ticks"]
        hit = cached.optimize(corpus[0][1], name="again")
        metrics_after = cached.stats()["metrics"]
    assert hit.cache_hit
    assert hit.report() == first.report()  # bit-identical recorded report
    assert metrics_after == metrics_before, (
        "cache hit touched measurement code"
    )
    assert cached.counters["batch_ticks"] == ticks_before, (
        "cache hit reached the scheduler"
    )

    payload = {
        "concurrency": concurrency,
        "max_batch": concurrency,
        "requests": n_requests,
        "distinct_modules": len(corpus),
        "cpu_count": os.cpu_count(),
        "serial_predict": {
            "wall_seconds": round(serial_s, 4),
            "throughput_rps": round(serial_rps, 2),
        },
        "batched_serving": report.as_dict(),
        "speedup": round(speedup, 2),
        "cache_hit_latency_s": round(hit.latency_s, 6),
    }
    save_results("perf_serving", payload)
    print(
        f"\nbatched serving speedup at concurrency {concurrency}: "
        f"{speedup:.2f}x ({serial_rps:.0f} -> "
        f"{report.throughput_rps:.0f} req/s), "
        f"p50 {report.p50_ms:.2f}ms p99 {report.p99_ms:.2f}ms, "
        f"cache hit {1e3 * hit.latency_s:.3f}ms"
    )
    assert speedup >= 2.0, payload
