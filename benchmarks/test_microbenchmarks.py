"""Throughput microbenchmarks for the substrate itself (pytest-benchmark
proper): how fast are the pieces the RL loop leans on — cloning, the Oz
pipeline, embeddings, size/MCA measurement, one environment step."""

from __future__ import annotations

import pytest

from repro.codegen import object_size
from repro.core import PhaseOrderingEnv
from repro.embeddings import program_embedding
from repro.mca import estimate_throughput
from repro.passes import build_pipeline
from repro.workloads import ProgramProfile, generate_program


@pytest.fixture(scope="module")
def module():
    return generate_program(ProgramProfile(name="micro", seed=17, segments=8))


def test_clone_throughput(benchmark, module):
    benchmark(module.clone)


def test_oz_pipeline_throughput(benchmark, module):
    def run():
        build_pipeline("Oz").run(module.clone())

    benchmark(run)


def test_embedding_throughput(benchmark, module):
    benchmark(program_embedding, module)


def test_object_size_throughput(benchmark, module):
    benchmark(object_size, module, "x86-64")


def test_mca_throughput(benchmark, module):
    benchmark(estimate_throughput, module, "x86-64")


def test_env_step_throughput(benchmark, module):
    env = PhaseOrderingEnv(module)

    def step():
        env.reset()
        env.step(23)

    benchmark(step)
