"""Flat struct-of-arrays IR core: measure+encode speedup gate.

Times one full measurement of a large generated module — object-file
size, MCA throughput and the IR2Vec program embedding — through the
object-walking path and through the flat kernels (warm
:class:`~repro.ir.flat.FlatCore`, per-repetition fingerprint pack +
array kernels, no result caches on either side), asserts the flat path
is at least 5x faster and that every result is bit-identical, and writes
the numbers to ``benchmarks/results/perf_flat_ir.json``.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import save_results

from repro.codegen import object_size
from repro.embeddings.ir2vec import IR2VecEncoder
from repro.ir.flat import FlatCore
from repro.mca import estimate_throughput
from repro.workloads import ProgramProfile, generate_program

#: The asserted floor; observed ~8-9x on the module below.
MIN_SPEEDUP = 5.0
TARGET = "x86-64"


def _best_of(fn, reps: int, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, (time.perf_counter() - start) / reps)
    return best


def test_flat_measure_encode_speedup():
    module = generate_program(
        ProgramProfile(name="flatbench", seed=11, segments=120, helpers=6)
    )
    n_inst = sum(
        len(b.instructions) for f in module.functions for b in f.blocks
    )
    encoder = IR2VecEncoder()
    core = FlatCore(TARGET)

    def object_path():
        size = object_size(module, TARGET)
        mca = estimate_throughput(module, TARGET)
        emb = encoder.program_embedding(module)
        return size, mca, emb

    def flat_path():
        fps = {fn.name: core.fingerprint(fn) for fn in module.functions}
        size = object_size(module, TARGET, fingerprints=fps, flat=core)
        mca = estimate_throughput(module, TARGET, fingerprints=fps, flat=core)
        emb = encoder.program_embedding(module, fingerprints=fps, flat=core)
        return size, mca, emb

    # Warm both paths (builds the flat rows once), then prove every
    # measurement is bit-identical before timing anything.
    obj_size, obj_mca, obj_emb = object_path()
    flat_size, flat_mca, flat_emb = flat_path()
    assert obj_size == flat_size
    assert obj_mca == flat_mca
    assert np.array_equal(obj_emb, flat_emb)

    object_s = _best_of(object_path, reps=3)
    flat_s = _best_of(flat_path, reps=10)
    speedup = object_s / flat_s

    payload = {
        "module": {
            "instructions": n_inst,
            "functions": len(module.functions),
        },
        "target": TARGET,
        "object_ms": round(object_s * 1000, 3),
        "flat_ms": round(flat_s * 1000, 3),
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
        "flat_core": core.stats_dict(),
    }
    save_results("perf_flat_ir", payload)
    print(
        f"\nflat IR measure+encode: {n_inst} insts  "
        f"object {payload['object_ms']} ms  flat {payload['flat_ms']} ms  "
        f"speedup {payload['speedup']}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"flat path only {speedup:.2f}x faster (< {MIN_SPEEDUP}x): {payload}"
    )
