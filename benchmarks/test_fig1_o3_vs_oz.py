"""Figure 1 + Section I aggregates: O3 vs Oz runtime and code size.

The paper's motivating chart: across SPEC benchmarks, -Oz binaries are
smaller but slower than -O3 (~3.5% smaller, ~10% more execution time on
the authors' testbed). This bench regenerates the per-benchmark series and
the aggregate on the simulated substrate.
"""

from __future__ import annotations

import statistics

from repro.codegen import object_size
from repro.mca import estimate_throughput
from repro.passes import build_pipeline

from conftest import format_table, print_artifact, save_results


def _measure(module, level, target="x86-64"):
    copy = module.clone()
    build_pipeline(level).run(copy)
    return {
        "size": object_size(copy, target).total_bytes,
        "cycles": estimate_throughput(copy, target).total_cycles,
    }


def test_fig1_o3_vs_oz(benchmark, suites):
    def run():
        rows = []
        for suite in ("spec2006", "spec2017"):
            for name, module in suites[suite]:
                o3 = _measure(module, "O3")
                oz = _measure(module, "Oz")
                rows.append(
                    {
                        "bench": name,
                        "o3_size": o3["size"],
                        "oz_size": oz["size"],
                        "o3_cycles": o3["cycles"],
                        "oz_cycles": oz["cycles"],
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = [
        [
            r["bench"],
            r["o3_size"],
            r["oz_size"],
            f"{r['o3_cycles']:.0f}",
            f"{r['oz_cycles']:.0f}",
        ]
        for r in rows
    ]
    print_artifact(
        "Fig. 1 — O3 vs Oz per benchmark (x86-64)",
        format_table(
            ["benchmark", "O3 size", "Oz size", "O3 cycles", "Oz cycles"],
            table,
        ),
    )

    size_deltas = [
        100.0 * (r["o3_size"] - r["oz_size"]) / r["o3_size"] for r in rows
    ]
    runtime_penalties = [
        100.0 * (r["oz_cycles"] - r["o3_cycles"]) / r["o3_cycles"]
        for r in rows
    ]
    avg_size = statistics.mean(size_deltas)
    avg_runtime = statistics.mean(runtime_penalties)
    print_artifact(
        "Section I aggregate (paper: Oz ≈ 3.5% smaller, ≈ 10% slower than O3)",
        f"measured: Oz is {avg_size:.1f}% smaller and {avg_runtime:.1f}% "
        f"slower than O3 on average",
    )
    save_results(
        "fig1_o3_vs_oz",
        {"rows": rows, "avg_size_pct": avg_size, "avg_runtime_pct": avg_runtime},
    )

    # Shape assertions: the tradeoff the paper builds on must hold.
    assert avg_size > 0, "Oz must be smaller than O3 on average"
    assert avg_runtime > 0, "Oz must be slower than O3 on average"
