"""Table VI: predicted sub-sequence orderings.

The paper lists five 15-action sequences predicted by the trained ODG
model (508.namd and 525.x264 on x86, susan on x86, and 508.namd/511.povray
on AArch64) and observes that they mix initial/intermediate/ending Oz
passes with loop groups in combinations the fixed Oz order never produces,
and that different programs get different sequences.
"""

from __future__ import annotations

from repro.core import PAPER_ODG_SUBSEQUENCES

from conftest import format_table, print_artifact, save_results

#: The paper's five showcased (benchmark, target) pairs.
SHOWCASE = [
    ("508.namd_r", "x86-64"),
    ("525.x264_r", "x86-64"),
    ("susan", "x86-64"),
    ("508.namd_r", "aarch64"),
    ("511.povray_r", "aarch64"),
]


def _find_module(suites, bench):
    for suite in suites.values():
        for name, module in suite:
            if name == bench:
                return module
    raise KeyError(bench)


def test_table6_predicted_sequences(benchmark, agents, suites):
    def run():
        out = []
        for bench, target in SHOWCASE:
            agent = agents[("odg", target)]
            module = _find_module(suites, bench)
            actions = agent.predict(module)
            out.append({"bench": bench, "target": target, "actions": actions})
        return out

    predictions = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [
            f"{p['bench']} ({p['target']})",
            " -> ".join(str(a) for a in p["actions"]),
        ]
        for p in predictions
    ]
    print_artifact(
        "Table VI — predicted action sequences (indices into Table III)",
        format_table(["benchmark", "sequence"], rows),
    )
    save_results("table6_predicted_sequences", predictions)

    for p in predictions:
        assert len(p["actions"]) == 15  # the paper's sequence length
        assert all(0 <= a < len(PAPER_ODG_SUBSEQUENCES) for a in p["actions"])

    # "Different sub-sequences are predicted for different sources."
    distinct = {tuple(p["actions"]) for p in predictions}
    assert len(distinct) >= 2

    # The predicted orderings leave the fixed Oz order: at least one
    # adjacent action pair is not adjacent in the Oz decomposition.
    flat = [a for p in predictions for a in p["actions"]]
    assert len(set(flat)) >= 3  # several distinct groups get exercised
