"""Non-learned phase-ordering policies.

Baselines and bounds to position the RL agent against:

* :func:`greedy_reward_policy` — one-step-lookahead maximization of the
  paper's reward (Eq. 1): an oracle-ish upper bound on what a converged
  value function could do per step;
* :func:`greedy_size_policy` / :func:`greedy_throughput_policy` — the
  single-objective extremes (α-only / β-only);
* :func:`random_policy` — uniform actions (the floor);
* :func:`oz_decomposition_policy` — replays the action space's own
  sub-sequences in their -Oz-derived order (what a non-learned scheduler
  would do with the same action space).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from ..codegen.objfile import object_size
from ..ir.module import Module
from ..mca.sched import estimate_throughput
from .environment import ActionSpace, PhaseOrderingEnv
from .rewards import RewardWeights, combined_reward

__all__ = [
    "PolicyResult",
    "greedy_reward_policy",
    "greedy_size_policy",
    "greedy_throughput_policy",
    "oz_decomposition_policy",
    "random_policy",
    "rollout_policy",
]


class PolicyResult:
    """Outcome of running a policy on one module."""

    def __init__(self, env: PhaseOrderingEnv, actions: List[int]):
        self.actions = actions
        self.final_size = env.last_size
        self.final_throughput = env.last_throughput
        self.final_cycles = 1e9 / env.last_throughput
        self.base_size = env.base_size
        self.module = env.current

    @property
    def size_reduction_from_base_pct(self) -> float:
        return 100.0 * (self.base_size - self.final_size) / self.base_size


def rollout_policy(
    module: Module,
    choose: Callable[[PhaseOrderingEnv], int],
    action_space: Optional[ActionSpace] = None,
    target: str = "x86-64",
    steps: int = 15,
    weights: RewardWeights = RewardWeights(),
) -> PolicyResult:
    """Drive an environment with an arbitrary per-step chooser."""
    env = PhaseOrderingEnv(
        module, action_space, target=target, weights=weights,
        episode_length=steps,
    )
    env.reset()
    actions: List[int] = []
    done = False
    while not done:
        action = choose(env)
        _, _, done, _ = env.step(action)
        actions.append(action)
    return PolicyResult(env, actions)


def _lookahead_chooser(
    score: Callable[[PhaseOrderingEnv, Module], float]
) -> Callable[[PhaseOrderingEnv], int]:
    """Chooser that applies every action to a clone and keeps the best."""

    def choose(env: PhaseOrderingEnv) -> int:
        best_action, best_score = 0, None
        for action in range(env.num_actions):
            trial = env.current.clone()
            env.action_space.apply(action, trial)
            s = score(env, trial)
            if best_score is None or s > best_score:
                best_action, best_score = action, s
        return best_action

    return choose


def greedy_reward_policy(
    module: Module,
    action_space: Optional[ActionSpace] = None,
    target: str = "x86-64",
    steps: int = 15,
    weights: RewardWeights = RewardWeights(),
) -> PolicyResult:
    """Maximize the paper's combined reward one step at a time."""

    def score(env: PhaseOrderingEnv, trial: Module) -> float:
        size = object_size(trial, env.target).total_bytes
        tp = estimate_throughput(trial, env.target).throughput
        return combined_reward(
            env.last_size, size, env.base_size,
            env.last_throughput, tp, env.base_throughput, weights,
        )

    return rollout_policy(
        module, _lookahead_chooser(score), action_space, target, steps, weights
    )


def greedy_size_policy(
    module: Module,
    action_space: Optional[ActionSpace] = None,
    target: str = "x86-64",
    steps: int = 15,
) -> PolicyResult:
    """Minimize object size one step at a time (β = 0 extreme)."""

    def score(env: PhaseOrderingEnv, trial: Module) -> float:
        return -float(object_size(trial, env.target).total_bytes)

    return rollout_policy(module, _lookahead_chooser(score), action_space, target, steps)


def greedy_throughput_policy(
    module: Module,
    action_space: Optional[ActionSpace] = None,
    target: str = "x86-64",
    steps: int = 15,
) -> PolicyResult:
    """Minimize estimated cycles one step at a time (α = 0 extreme)."""

    def score(env: PhaseOrderingEnv, trial: Module) -> float:
        return -estimate_throughput(trial, env.target).total_cycles

    return rollout_policy(module, _lookahead_chooser(score), action_space, target, steps)


def random_policy(
    module: Module,
    action_space: Optional[ActionSpace] = None,
    target: str = "x86-64",
    steps: int = 15,
    seed: int = 0,
) -> PolicyResult:
    """Uniform random actions — the floor every learned policy must beat."""
    rng = np.random.RandomState(seed)

    def choose(env: PhaseOrderingEnv) -> int:
        return int(rng.randint(env.num_actions))

    return rollout_policy(module, choose, action_space, target, steps)


def oz_decomposition_policy(
    module: Module,
    action_space: Optional[ActionSpace] = None,
    target: str = "x86-64",
) -> PolicyResult:
    """Apply every sub-sequence of the action space once, in table order —
    i.e. replay the (decomposed) -Oz ordering through the action space."""
    env = PhaseOrderingEnv(module, action_space, target=target,
                           episode_length=10_000)
    env.reset()
    actions = list(range(env.num_actions))
    for action in actions:
        env.step(action)
    return PolicyResult(env, actions)
