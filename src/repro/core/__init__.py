"""POSET-RL core: ODG, action spaces, environment, rewards, agent facade."""

from .agent_api import PosetRL, TrainStats, TrainThroughput
from .environment import (
    ActionSpace,
    DEFAULT_EPISODE_LENGTH,
    PhaseOrderingEnv,
    StepInfo,
    make_action_space,
)
from .evaluate import (
    BenchmarkResult,
    SuiteSummary,
    evaluate_benchmark,
    evaluate_suite,
    optimize_with_oz,
)
from .extensions import ParameterizedActionSpace, make_parameterized_action_space
from .metrics import (
    MetricsEngine,
    ModuleMetrics,
    Transition,
    TransitionCache,
)
from .odg import DEFAULT_CRITICAL_DEGREE, OzDependenceGraph
from .presets import paper_config, quick_config, scaled_config
from .search import (
    PolicyResult,
    greedy_reward_policy,
    greedy_size_policy,
    greedy_throughput_policy,
    oz_decomposition_policy,
    random_policy,
    rollout_policy,
)
from .rewards import ALPHA, BETA, RewardWeights, binsize_reward, combined_reward, throughput_reward
from .vector_env import EnvSpec, EpisodeRecord, VectorPhaseOrderingEnv
from .subsequences import (
    MANUAL_SUBSEQUENCES,
    OZ_PASS_SEQUENCE,
    PAPER_ODG_SUBSEQUENCES,
    flags_to_passes,
)

__all__ = [
    "ALPHA",
    "ActionSpace",
    "BETA",
    "BenchmarkResult",
    "DEFAULT_CRITICAL_DEGREE",
    "DEFAULT_EPISODE_LENGTH",
    "EnvSpec",
    "EpisodeRecord",
    "MANUAL_SUBSEQUENCES",
    "MetricsEngine",
    "ModuleMetrics",
    "OZ_PASS_SEQUENCE",
    "OzDependenceGraph",
    "PAPER_ODG_SUBSEQUENCES",
    "ParameterizedActionSpace",
    "PhaseOrderingEnv",
    "PolicyResult",
    "PosetRL",
    "RewardWeights",
    "StepInfo",
    "SuiteSummary",
    "TrainStats",
    "TrainThroughput",
    "Transition",
    "VectorPhaseOrderingEnv",
    "TransitionCache",
    "binsize_reward",
    "combined_reward",
    "evaluate_benchmark",
    "evaluate_suite",
    "flags_to_passes",
    "greedy_reward_policy",
    "greedy_size_policy",
    "greedy_throughput_policy",
    "oz_decomposition_policy",
    "random_policy",
    "rollout_policy",
    "make_action_space",
    "make_parameterized_action_space",
    "optimize_with_oz",
    "paper_config",
    "quick_config",
    "scaled_config",
    "throughput_reward",
]
