"""The Oz Dependence Graph (ODG) — Fig. 4 / Section IV-B.

Nodes are the transformation passes of ``-Oz``; a directed edge connects
each pass to the one immediately following it in the sequence (edges are
deduplicated, so the ODG is a simple digraph). Nodes of total degree
≥ k (k = 8) are *critical*; the paper finds ``simplifycfg`` (11),
``instcombine`` (10) and ``loop-simplify`` (8). Sub-sequences for the RL
action space are walks that start at a critical node and end on reaching
another critical node (or a sink), so each pass appears with its
dependencies already applied.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..passes.pipelines import OZ_PASS_SEQUENCE

#: The paper's critical-node degree threshold.
DEFAULT_CRITICAL_DEGREE = 8
#: Walks longer than this are cut (Table III's longest has 16 passes).
MAX_WALK_LENGTH = 16


class OzDependenceGraph:
    """ODG construction, critical-node detection, and walk generation."""

    def __init__(
        self,
        sequence: Sequence[str] = tuple(OZ_PASS_SEQUENCE),
        critical_degree: int = DEFAULT_CRITICAL_DEGREE,
    ):
        self.sequence = list(sequence)
        self.critical_degree = critical_degree
        self.graph = nx.DiGraph()
        for name in self.sequence:
            self.graph.add_node(name)
        for earlier, later in zip(self.sequence, self.sequence[1:]):
            if earlier != later:
                self.graph.add_edge(earlier, later)

    # -- structure ------------------------------------------------------------
    def degree(self, node: str) -> int:
        """Total degree (in + out) over the deduplicated edge set."""
        return self.graph.in_degree(node) + self.graph.out_degree(node)

    def critical_nodes(self) -> List[str]:
        """Nodes with degree ≥ threshold, most-connected first."""
        nodes = [
            n for n in self.graph.nodes if self.degree(n) >= self.critical_degree
        ]
        return sorted(nodes, key=lambda n: (-self.degree(n), n))

    def successors(self, node: str) -> List[str]:
        return sorted(self.graph.successors(node))

    # -- walks -------------------------------------------------------------------
    def generate_subsequences(
        self, max_walks: Optional[int] = None
    ) -> List[List[str]]:
        """All simple walks from a critical node to the next critical node
        (or a sink), each a candidate action-space sub-sequence."""
        critical = set(self.critical_nodes())
        walks: List[List[str]] = []
        seen: Set[Tuple[str, ...]] = set()

        def extend(path: List[str]) -> None:
            if max_walks is not None and len(walks) >= max_walks:
                return
            node = path[-1]
            successors = [
                s for s in self.successors(node) if s not in path[1:]
            ]
            terminal = not successors
            for succ in successors:
                if succ in critical:
                    self._record(path, walks, seen)
                    continue
                if succ in path:
                    continue
                if len(path) >= MAX_WALK_LENGTH:
                    terminal = True
                    continue
                extend(path + [succ])
            if terminal:
                self._record(path, walks, seen)

        for start in self.critical_nodes():
            extend([start])
        walks.sort(key=lambda w: (w[0], len(w), tuple(w)))
        return walks

    @staticmethod
    def _record(
        path: List[str], walks: List[List[str]], seen: Set[Tuple[str, ...]]
    ) -> None:
        key = tuple(path)
        if key not in seen and len(path) >= 1:
            seen.add(key)
            walks.append(list(path))

    # -- reporting -----------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        return {
            "nodes": self.graph.number_of_nodes(),
            "edges": self.graph.number_of_edges(),
            "critical_nodes": {
                n: self.degree(n) for n in self.critical_nodes()
            },
            "sequence_length": len(self.sequence),
            "unique_passes": len(set(self.sequence)),
        }
