"""High-level POSET-RL API.

:class:`PosetRL` wires everything together: action space (manual or ODG),
Double-DQN agent, training over a corpus of modules, greedy prediction,
and suite evaluation against ``-Oz``. This is the facade the examples and
benchmark harness drive.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..ir.module import Module
from ..ir.printer import print_module
from ..ir.verifier import VerificationError, verify_module
from ..observability import get_registry
from ..rl.distributed import ActorSpec, DistributedReport, run_actor_learner
from ..rl.dqn import AgentConfig, DoubleDQNAgent, DQNAgent
from ..rl.ppo import PPOAgent, PPOConfig
from .environment import (
    ActionSpace,
    DEFAULT_EPISODE_LENGTH,
    PhaseOrderingEnv,
    make_action_space,
)
from .evaluate import BenchmarkResult, SuiteSummary, evaluate_suite
from .metrics import MetricsEngine
from .rewards import RewardWeights
from .vector_env import EnvSpec, VectorPhaseOrderingEnv


@dataclass
class TrainStats:
    """Per-episode training diagnostics."""

    episode: int
    module: str
    total_reward: float
    final_size: int
    epsilon: float
    actions: List[int] = field(default_factory=list)


@dataclass
class TrainThroughput:
    """Wall-clock throughput of one training run."""

    n_envs: int
    workers: int
    total_steps: int
    episodes: int
    wall_seconds: float
    train_updates: int

    @property
    def steps_per_second(self) -> float:
        return self.total_steps / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def episodes_per_second(self) -> float:
        return self.episodes / self.wall_seconds if self.wall_seconds else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "n_envs": self.n_envs,
            "workers": self.workers,
            "total_steps": self.total_steps,
            "episodes": self.episodes,
            "wall_seconds": round(self.wall_seconds, 4),
            "train_updates": self.train_updates,
            "steps_per_second": round(self.steps_per_second, 2),
            "episodes_per_second": round(self.episodes_per_second, 2),
        }


#: Histogram buckets for per-episode total reward (raw POSET-RL rewards
#: reach ±10 on the size term alone).
EPISODE_REWARD_BUCKETS = (
    -20.0, -10.0, -5.0, -2.0, -1.0, -0.5, 0.0,
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0,
)


def _publish_episode(record: "TrainStats") -> None:
    """Mirror one finished episode into the metric registry."""
    registry = get_registry()
    if not registry.enabled:
        return
    registry.counter(
        "repro_train_episodes_total", "finished training episodes"
    ).inc()
    registry.counter(
        "repro_train_env_steps_total", "environment transitions consumed"
    ).inc(len(record.actions))
    registry.histogram(
        "repro_train_episode_reward", "total reward per episode",
        buckets=EPISODE_REWARD_BUCKETS,
    ).observe(record.total_reward)
    registry.gauge(
        "repro_train_epsilon", "current exploration rate"
    ).set(record.epsilon)


def _publish_throughput(report: "TrainThroughput") -> None:
    registry = get_registry()
    if not registry.enabled:
        return
    registry.gauge(
        "repro_train_steps_per_second",
        "environment steps per wall second of the last training run",
    ).set(report.steps_per_second)


class PosetRL:
    """Train/predict/evaluate phase orderings for size and runtime."""

    def __init__(
        self,
        action_space: str = "odg",
        target: str = "x86-64",
        weights: Optional[RewardWeights] = None,
        episode_length: int = DEFAULT_EPISODE_LENGTH,
        agent_config: Optional[AgentConfig] = None,
        ppo_config: Optional[PPOConfig] = None,
        double_dqn: bool = True,
        algo: Optional[str] = None,
        seed: int = 0,
        cache: bool = True,
    ):
        self.action_space_kind = action_space
        self.actions = make_action_space(action_space)
        self.target = target
        self.weights = weights if weights is not None else RewardWeights()
        self.episode_length = episode_length
        #: One incremental metrics engine shared by every environment this
        #: facade creates — the cross-episode/cross-module reuse is where
        #: the training-loop speedup comes from.
        self.metrics = MetricsEngine(target=target, enabled=cache)
        if algo is None:
            algo = "ddqn" if double_dqn else "dqn"
        if algo not in ("ddqn", "dqn", "prioritized-ddqn", "ppo"):
            raise ValueError(f"unknown algo {algo!r}")
        self.algo = algo
        config = agent_config or AgentConfig()
        config = replace(
            config, num_actions=len(self.actions), seed=seed
        )
        if algo == "ppo":
            if ppo_config is None:
                ppo_config = PPOConfig(
                    state_dim=config.state_dim,
                    num_actions=config.num_actions,
                    hidden=tuple(config.hidden),
                    gamma=config.gamma,
                    reward_scale=config.reward_scale,
                    seed=seed,
                )
            else:
                ppo_config = replace(
                    ppo_config, num_actions=len(self.actions), seed=seed
                )
            self.agent = PPOAgent(ppo_config)
        else:
            if algo == "prioritized-ddqn":
                config = replace(config, prioritized_replay=True)
            agent_cls = DQNAgent if algo == "dqn" else DoubleDQNAgent
            self.agent = agent_cls(config)
        self._agent_config = config
        self._seed = seed
        self._rng = np.random.RandomState(seed + 13)
        self.train_history: List[TrainStats] = []
        #: Throughput report of the most recent :meth:`train` /
        #: :meth:`train_vectorized` call.
        self.last_train_throughput: Optional[TrainThroughput] = None
        #: Pipeline report of the most recent :meth:`train_distributed` run.
        self.last_distributed_report: Optional[DistributedReport] = None

    # -- environments --------------------------------------------------------
    def make_env(self, module: Module) -> PhaseOrderingEnv:
        return PhaseOrderingEnv(
            module,
            self.actions,
            target=self.target,
            weights=self.weights,
            episode_length=self.episode_length,
            metrics=self.metrics,
        )

    def cache_stats(self) -> Dict[str, Dict[str, float]]:
        """Hit/miss/eviction counters of the shared metrics engine."""
        return self.metrics.stats()

    # -- training ---------------------------------------------------------------
    def _flush_updates(self) -> None:
        """Let buffer-based agents (PPO) learn from the residual
        sub-horizon tail when a training budget ends."""
        flush = getattr(self.agent, "flush", None)
        if flush is not None:
            flush()

    def train(
        self,
        modules: Sequence[Tuple[str, Module]],
        episodes: int = 50,
        callback: Optional[Callable[[TrainStats], None]] = None,
    ) -> List[TrainStats]:
        """ε-greedy training over a corpus.

        ``modules`` are (name, module) pairs — e.g. the 130 llvm-test-suite
        single-source programs the paper trains on. Episodes sample the
        corpus uniformly; each episode runs ``episode_length`` steps.
        """
        if not modules:
            raise ValueError("training corpus is empty")
        envs: Dict[str, PhaseOrderingEnv] = {}
        stats: List[TrainStats] = []
        start = time.perf_counter()
        train_updates_before = self.agent.train_steps
        for episode in range(episodes):
            name, module = modules[int(self._rng.randint(len(modules)))]
            env = envs.get(name)
            if env is None:
                env = self.make_env(module)
                envs[name] = env
            state = env.reset()
            total = 0.0
            actions: List[int] = []
            done = False
            while not done:
                action = self.agent.act(state)
                next_state, reward, done, info = env.step(action)
                self.agent.remember(state, action, reward, next_state, done)
                state = next_state
                total += reward
                actions.append(action)
            record = TrainStats(
                episode=episode,
                module=name,
                total_reward=total,
                final_size=env.last_size,
                epsilon=self.agent.epsilon,
                actions=actions,
            )
            stats.append(record)
            _publish_episode(record)
            if callback is not None:
                callback(record)
        self._flush_updates()
        self.last_train_throughput = TrainThroughput(
            n_envs=1,
            workers=0,
            total_steps=sum(len(s.actions) for s in stats),
            episodes=len(stats),
            wall_seconds=time.perf_counter() - start,
            train_updates=self.agent.train_steps - train_updates_before,
        )
        _publish_throughput(self.last_train_throughput)
        self.train_history.extend(stats)
        return stats

    def make_vector_env(
        self,
        modules: Sequence[Tuple[str, Module]],
        n_envs: int,
        workers: int = 0,
    ) -> VectorPhaseOrderingEnv:
        """``n_envs`` lockstep environments over ``modules``.

        In-process slots share this facade's metrics engine (and its
        corpus-sampling RNG, so vectorized and serial training draw the
        same module sequence). ``workers > 0`` moves environment stepping
        into that many child processes — each worker then owns a private
        engine, since caches cannot cross the process boundary.
        """
        if workers:
            spec = EnvSpec(
                action_space_kind=self.action_space_kind,
                target=self.target,
                weights=self.weights,
                episode_length=self.episode_length,
                cache=self.metrics.enabled,
            )
            return VectorPhaseOrderingEnv(
                modules, n_envs, rng=self._rng, workers=workers, spec=spec
            )
        return VectorPhaseOrderingEnv(
            modules, n_envs, env_factory=self.make_env, rng=self._rng
        )

    def train_vectorized(
        self,
        modules: Sequence[Tuple[str, Module]],
        total_steps: Optional[int] = None,
        n_envs: int = 8,
        *,
        episodes: Optional[int] = None,
        workers: int = 0,
        callback: Optional[Callable[[TrainStats], None]] = None,
    ) -> List[TrainStats]:
        """Batched ε-greedy training: ``n_envs`` environments per decision.

        Each iteration makes one batched ``act_batch`` forward over the
        ``(n_envs, state_dim)`` observation matrix, steps every
        environment in lockstep, and stores the resulting transitions
        with serial per-transition semantics (step counting, training
        cadence, target syncs). With ``n_envs=1`` this reproduces
        :meth:`train` bit-for-bit for the same seed; larger ``n_envs``
        amortizes the network forward — and, with ``workers``, overlaps
        environment stepping across processes.

        Give exactly one of ``total_steps`` (environment transitions,
        summed over envs; the loop stops at the first lockstep boundary
        ≥ it) or ``episodes`` (converted via ``episode_length``).
        Episode records match :meth:`train`'s and extend
        ``train_history``; the wall-clock summary lands in
        :attr:`last_train_throughput`.
        """
        if (total_steps is None) == (episodes is None):
            raise ValueError("specify exactly one of total_steps / episodes")
        if episodes is not None:
            total_steps = episodes * self.episode_length
        assert total_steps is not None
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")

        venv = self.make_vector_env(modules, n_envs, workers=workers)
        stats: List[TrainStats] = []
        steps_done = 0
        train_updates_before = self.agent.train_steps
        start = time.perf_counter()
        try:
            venv.reset()
            while steps_done < total_steps:
                # Pending auto-resets materialize here — after the
                # previous step's transitions were stored, which is when
                # the serial loop would sample its next module.
                states = venv.observations
                actions = self.agent.act_batch(states)
                next_states, rewards, dones, _infos = venv.step(actions)
                self.agent.remember_batch(
                    states, actions, rewards, next_states, dones
                )
                steps_done += venv.n_envs
                for rec in venv.pop_completed():
                    record = TrainStats(
                        episode=len(stats),
                        module=rec.module,
                        total_reward=rec.total_reward,
                        final_size=rec.final_size,
                        epsilon=self.agent.epsilon,
                        actions=rec.actions,
                    )
                    stats.append(record)
                    _publish_episode(record)
                    if callback is not None:
                        callback(record)
        finally:
            venv.close()
        self._flush_updates()
        self.last_train_throughput = TrainThroughput(
            n_envs=n_envs,
            workers=venv.workers,
            total_steps=steps_done,
            episodes=len(stats),
            wall_seconds=time.perf_counter() - start,
            train_updates=self.agent.train_steps - train_updates_before,
        )
        _publish_throughput(self.last_train_throughput)
        self.train_history.extend(stats)
        return stats

    def train_distributed(
        self,
        modules: Sequence[Tuple[str, Module]],
        total_steps: Optional[int] = None,
        actors: int = 2,
        *,
        episodes: Optional[int] = None,
        chunk_size: Optional[int] = None,
        broadcast_every: int = 2,
        callback: Optional[Callable[[TrainStats], None]] = None,
        snapshot_dir: Optional[str] = None,
    ) -> List[TrainStats]:
        """Asynchronous actor-learner training over ``actors`` processes.

        Each actor rolls out episodes against a pinned ``.npz`` weight
        snapshot of this facade's agent and streams transition chunks
        back; the learner (this process) ingests them — through
        ``remember_batch`` for the DQN family (optionally into the
        sum-tree prioritized ring when ``algo='prioritized-ddqn'``) or
        PPO lane buffers — and re-broadcasts weights to an actor after
        every ``broadcast_every`` of its chunks. Scheduling is pipelined
        but deterministic (round-robin issue, in-order ingest): a fixed
        seed reproduces the learner weights exactly.

        With ``actors=1``, ``chunk_size=1``, ``broadcast_every=1`` and a
        DQN-family algorithm the run is bit-identical to
        :meth:`train_vectorized` with ``n_envs=1``.

        Budget semantics match :meth:`train_vectorized`: exactly one of
        ``total_steps`` / ``episodes``, stopping at the first chunk
        boundary ≥ the budget. The pipeline summary (broadcasts,
        snapshot staleness, actor rates, priority stats) lands in
        :attr:`last_distributed_report`.
        """
        if (total_steps is None) == (episodes is None):
            raise ValueError("specify exactly one of total_steps / episodes")
        if episodes is not None:
            total_steps = episodes * self.episode_length
        assert total_steps is not None
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        if actors <= 0:
            raise ValueError("actors must be positive")
        if not modules:
            raise ValueError("training corpus is empty")
        chunk = chunk_size if chunk_size is not None else self.episode_length
        corpus_text = [(name, print_module(m)) for name, m in modules]
        c = self._agent_config
        specs = [
            ActorSpec(
                corpus=corpus_text,
                action_space_kind=self.action_space_kind,
                target=self.target,
                weights=self.weights,
                episode_length=self.episode_length,
                cache=self.metrics.enabled,
                algo=self.algo,
                num_actions=len(self.actions),
                epsilon_start=c.epsilon_start,
                epsilon_end=c.epsilon_end,
                epsilon_steps=c.epsilon_steps,
                seed=self._seed,
                actor_id=i,
            )
            for i in range(actors)
        ]
        if self.algo == "ppo":
            save_fn = self.agent.net.save
        else:
            save_fn = self.agent.online.save
        stats: List[TrainStats] = []

        def on_episode(episode) -> None:
            name, total_reward, final_size, ep_actions = episode
            record = TrainStats(
                episode=len(stats),
                module=name,
                total_reward=total_reward,
                final_size=final_size,
                epsilon=self.agent.epsilon,
                actions=ep_actions,
            )
            stats.append(record)
            _publish_episode(record)
            if callback is not None:
                callback(record)

        train_updates_before = self.agent.train_steps
        report = run_actor_learner(
            self.agent,
            specs,
            total_steps,
            chunk_size=chunk,
            broadcast_every=broadcast_every,
            algo=self.algo,
            save_fn=save_fn,
            on_episode=on_episode,
            snapshot_dir=snapshot_dir,
        )
        self._flush_updates()
        self.last_distributed_report = report
        self.last_train_throughput = TrainThroughput(
            n_envs=actors,
            workers=actors,
            total_steps=report.total_steps,
            episodes=len(stats),
            wall_seconds=report.wall_seconds,
            train_updates=self.agent.train_steps - train_updates_before,
        )
        _publish_throughput(self.last_train_throughput)
        self.train_history.extend(stats)
        return stats

    # -- inference -----------------------------------------------------------------
    def predict(self, module: Module) -> List[int]:
        """Greedy rollout: the predicted sub-sequence ordering (Table VI)."""
        env = self.make_env(module)
        state = env.reset()
        actions: List[int] = []
        done = False
        while not done:
            action = self.agent.act(state, greedy=True)
            state, _, done, _ = env.step(action)
            actions.append(action)
        return actions

    def apply_actions(
        self, module: Module, actions: Sequence[int], verify: bool = True
    ) -> Module:
        """Apply a predicted action sequence to a fresh copy of ``module``.

        The result is verified before it is returned: a pass that broke an
        IR invariant raises :class:`ValueError` naming the offending action
        index and its pass sub-sequence (located by replaying the sequence
        with per-action verification — the happy path verifies only once).
        """
        copy = module.clone()
        for action in actions:
            self.actions.apply(action, copy)
        if verify:
            try:
                verify_module(copy)
            except VerificationError as exc:
                probe = module.clone()
                for index, action in enumerate(actions):
                    self.actions.apply(action, probe)
                    try:
                        verify_module(probe)
                    except VerificationError as inner:
                        raise ValueError(
                            f"action {index} (id {action}: "
                            f"{' '.join(self.actions.passes_for(action))}) "
                            f"produced invalid IR: {inner}"
                        ) from exc
                raise ValueError(
                    f"predicted sequence produced invalid IR: {exc}"
                ) from exc
        return copy

    def predicted_pass_sequence(self, actions: Sequence[int]) -> List[str]:
        passes: List[str] = []
        for action in actions:
            passes.extend(self.actions.passes_for(action))
        return passes

    # -- evaluation -------------------------------------------------------------------
    def evaluate_suite(
        self,
        suite_name: str,
        modules: Sequence[Tuple[str, Module]],
        max_workers: Optional[int] = None,
    ) -> SuiteSummary:
        """Table IV / Table V style summary for one benchmark suite.

        ``max_workers`` > 1 evaluates benchmarks in parallel worker
        processes (the facade — agent weights included — is shipped to
        each worker; cache contents are dropped in transit).
        """
        return evaluate_suite(
            suite_name,
            modules,
            predict=self.predict,
            apply_actions=self.apply_actions,
            target=self.target,
            max_workers=max_workers,
        )

    # -- persistence -----------------------------------------------------------
    def save(self, path: str) -> None:
        """Checkpoint the online network, with serving-facing metadata.

        The embedded metadata (action-space name, target, episode length,
        training stats) lets :class:`repro.serving.ModelRegistry` rebuild a
        correctly-configured serving model from the file alone.
        """
        self.agent.save(path, metadata=self.checkpoint_metadata())

    def checkpoint_metadata(self) -> Dict[str, object]:
        return {
            "action_space": self.action_space_kind,
            "target": self.target,
            "episode_length": self.episode_length,
            "num_actions": len(self.actions),
            "algo": self.algo,
            "double_dqn": self.agent.double,
            "train_episodes": len(self.train_history),
            "train_steps": self.agent.steps,
            "train_updates": self.agent.train_steps,
            "epsilon": self.agent.epsilon,
        }

    def load(self, path: str) -> None:
        self.agent.load(path)
