"""High-level POSET-RL API.

:class:`PosetRL` wires everything together: action space (manual or ODG),
Double-DQN agent, training over a corpus of modules, greedy prediction,
and suite evaluation against ``-Oz``. This is the facade the examples and
benchmark harness drive.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..ir.module import Module
from ..rl.dqn import AgentConfig, DoubleDQNAgent, DQNAgent
from .environment import (
    ActionSpace,
    DEFAULT_EPISODE_LENGTH,
    PhaseOrderingEnv,
    make_action_space,
)
from .evaluate import BenchmarkResult, SuiteSummary, evaluate_suite
from .metrics import MetricsEngine
from .rewards import RewardWeights


@dataclass
class TrainStats:
    """Per-episode training diagnostics."""

    episode: int
    module: str
    total_reward: float
    final_size: int
    epsilon: float
    actions: List[int] = field(default_factory=list)


class PosetRL:
    """Train/predict/evaluate phase orderings for size and runtime."""

    def __init__(
        self,
        action_space: str = "odg",
        target: str = "x86-64",
        weights: Optional[RewardWeights] = None,
        episode_length: int = DEFAULT_EPISODE_LENGTH,
        agent_config: Optional[AgentConfig] = None,
        double_dqn: bool = True,
        seed: int = 0,
        cache: bool = True,
    ):
        self.action_space_kind = action_space
        self.actions = make_action_space(action_space)
        self.target = target
        self.weights = weights if weights is not None else RewardWeights()
        self.episode_length = episode_length
        #: One incremental metrics engine shared by every environment this
        #: facade creates — the cross-episode/cross-module reuse is where
        #: the training-loop speedup comes from.
        self.metrics = MetricsEngine(target=target, enabled=cache)
        config = agent_config or AgentConfig()
        config = replace(
            config, num_actions=len(self.actions), seed=seed
        )
        agent_cls = DoubleDQNAgent if double_dqn else DQNAgent
        self.agent = agent_cls(config)
        self._rng = np.random.RandomState(seed + 13)
        self.train_history: List[TrainStats] = []

    # -- environments --------------------------------------------------------
    def make_env(self, module: Module) -> PhaseOrderingEnv:
        return PhaseOrderingEnv(
            module,
            self.actions,
            target=self.target,
            weights=self.weights,
            episode_length=self.episode_length,
            metrics=self.metrics,
        )

    def cache_stats(self) -> Dict[str, Dict[str, float]]:
        """Hit/miss/eviction counters of the shared metrics engine."""
        return self.metrics.stats()

    # -- training ---------------------------------------------------------------
    def train(
        self,
        modules: Sequence[Tuple[str, Module]],
        episodes: int = 50,
        callback: Optional[Callable[[TrainStats], None]] = None,
    ) -> List[TrainStats]:
        """ε-greedy training over a corpus.

        ``modules`` are (name, module) pairs — e.g. the 130 llvm-test-suite
        single-source programs the paper trains on. Episodes sample the
        corpus uniformly; each episode runs ``episode_length`` steps.
        """
        if not modules:
            raise ValueError("training corpus is empty")
        envs: Dict[str, PhaseOrderingEnv] = {}
        stats: List[TrainStats] = []
        for episode in range(episodes):
            name, module = modules[int(self._rng.randint(len(modules)))]
            env = envs.get(name)
            if env is None:
                env = self.make_env(module)
                envs[name] = env
            state = env.reset()
            total = 0.0
            actions: List[int] = []
            done = False
            while not done:
                action = self.agent.act(state)
                next_state, reward, done, info = env.step(action)
                self.agent.remember(state, action, reward, next_state, done)
                state = next_state
                total += reward
                actions.append(action)
            record = TrainStats(
                episode=episode,
                module=name,
                total_reward=total,
                final_size=env.last_size,
                epsilon=self.agent.epsilon,
                actions=actions,
            )
            stats.append(record)
            if callback is not None:
                callback(record)
        self.train_history.extend(stats)
        return stats

    # -- inference -----------------------------------------------------------------
    def predict(self, module: Module) -> List[int]:
        """Greedy rollout: the predicted sub-sequence ordering (Table VI)."""
        env = self.make_env(module)
        state = env.reset()
        actions: List[int] = []
        done = False
        while not done:
            action = self.agent.act(state, greedy=True)
            state, _, done, _ = env.step(action)
            actions.append(action)
        return actions

    def apply_actions(self, module: Module, actions: Sequence[int]) -> Module:
        """Apply a predicted action sequence to a fresh copy of ``module``."""
        copy = module.clone()
        for action in actions:
            self.actions.apply(action, copy)
        return copy

    def predicted_pass_sequence(self, actions: Sequence[int]) -> List[str]:
        passes: List[str] = []
        for action in actions:
            passes.extend(self.actions.passes_for(action))
        return passes

    # -- evaluation -------------------------------------------------------------------
    def evaluate_suite(
        self,
        suite_name: str,
        modules: Sequence[Tuple[str, Module]],
        max_workers: Optional[int] = None,
    ) -> SuiteSummary:
        """Table IV / Table V style summary for one benchmark suite.

        ``max_workers`` > 1 evaluates benchmarks in parallel worker
        processes (the facade — agent weights included — is shipped to
        each worker; cache contents are dropped in transit).
        """
        return evaluate_suite(
            suite_name,
            modules,
            predict=self.predict,
            apply_actions=self.apply_actions,
            target=self.target,
            max_workers=max_workers,
        )

    # -- persistence -----------------------------------------------------------
    def save(self, path: str) -> None:
        self.agent.save(path)

    def load(self, path: str) -> None:
        self.agent.load(path)
