"""Reward computation (Section III-C, Equations 1-3).

``R = α · R_BinSize + β · R_Throughput`` with α = 10, β = 5 (Section V-A),
where both components are deltas between consecutive episode states
normalized by the *unoptimized* program's metrics:

    R_BinSize    = (BinSize_last − BinSize_curr)   / BinSize_base
    R_Throughput = (Throughput_curr − Throughput_last) / Throughput_base
"""

from __future__ import annotations

from dataclasses import dataclass

#: Paper values: "We set α to 10 and β to 5 … to give more weight to
#: R_BinSize than R_Throughput."
ALPHA = 10.0
BETA = 5.0


@dataclass(frozen=True)
class RewardWeights:
    alpha: float = ALPHA
    beta: float = BETA


def binsize_reward(last: float, current: float, base: float) -> float:
    """Equation (2)."""
    if base <= 0:
        return 0.0
    return (last - current) / base


def throughput_reward(last: float, current: float, base: float) -> float:
    """Equation (3)."""
    if base <= 0:
        return 0.0
    return (current - last) / base


def combined_reward(
    size_last: float,
    size_curr: float,
    size_base: float,
    tp_last: float,
    tp_curr: float,
    tp_base: float,
    weights: RewardWeights = RewardWeights(),
) -> float:
    """Equation (1)."""
    return weights.alpha * binsize_reward(
        size_last, size_curr, size_base
    ) + weights.beta * throughput_reward(tp_last, tp_curr, tp_base)
