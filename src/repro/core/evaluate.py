"""Evaluation against the -Oz baseline (the paper's Tables IV/V, Fig. 5).

For each benchmark module: optimize one copy with ``-Oz``, one with the
agent's predicted sub-sequence ordering, and compare object size and the
MCA runtime proxy. Suite-level summaries report min/avg/max size
reduction (Table IV) and average runtime improvement (Table V).

:func:`evaluate_suite` optionally fans per-benchmark evaluation out across
a process pool (``max_workers``): modules travel to workers as printed IR
text (the value graph itself is not picklable), the predictor travels as a
pickled callable.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..codegen.objfile import object_size
from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.printer import print_module
from ..mca.sched import estimate_throughput
from ..passes.pipelines import build_pipeline


@dataclass
class BenchmarkResult:
    """Per-benchmark comparison of the agent sequence vs -Oz."""

    name: str
    oz_size: int
    agent_size: int
    oz_cycles: float
    agent_cycles: float
    actions: List[int] = field(default_factory=list)

    @property
    def size_reduction_pct(self) -> float:
        """Positive = agent binary smaller than Oz (paper's metric)."""
        if self.oz_size == 0:
            return 0.0
        return 100.0 * (self.oz_size - self.agent_size) / self.oz_size

    @property
    def runtime_improvement_pct(self) -> float:
        """Positive = agent binary faster than Oz (MCA cycles proxy)."""
        if self.oz_cycles == 0:
            return 0.0
        return 100.0 * (self.oz_cycles - self.agent_cycles) / self.oz_cycles


@dataclass
class SuiteSummary:
    """Table IV row: min/avg/max size reduction, plus Table V's runtime."""

    suite: str
    target: str
    results: List[BenchmarkResult]

    def _series(self, attr: str) -> List[float]:
        return [getattr(r, attr) for r in self.results]

    @property
    def min_size_reduction(self) -> float:
        return min(self._series("size_reduction_pct"), default=0.0)

    @property
    def avg_size_reduction(self) -> float:
        series = self._series("size_reduction_pct")
        return sum(series) / len(series) if series else 0.0

    @property
    def max_size_reduction(self) -> float:
        return max(self._series("size_reduction_pct"), default=0.0)

    @property
    def avg_runtime_improvement(self) -> float:
        series = self._series("runtime_improvement_pct")
        return sum(series) / len(series) if series else 0.0

    def row(self) -> Dict[str, float]:
        return {
            "min": round(self.min_size_reduction, 2),
            "avg": round(self.avg_size_reduction, 2),
            "max": round(self.max_size_reduction, 2),
            "runtime": round(self.avg_runtime_improvement, 2),
        }


def measure(module: Module, target: str) -> Dict[str, float]:
    return {
        "size": object_size(module, target).total_bytes,
        "cycles": estimate_throughput(module, target).total_cycles,
    }


def optimize_with_oz(module: Module, target: str) -> Dict[str, float]:
    copy = module.clone()
    build_pipeline("Oz").run(copy)
    return measure(copy, target)


def evaluate_benchmark(
    name: str,
    module: Module,
    predict: Callable[[Module], Sequence[int]],
    apply_actions: Callable[[Module, Sequence[int]], Module],
    target: str = "x86-64",
) -> BenchmarkResult:
    """Compare agent-predicted ordering vs -Oz on one module."""
    oz = optimize_with_oz(module, target)
    actions = list(predict(module))
    optimized = apply_actions(module, actions)
    agent = measure(optimized, target)
    return BenchmarkResult(
        name=name,
        oz_size=int(oz["size"]),
        agent_size=int(agent["size"]),
        oz_cycles=oz["cycles"],
        agent_cycles=agent["cycles"],
        actions=actions,
    )


def _evaluate_benchmark_text(
    name: str,
    module_text: str,
    predict: Callable[[Module], Sequence[int]],
    apply_actions: Callable[[Module, Sequence[int]], Module],
    target: str,
) -> BenchmarkResult:
    """Worker-side entry: rebuild the module from text, then evaluate."""
    module = parse_module(module_text)
    return evaluate_benchmark(
        name, module, predict=predict, apply_actions=apply_actions,
        target=target,
    )


def default_worker_count() -> int:
    """Default process-pool width: one worker per core, capped at 8."""
    return max(1, min(os.cpu_count() or 1, 8))


def evaluate_suite(
    suite_name: str,
    modules: Sequence[Tuple[str, Module]],
    predict: Callable[[Module], Sequence[int]],
    apply_actions: Callable[[Module, Sequence[int]], Module],
    target: str = "x86-64",
    max_workers: Optional[int] = None,
) -> SuiteSummary:
    """Evaluate every benchmark in a suite against ``-Oz``.

    ``max_workers`` > 1 fans benchmarks out over a process pool; ``None``
    or ``0``/``1`` evaluates serially in-process. Results preserve the
    input order either way, and parallel evaluation is exact: workers
    receive the printed IR (a faithful structural round-trip) and run the
    identical per-benchmark path.
    """
    if max_workers is not None and max_workers > 1 and len(modules) > 1:
        workers = min(max_workers, len(modules))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _evaluate_benchmark_text,
                    name,
                    print_module(module),
                    predict,
                    apply_actions,
                    target,
                )
                for name, module in modules
            ]
            results = [f.result() for f in futures]
    else:
        results = [
            evaluate_benchmark(
                name, module, predict=predict, apply_actions=apply_actions,
                target=target,
            )
            for name, module in modules
        ]
    return SuiteSummary(suite=suite_name, target=target, results=results)
