"""Parameterized action spaces — the paper's stated future work.

Section VII: *"In future, we plan to extend this framework to support
predicting the parameters of the optimizations (like unroll factors and
vector factors) along with the sequence."* This module implements that
extension: selected sub-sequences are replicated with different pass
parameters (unroll budgets, inline thresholds), so the agent picks the
parameter by picking the action. Everything else — environment, reward,
agent — is unchanged.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

from ..passes.base import Pass, create_pass
from ..passes.ipo.inline import Inliner
from ..passes.loops.loop_unroll import LoopUnroll
from .environment import ActionSpace
from .subsequences import PAPER_ODG_SUBSEQUENCES

__all__ = [
    "PARAMETERIZED_VARIANTS",
    "ParameterizedActionSpace",
    "make_parameterized_action_space",
]

#: (pass name, parameter label, factory) — the parameter grid exposed to
#: the agent. Budgets follow the Oz/Os/O2 tiers of the pipelines.
PARAMETERIZED_VARIANTS = {
    "loop-unroll": [
        ("unroll=tiny", lambda: LoopUnroll(size_budget=16, max_trip=4)),
        ("unroll=default", lambda: LoopUnroll(size_budget=48, max_trip=16)),
        ("unroll=wide", lambda: LoopUnroll(size_budget=160, max_trip=16)),
    ],
    "inline": [
        ("inline=size", lambda: Inliner(threshold=24)),
        ("inline=speed", lambda: Inliner(threshold=80)),
    ],
}


class ParameterizedActionSpace(ActionSpace):
    """An ActionSpace whose actions carry concrete pass parameters.

    Sub-sequences containing a parameterizable pass are expanded into one
    action per parameter choice; all other sub-sequences appear once. The
    ``labels`` list names each action (e.g. ``"20[unroll=wide]"``).
    """

    def __init__(self, subsequences: Sequence[Sequence[str]]):
        expanded: List[List[Union[str, Pass]]] = []
        labels: List[str] = []
        for index, seq in enumerate(subsequences):
            variants = self._expand(list(seq))
            for label_suffix, concrete in variants:
                expanded.append(concrete)
                labels.append(
                    f"{index}{label_suffix}" if label_suffix else str(index)
                )
        self.labels = labels
        # ActionSpace stores pass-name lists; we bypass it to keep Pass
        # instances, so replicate its internals with instantiated managers.
        from ..passes.base import PassManager

        self.subsequences = [
            [p if isinstance(p, str) else p.name for p in seq]
            for seq in expanded
        ]
        self._managers = [
            PassManager(
                [p if isinstance(p, Pass) else create_pass(p) for p in seq]
            )
            for seq in expanded
        ]

    @staticmethod
    def _expand(
        seq: List[str],
    ) -> List[Tuple[str, List[Union[str, Pass]]]]:
        for position, name in enumerate(seq):
            variants = PARAMETERIZED_VARIANTS.get(name)
            if variants is None:
                continue
            out: List[Tuple[str, List[Union[str, Pass]]]] = []
            for label, factory in variants:
                concrete: List[Union[str, Pass]] = list(seq)
                concrete[position] = factory()
                out.append((f"[{label}]", concrete))
            return out
        return [("", list(seq))]


def make_parameterized_action_space(
    base: Sequence[Sequence[str]] = PAPER_ODG_SUBSEQUENCES,
) -> ParameterizedActionSpace:
    """The ODG action space with unroll/inline parameters exposed."""
    return ParameterizedActionSpace(base)
