"""Synchronous vector environment: N phase-ordering envs in lockstep.

:class:`VectorPhaseOrderingEnv` drives ``n_envs`` :class:`PhaseOrderingEnv`
instances over a sampled corpus so an agent can make one batched decision
per wall-clock step — ``act_batch`` on an ``(n_envs, state_dim)`` matrix —
instead of one network forward per environment. Episodes auto-reset: when
a slot finishes its episode, the completed trajectory is recorded (see
:class:`EpisodeRecord` / :meth:`pop_completed`) and the slot resamples a
module from the corpus on the *next* observation request.

Resets are deliberately lazy. The corpus-sampling RNG draw for a slot's
next episode happens when observations are next needed, not at the moment
``done`` flips — exactly where the serial training loop in
:meth:`repro.core.agent_api.PosetRL.train` draws it. With ``n_envs=1``
the vector path therefore consumes the shared RNG stream identically to
the serial loop, which is what makes batched training bit-for-bit
reproducible against it.

Two execution modes:

* **in-process** (default): slots hold real ``PhaseOrderingEnv`` objects
  created through an ``env_factory`` and share the session
  :class:`~repro.core.metrics.MetricsEngine` — every slot feeds, and
  benefits from, the same transition cache.
* **worker processes** (``workers=k``): slots are partitioned over ``k``
  child processes, each stepping its share of environments while the
  others run — on multi-core machines this parallelizes the expensive
  pass-pipeline/measurement work that dominates uncached stepping.
  ``Module`` objects do not pickle, so modules cross the process boundary
  once per (worker, benchmark) as printed IR text, the same convention as
  :func:`repro.core.evaluate.evaluate_suite`. Each worker owns a private
  metrics engine; trajectories are identical to in-process mode because
  environment stepping is deterministic.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.printer import print_module
from .environment import (
    DEFAULT_EPISODE_LENGTH,
    PhaseOrderingEnv,
    StepInfo,
    make_action_space,
)
from .metrics import MetricsEngine
from .rewards import RewardWeights


@dataclass
class EpisodeRecord:
    """One finished episode, accumulated by the vector env."""

    module: str
    total_reward: float
    final_size: int
    actions: List[int] = field(default_factory=list)


@dataclass
class EnvSpec:
    """Picklable recipe for building a ``PhaseOrderingEnv`` in a worker."""

    action_space_kind: str = "odg"
    target: str = "x86-64"
    weights: Optional[RewardWeights] = None
    episode_length: int = DEFAULT_EPISODE_LENGTH
    cache: bool = True


def _env_worker(conn, spec: EnvSpec) -> None:
    """Child-process loop: builds envs on demand, steps them on command.

    Protocol (all messages are tuples, batched per worker):

    * ``("reset", [(slot, name, ir_text_or_None), ...])`` → list of state
      arrays. ``ir_text`` accompanies the first use of ``name`` only; the
      worker caches parsed envs by benchmark name.
    * ``("step", [(slot, action), ...])`` → list of
      ``(state, reward, done, StepInfo)``.
    * ``("close",)`` → exit.
    """
    action_space = make_action_space(spec.action_space_kind)
    engine = MetricsEngine(target=spec.target, enabled=spec.cache)
    # Parsed modules are shared per name; envs are cached per *slot* —
    # two slots running the same benchmark need independent mutable
    # environments (they share metrics through ``engine`` instead).
    parsed: Dict[str, Module] = {}
    envs: Dict[Tuple[int, str], PhaseOrderingEnv] = {}
    active: Dict[int, PhaseOrderingEnv] = {}
    try:
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "reset":
                states = []
                for slot, name, ir_text in msg[1]:
                    if ir_text is not None and name not in parsed:
                        parsed[name] = parse_module(ir_text)
                    env = envs.get((slot, name))
                    if env is None:
                        env = PhaseOrderingEnv(
                            parsed[name],
                            action_space,
                            target=spec.target,
                            weights=spec.weights,
                            episode_length=spec.episode_length,
                            metrics=engine,
                        )
                        envs[(slot, name)] = env
                    active[slot] = env
                    states.append(np.asarray(env.reset()))
                conn.send(states)
            elif cmd == "step":
                results = []
                for slot, action in msg[1]:
                    state, reward, done, info = active[slot].step(int(action))
                    results.append(
                        (np.asarray(state), float(reward), bool(done), info)
                    )
                conn.send(results)
            elif cmd == "close":
                return
    except (EOFError, KeyboardInterrupt):  # parent died / interrupted
        return
    finally:
        conn.close()


class VectorPhaseOrderingEnv:
    """N lockstep phase-ordering environments over a sampled corpus."""

    def __init__(
        self,
        modules: Sequence[Tuple[str, Module]],
        n_envs: int,
        env_factory: Optional[Callable[[Module], PhaseOrderingEnv]] = None,
        *,
        rng: Optional[np.random.RandomState] = None,
        workers: int = 0,
        spec: Optional[EnvSpec] = None,
    ):
        if not modules:
            raise ValueError("training corpus is empty")
        if n_envs <= 0:
            raise ValueError("n_envs must be positive")
        self.modules = list(modules)
        self.n_envs = n_envs
        self._rng = rng if rng is not None else np.random.RandomState(0)
        self._needs_reset = [True] * n_envs
        self._obs: Optional[np.ndarray] = None
        self._completed: List[EpisodeRecord] = []
        self._slot_names: List[Optional[str]] = [None] * n_envs
        self._ep_rewards = [0.0] * n_envs
        self._ep_actions: List[List[int]] = [[] for _ in range(n_envs)]
        self._closed = False

        self.workers = min(int(workers), n_envs) if workers else 0
        if self.workers:
            self._spec = spec if spec is not None else EnvSpec()
            ctx = mp.get_context()
            self._conns = []
            self._procs = []
            self._sent_names: List[Set[str]] = []
            for _ in range(self.workers):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_env_worker,
                    args=(child_conn, self._spec),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
                self._sent_names.append(set())
        else:
            if env_factory is None:
                if spec is not None:
                    s = spec
                    shared = MetricsEngine(target=s.target, enabled=s.cache)
                    space = make_action_space(s.action_space_kind)

                    def env_factory(module: Module) -> PhaseOrderingEnv:
                        return PhaseOrderingEnv(
                            module,
                            space,
                            target=s.target,
                            weights=s.weights,
                            episode_length=s.episode_length,
                            metrics=shared,
                        )
                else:
                    raise ValueError(
                        "in-process mode needs an env_factory (or a spec)"
                    )
            self._env_factory = env_factory
            # Per-slot env caches keyed by benchmark name: one slot reuses
            # its env when the corpus resamples the same program (matching
            # the serial loop's cache), but two concurrently-active slots
            # never share one mutable env instance.
            self._env_cache: List[Dict[str, PhaseOrderingEnv]] = [
                {} for _ in range(n_envs)
            ]
            self._slot_envs: List[Optional[PhaseOrderingEnv]] = [None] * n_envs

    # -- slot plumbing ------------------------------------------------------
    def _worker_for(self, slot: int) -> int:
        return slot % self.workers

    def _sample(self) -> Tuple[str, Module]:
        return self.modules[int(self._rng.randint(len(self.modules)))]

    def _materialize_resets(self) -> None:
        """Sample modules and reset every slot flagged ``needs_reset``.

        Sampling happens in slot order with one RNG draw per slot — the
        draws the serial loop would make at its next episode starts.
        """
        pending = [i for i in range(self.n_envs) if self._needs_reset[i]]
        if not pending:
            return
        picks: List[Tuple[int, str, Module]] = []
        for slot in pending:
            name, module = self._sample()
            picks.append((slot, name, module))
            self._slot_names[slot] = name
            self._ep_rewards[slot] = 0.0
            self._ep_actions[slot] = []
            self._needs_reset[slot] = False

        if self.workers:
            by_worker: Dict[int, List[Tuple[int, str, Optional[str]]]] = {}
            for slot, name, module in picks:
                w = self._worker_for(slot)
                ir_text = None
                if name not in self._sent_names[w]:
                    ir_text = print_module(module)
                    self._sent_names[w].add(name)
                by_worker.setdefault(w, []).append((slot, name, ir_text))
            for w, items in by_worker.items():
                self._conns[w].send(("reset", items))
            for w, items in by_worker.items():
                states = self._conns[w].recv()
                for (slot, _, _), state in zip(items, states):
                    self._store_obs(slot, state)
        else:
            for slot, name, module in picks:
                env = self._env_cache[slot].get(name)
                if env is None:
                    env = self._env_factory(module)
                    self._env_cache[slot][name] = env
                self._slot_envs[slot] = env
                self._store_obs(slot, env.reset())

    def _store_obs(self, slot: int, state: np.ndarray) -> None:
        if self._obs is None:
            self._obs = np.zeros(
                (self.n_envs, np.asarray(state).shape[-1]), dtype=np.float64
            )
        self._obs[slot] = state

    # -- gym-style vector API ----------------------------------------------
    @property
    def state_dim(self) -> Optional[int]:
        return None if self._obs is None else self._obs.shape[1]

    @property
    def observations(self) -> np.ndarray:
        """Current ``(n_envs, state_dim)`` observations.

        Materializes any pending auto-resets (this is where finished
        slots draw their next module). Returns a copy: :meth:`step`
        updates the internal buffer in place, and callers hold on to the
        pre-step observations until they have stored the transition.
        """
        self._materialize_resets()
        assert self._obs is not None
        return self._obs.copy()

    def reset(self) -> np.ndarray:
        """Resample and reset every slot; returns the stacked states."""
        for slot in range(self.n_envs):
            self._needs_reset[slot] = True
            self._ep_rewards[slot] = 0.0
            self._ep_actions[slot] = []
        self._completed.clear()
        return self.observations

    def step(
        self, actions: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[StepInfo]]:
        """Advance every slot one step in lockstep.

        Returns ``(next_states, rewards, dones, infos)``. For slots that
        finished their episode, ``next_states`` holds the *terminal*
        observation (what a learner should store for the transition);
        the post-reset observation appears in :attr:`observations` once
        the slot's lazy reset runs. Completed episodes are queued for
        :meth:`pop_completed`.
        """
        if len(actions) != self.n_envs:
            raise ValueError(
                f"expected {self.n_envs} actions, got {len(actions)}"
            )
        if any(self._needs_reset):
            self._materialize_resets()
        assert self._obs is not None

        results: List[Optional[Tuple[np.ndarray, float, bool, StepInfo]]]
        results = [None] * self.n_envs
        if self.workers:
            by_worker: Dict[int, List[Tuple[int, int]]] = {}
            for slot in range(self.n_envs):
                by_worker.setdefault(self._worker_for(slot), []).append(
                    (slot, int(actions[slot]))
                )
            for w, items in by_worker.items():
                self._conns[w].send(("step", items))
            for w, items in by_worker.items():
                for (slot, _), result in zip(items, self._conns[w].recv()):
                    results[slot] = result
        else:
            for slot in range(self.n_envs):
                env = self._slot_envs[slot]
                assert env is not None
                state, reward, done, info = env.step(int(actions[slot]))
                results[slot] = (state, reward, done, info)

        next_states = np.empty_like(self._obs)
        rewards = np.zeros(self.n_envs, dtype=np.float64)
        dones = np.zeros(self.n_envs, dtype=bool)
        infos: List[StepInfo] = []
        for slot, result in enumerate(results):
            assert result is not None
            state, reward, done, info = result
            next_states[slot] = state
            rewards[slot] = reward
            dones[slot] = done
            infos.append(info)
            self._ep_rewards[slot] += reward
            self._ep_actions[slot].append(info.action)
            if done:
                name = self._slot_names[slot]
                assert name is not None
                self._completed.append(
                    EpisodeRecord(
                        module=name,
                        total_reward=self._ep_rewards[slot],
                        # StepInfo.bin_size is the post-step size, i.e.
                        # the env's ``last_size`` at episode end.
                        final_size=info.bin_size,
                        actions=list(self._ep_actions[slot]),
                    )
                )
                self._needs_reset[slot] = True
            else:
                self._obs[slot] = state
        return next_states, rewards, dones, infos

    def pop_completed(self) -> List[EpisodeRecord]:
        """Drain episodes finished since the last call (oldest first)."""
        done, self._completed = self._completed, []
        return done

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self.workers:
            for conn in self._conns:
                try:
                    conn.send(("close",))
                    conn.close()
                except (BrokenPipeError, OSError):
                    pass
            for proc in self._procs:
                proc.join(timeout=5)
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.terminate()

    def __enter__(self) -> "VectorPhaseOrderingEnv":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter shutdown ordering
        try:
            self.close()
        except Exception:
            pass
