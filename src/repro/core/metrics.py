"""Incremental metrics engine for the RL hot loop.

Every :meth:`PhaseOrderingEnv.step` needs three module-level quantities:
object-file size, the MCA throughput proxy, and the IR2Vec state embedding.
All three decompose into per-function parts that only change when the
function's body changes, so the engine memoizes them on structural
fingerprints (:mod:`repro.ir.fingerprint`):

* per-function codegen size / MCA report / embedding — shared LRU caches
  threaded into :func:`~repro.codegen.objfile.object_size`,
  :func:`~repro.mca.sched.estimate_throughput` and
  :class:`~repro.embeddings.ir2vec.IR2VecEncoder`;
* whole transitions — ``(module_fingerprint, action) →`` result metrics
  plus a snapshot of the resulting module, so an ε-greedy agent revisiting
  a known prefix skips the pass pipeline entirely.

Results are combined in the same order as the uncached code paths, so a
cached measurement is bit-identical to an uncached one.

One engine is intended to be shared across environments and episodes
(:class:`~repro.core.agent_api.PosetRL` owns one); fingerprint keys make
that safe across different modules.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Mapping, Optional, Tuple

import numpy as np

from ..caching import LRUCache
from ..codegen.objfile import SizeReport, object_size
from ..embeddings.ir2vec import IR2VecEncoder
from ..ir.fingerprint import function_fingerprint, module_fingerprint
from ..ir.flat import FlatCore
from ..ir.module import Module
from ..mca.sched import McaSummary, estimate_throughput

#: Default per-function cache capacity (entries are small reports/vectors).
DEFAULT_FUNCTION_CACHE_SIZE = 16384
#: Default transition cache capacity (entries hold a module snapshot).
DEFAULT_TRANSITION_CACHE_SIZE = 2048


@dataclass
class ModuleMetrics:
    """The three measurements one environment step consumes."""

    size: int
    throughput: float
    cycles: float
    embedding: np.ndarray
    size_report: SizeReport
    mca: McaSummary


@dataclass
class Transition:
    """Cached outcome of applying one action to one module state."""

    result_fingerprint: str
    changed: bool
    size: int
    throughput: float
    cycles: float
    embedding: np.ndarray
    #: Snapshot of the module after the action; ``None`` when the action
    #: was a structural no-op (the caller's module is already the result).
    module: Optional[Module]


class TransitionCache:
    """LRU map ``(module_fingerprint, action) → Transition``."""

    def __init__(
        self,
        capacity: int = DEFAULT_TRANSITION_CACHE_SIZE,
        name: Optional[str] = "transitions",
        lock=None,
    ):
        self._cache = LRUCache(capacity, name=name, lock=lock)

    def get(
        self, fingerprint: str, action: Hashable
    ) -> Optional[Transition]:
        return self._cache.get((fingerprint, action))

    def put(
        self, fingerprint: str, action: Hashable, transition: Transition
    ) -> None:
        self._cache.put((fingerprint, action), transition)

    def clear(self) -> None:
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def stats(self):
        return self._cache.stats


class MetricsEngine:
    """Fingerprint-keyed memoization for size / throughput / embedding.

    ``enabled=False`` degrades to the plain uncached code paths (the
    baseline the equivalence tests and microbenchmarks compare against).
    """

    def __init__(
        self,
        target: str = "x86-64",
        encoder: Optional[IR2VecEncoder] = None,
        enabled: bool = True,
        function_cache_size: int = DEFAULT_FUNCTION_CACHE_SIZE,
        transition_cache_size: int = DEFAULT_TRANSITION_CACHE_SIZE,
        threadsafe: bool = False,
        flat: bool = True,
    ):
        self.target = target
        self.enabled = enabled
        self.function_cache_size = function_cache_size
        self.transition_cache_size = transition_cache_size
        #: ``threadsafe=True`` guards every cache with one shared lock —
        #: required when the engine is reachable from more than one thread
        #: (the serving scheduler's engines are also read by client-thread
        #: ``stats()`` calls). Training keeps the lock-free default.
        self.threadsafe = threadsafe
        #: ``flat=True`` keeps a :class:`~repro.ir.flat.FlatCore` alive
        #: across steps: cache misses measure through the struct-of-arrays
        #: kernels (bit-identical results), rebuilding only functions whose
        #: fingerprint changed.
        self.flat = flat
        self._init_caches()
        self.encoder = encoder or IR2VecEncoder()
        if enabled and self.encoder.function_cache is None:
            self.encoder.function_cache = self._embedding_cache

    def _init_caches(self) -> None:
        if self.enabled:
            lock = threading.Lock() if self.threadsafe else None
            self.size_cache: Optional[LRUCache] = LRUCache(
                self.function_cache_size, name="size", lock=lock
            )
            self.mca_cache: Optional[LRUCache] = LRUCache(
                self.function_cache_size, name="mca", lock=lock
            )
            self._embedding_cache: Optional[LRUCache] = LRUCache(
                self.function_cache_size, name="embedding", lock=lock
            )
            self.transitions: Optional[TransitionCache] = TransitionCache(
                self.transition_cache_size, lock=lock
            )
            self._flat_core: Optional[FlatCore] = (
                FlatCore(self.target, self.function_cache_size, lock=lock)
                if self.flat
                else None
            )
        else:
            self.size_cache = None
            self.mca_cache = None
            self._embedding_cache = None
            self.transitions = None
            self._flat_core = None

    # -- measurements ------------------------------------------------------
    def function_fingerprints(self, module: Module) -> Dict[str, str]:
        """Per-function digests, computed once and threaded through every
        consumer so a step hashes each function at most once."""
        return {
            fn.name: function_fingerprint(fn) for fn in module.functions
        }

    def fingerprint(
        self,
        module: Module,
        fingerprints: Optional[Mapping[str, str]] = None,
    ) -> str:
        return module_fingerprint(module, fingerprints)

    def size(
        self,
        module: Module,
        fingerprints: Optional[Mapping[str, str]] = None,
    ) -> SizeReport:
        return object_size(
            module,
            self.target,
            cache=self.size_cache,
            fingerprints=fingerprints,
            flat=self._flat_core,
        )

    def throughput(
        self,
        module: Module,
        fingerprints: Optional[Mapping[str, str]] = None,
    ) -> McaSummary:
        return estimate_throughput(
            module,
            self.target,
            cache=self.mca_cache,
            fingerprints=fingerprints,
            flat=self._flat_core,
        )

    def embedding(
        self,
        module: Module,
        fingerprints: Optional[Mapping[str, str]] = None,
    ) -> np.ndarray:
        return self.encoder.program_embedding(
            module, fingerprints=fingerprints, flat=self._flat_core
        )

    def measure(
        self,
        module: Module,
        fingerprints: Optional[Mapping[str, str]] = None,
    ) -> ModuleMetrics:
        """Size, throughput and state embedding in one shot."""
        if fingerprints is None and (
            self.enabled or self._flat_core is not None
        ):
            fingerprints = self.function_fingerprints(module)
        size_report = self.size(module, fingerprints)
        mca = self.throughput(module, fingerprints)
        return ModuleMetrics(
            size=size_report.total_bytes,
            throughput=mca.throughput,
            cycles=mca.total_cycles,
            embedding=self.embedding(module, fingerprints),
            size_report=size_report,
            mca=mca,
        )

    # -- observability -----------------------------------------------------
    def stats(self) -> Dict[str, Dict[str, float]]:
        """Hit/miss/eviction counters for every cache, JSON-friendly."""
        if not self.enabled:
            return {"enabled": {"enabled": 0.0}}
        assert (
            self.size_cache is not None
            and self.mca_cache is not None
            and self._embedding_cache is not None
            and self.transitions is not None
        )
        out = {
            "size": self.size_cache.stats.as_dict(),
            "mca": self.mca_cache.stats.as_dict(),
            "embedding": self._embedding_cache.stats.as_dict(),
            "transitions": self.transitions.stats.as_dict(),
        }
        if self._flat_core is not None:
            out["flat"] = self._flat_core.stats_dict()
        return out

    def clear(self) -> None:
        if self.enabled:
            self._init_caches()
            self.encoder.function_cache = self._embedding_cache

    # -- pickling ----------------------------------------------------------
    # Engines ride along when a PosetRL facade is shipped to evaluation
    # worker processes; cache contents (which include module snapshots that
    # do not pickle) are dropped and rebuilt empty on the other side.
    def __getstate__(self) -> Dict[str, Any]:
        return {
            "target": self.target,
            "enabled": self.enabled,
            "function_cache_size": self.function_cache_size,
            "transition_cache_size": self.transition_cache_size,
            "threadsafe": self.threadsafe,
            "flat": self.flat,
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.target = state["target"]
        self.enabled = state["enabled"]
        self.function_cache_size = state["function_cache_size"]
        self.transition_cache_size = state["transition_cache_size"]
        self.threadsafe = state.get("threadsafe", False)
        self.flat = state.get("flat", True)
        self._init_caches()
        self.encoder = IR2VecEncoder(function_cache=self._embedding_cache)
