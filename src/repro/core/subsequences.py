"""The paper's action-space tables.

* :data:`MANUAL_SUBSEQUENCES` — Table II: 15 hand-grouped sub-sequences of
  the ``-Oz`` pipeline.
* :data:`PAPER_ODG_SUBSEQUENCES` — Table III: the 34 sub-sequences the
  authors derive by walking the Oz Dependence Graph with critical-node
  threshold k ≥ 8. (Obvious OCR slips in the published tables —
  ``loop-inster``, ``lessa``, ``adee``, ``simplifyefg``,
  ``instromibne`` — are corrected to the pass names they clearly denote.)

Every sub-sequence is a list of pass names executable directly by
:func:`repro.passes.run_passes`.
"""

from __future__ import annotations

from typing import List, Sequence

from ..passes.base import parse_pass_list
from ..passes.pipelines import OZ_PASS_SEQUENCE

__all__ = [
    "MANUAL_SUBSEQUENCES",
    "PAPER_ODG_SUBSEQUENCES",
    "OZ_PASS_SEQUENCE",
    "flags_to_passes",
]


def flags_to_passes(flags: str) -> List[str]:
    """``"-simplifycfg -sroa"`` → ``["simplifycfg", "sroa"]``."""
    return parse_pass_list(flags)


#: Table II: manual sub-sequences of -Oz.
MANUAL_SUBSEQUENCES: List[List[str]] = [
    flags_to_passes(s)
    for s in [
        "-ee-instrument -simplifycfg -sroa -early-cse -lower-expect "
        "-forceattrs -inferattrs -mem2reg",
        "-ipsccp -called-value-propagation -attributor -globalopt",
        "-deadargelim -instcombine -simplifycfg",
        "-prune-eh -inline -functionattrs -barrier",
        "-sroa -early-cse-memssa -speculative-execution -jump-threading "
        "-correlated-propagation",
        "-simplifycfg -instcombine -tailcallelim -simplifycfg -reassociate",
        "-loop-simplify -lcssa -loop-rotate -licm -loop-unswitch "
        "-simplifycfg -instcombine",
        "-loop-simplify -lcssa -indvars -loop-idiom -loop-deletion -loop-unroll",
        "-mldst-motion -gvn -memcpyopt -sccp -bdce -instcombine "
        "-jump-threading -correlated-propagation -dse",
        "-loop-simplify -lcssa -licm -adce -simplifycfg -instcombine",
        "-barrier -elim-avail-extern -rpo-functionattrs -globalopt "
        "-globaldce -float2int -lower-constant-intrinsics",
        "-loop-simplify -lcssa -loop-rotate -loop-distribute -loop-vectorize",
        "-loop-simplify -loop-load-elim -instcombine -simplifycfg -instcombine",
        "-loop-simplify -lcssa -loop-unroll -instcombine -loop-simplify "
        "-lcssa -licm -alignment-from-assumptions",
        "-strip-dead-prototypes -globaldce -constmerge -loop-simplify "
        "-lcssa -loop-sink -instsimplify -div-rem-pairs -simplifycfg",
    ]
]

#: Table III: the authors' 34 ODG sub-sequences (k >= 8 critical nodes:
#: simplifycfg, instcombine, loop-simplify).
PAPER_ODG_SUBSEQUENCES: List[List[str]] = [
    flags_to_passes(s)
    for s in [
        # 1-7: walks starting at instcombine
        "-instcombine -barrier -elim-avail-extern -rpo-functionattrs "
        "-globalopt -globaldce -constmerge",
        "-instcombine -barrier -elim-avail-extern -rpo-functionattrs "
        "-globalopt -globaldce -float2int -lower-constant-intrinsics",
        "-instcombine -barrier -elim-avail-extern -rpo-functionattrs "
        "-globalopt -mem2reg -deadargelim",
        "-instcombine -jump-threading -correlated-propagation -dse",
        "-instcombine -jump-threading -correlated-propagation",
        "-instcombine",
        "-instcombine -tailcallelim",
        # 8-22: walks starting at loop-simplify
        "-loop-simplify -lcssa -indvars -loop-idiom -loop-deletion -loop-unroll",
        "-loop-simplify -lcssa -indvars -loop-idiom -loop-deletion "
        "-loop-unroll -mldst-motion -gvn -memcpyopt -sccp -bdce",
        "-loop-simplify -lcssa -licm -adce",
        "-loop-simplify -lcssa -licm -alignment-from-assumptions "
        "-strip-dead-prototypes -globaldce -constmerge",
        "-loop-simplify -lcssa -licm -alignment-from-assumptions "
        "-strip-dead-prototypes -globaldce -float2int "
        "-lower-constant-intrinsics",
        "-loop-simplify -lcssa -licm -loop-unswitch",
        "-loop-simplify -lcssa -loop-rotate -licm -adce",
        "-loop-simplify -lcssa -loop-rotate -licm "
        "-alignment-from-assumptions -strip-dead-prototypes -globaldce "
        "-constmerge",
        "-loop-simplify -lcssa -loop-rotate -licm "
        "-alignment-from-assumptions -strip-dead-prototypes -globaldce "
        "-float2int -lower-constant-intrinsics",
        "-loop-simplify -lcssa -loop-rotate -licm -loop-unswitch",
        "-loop-simplify -lcssa -loop-rotate -loop-distribute -loop-vectorize",
        "-loop-simplify -lcssa -loop-sink -instsimplify -div-rem-pairs "
        "-simplifycfg",
        "-loop-simplify -lcssa -loop-unroll",
        "-loop-simplify -lcssa -loop-unroll -mldst-motion -gvn -memcpyopt "
        "-sccp -bdce",
        "-loop-simplify -loop-load-elim",
        # 23-34: walks starting at simplifycfg
        "-simplifycfg",
        "-simplifycfg -prune-eh -inline -functionattrs -sroa -early-cse "
        "-lower-expect -forceattrs -inferattrs -ipsccp "
        "-called-value-propagation -attributor -globalopt -globaldce "
        "-constmerge -barrier",
        "-simplifycfg -prune-eh -inline -functionattrs -sroa -early-cse "
        "-lower-expect -forceattrs -inferattrs -ipsccp "
        "-called-value-propagation -attributor -globalopt -globaldce "
        "-float2int -lower-constant-intrinsics -barrier",
        "-simplifycfg -prune-eh -inline -functionattrs -sroa -early-cse "
        "-lower-expect -forceattrs -inferattrs -ipsccp "
        "-called-value-propagation -attributor -globalopt -mem2reg "
        "-deadargelim -barrier",
        "-simplifycfg -prune-eh -inline -functionattrs -sroa "
        "-early-cse-memssa -speculative-execution -jump-threading "
        "-correlated-propagation -dse -barrier",
        "-simplifycfg -prune-eh -inline -functionattrs -sroa "
        "-early-cse-memssa -speculative-execution -jump-threading "
        "-correlated-propagation -barrier",
        "-simplifycfg -reassociate",
        "-simplifycfg -sroa -early-cse -lower-expect -forceattrs "
        "-inferattrs -ipsccp -called-value-propagation -attributor "
        "-globalopt -globaldce -constmerge",
        "-simplifycfg -sroa -early-cse -lower-expect -forceattrs "
        "-inferattrs -ipsccp -called-value-propagation -attributor "
        "-globalopt -globaldce -float2int -lower-constant-intrinsics",
        "-simplifycfg -sroa -early-cse -lower-expect -forceattrs "
        "-inferattrs -ipsccp -called-value-propagation -attributor "
        "-globalopt -mem2reg -deadargelim",
        "-simplifycfg -sroa -early-cse-memssa -speculative-execution "
        "-jump-threading -correlated-propagation -dse",
        "-simplifycfg -sroa -early-cse-memssa -speculative-execution "
        "-jump-threading -correlated-propagation",
    ]
]

assert len(MANUAL_SUBSEQUENCES) == 15, "Table II has 15 sub-sequences"
assert len(PAPER_ODG_SUBSEQUENCES) == 34, "Table III has 34 sub-sequences"
