"""Calibrated training presets.

The paper trains its DDQN for ~16 hours on a Xeon; this reproduction runs
on a laptop-scale budget, so the presets below compress that schedule: the
same algorithm (Double DQN, ε-greedy with annealing, replay), with
stability-oriented settings found by calibration — short replay (keeps the
data near-on-policy), frequent target syncs, a large batch, and a moderate
discount (the phase-ordering return is dominated by near-term rewards).
"""

from __future__ import annotations

from dataclasses import replace

from ..rl.dqn import AgentConfig

__all__ = ["paper_config", "scaled_config", "quick_config"]


def paper_config() -> AgentConfig:
    """The paper's stated hyper-parameters (lr 1e-4, ε 1.0→0.01 over
    20 000 steps) with standard defaults elsewhere. Needs paper-scale
    training time (tens of thousands of episodes) to converge."""
    return AgentConfig(
        learning_rate=1e-4,
        epsilon_steps=20_000,
        epsilon_end=0.01,
    )


def scaled_config() -> AgentConfig:
    """The calibrated laptop-scale schedule used by the benchmark harness
    (~900 training episodes ≈ 3 minutes)."""
    return AgentConfig(
        hidden=(256, 128),
        learning_rate=1e-3,
        gamma=0.5,
        batch_size=128,
        replay_capacity=2_000,
        min_replay=512,
        train_every=1,
        target_sync_every=50,
        epsilon_steps=8_000,
        epsilon_end=0.01,
        reward_scale=0.25,
    )


def quick_config() -> AgentConfig:
    """A fast-smoke schedule for tests and the quickstart example."""
    return replace(
        scaled_config(),
        min_replay=128,
        epsilon_steps=1_500,
    )
