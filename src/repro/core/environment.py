"""The phase-ordering RL environment (Section III-A).

Gym-style interface over one program: the state is the IR2Vec-style
300-d embedding of the current module, an action applies one optimization
sub-sequence through the pass manager, and the reward combines the object
file's size delta with the MCA throughput delta (both normalized against
the unoptimized module, Eqns 1-3).

Metrics are produced through a :class:`~repro.core.metrics.MetricsEngine`:
per-function size/MCA/embedding results are memoized on structural
fingerprints, and whole ``(state, action)`` transitions are cached so that
revisited prefixes (ubiquitous under ε-greedy training) skip the pass
pipeline entirely. ``cache=False`` restores the plain uncached paths.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..embeddings.ir2vec import IR2VecEncoder
from ..ir.module import Module
from ..passes.base import PassManager
from .metrics import MetricsEngine, Transition
from .rewards import RewardWeights, combined_reward
from .subsequences import PAPER_ODG_SUBSEQUENCES

#: Episode length: the paper's predicted sequences (Table VI) are 15
#: actions long.
DEFAULT_EPISODE_LENGTH = 15


@dataclass
class StepInfo:
    """Extra diagnostics returned from :meth:`PhaseOrderingEnv.step`."""

    action: int
    passes: List[str]
    bin_size: int
    throughput: float
    size_reward: float
    throughput_reward: float
    #: Whether the action modified the module (the ``ActionSpace.apply``
    #: changed-flag; no-op actions leave every metric untouched).
    changed: bool = True
    #: Whether this step was served from the transition cache.
    cache_hit: bool = False
    #: Wall seconds spent in the pass pipeline for this step (0.0 on
    #: transition-cache hits: no pass ran).
    passes_seconds: float = 0.0
    #: Wall seconds spent measuring (codegen size + MCA + embedding;
    #: 0.0 on transition-cache hits and structural no-ops).
    measure_seconds: float = 0.0


class ActionSpace:
    """A list of pass sub-sequences, pre-instantiated as PassManagers."""

    def __init__(self, subsequences: Sequence[Sequence[str]]):
        self.subsequences: List[List[str]] = [list(s) for s in subsequences]
        self._managers = [
            PassManager(list(s)) for s in self.subsequences
        ]

    def __len__(self) -> int:
        return len(self.subsequences)

    def passes_for(self, action: int) -> List[str]:
        return list(self.subsequences[action])

    def apply(self, action: int, module: Module) -> bool:
        return self._managers[action].run(module)


class PhaseOrderingEnv:
    """RL environment optimizing one module for size and throughput."""

    def __init__(
        self,
        module: Module,
        action_space: Optional[ActionSpace] = None,
        target: str = "x86-64",
        weights: Optional[RewardWeights] = None,
        episode_length: int = DEFAULT_EPISODE_LENGTH,
        encoder: Optional[IR2VecEncoder] = None,
        metrics: Optional[MetricsEngine] = None,
        cache: bool = True,
    ):
        self.original = module
        self.action_space = action_space or ActionSpace(PAPER_ODG_SUBSEQUENCES)
        self.target = target
        self.weights = weights if weights is not None else RewardWeights()
        self.episode_length = episode_length
        if metrics is not None:
            self.metrics = metrics
        else:
            self.metrics = MetricsEngine(
                target=target, encoder=encoder, enabled=cache
            )
        self.encoder = self.metrics.encoder

        # Baseline ("without any optimization") metrics — Eqns 2-3
        # denominators — computed once. Per-function fingerprints are
        # computed once here and threaded through every consumer.
        base_fps = (
            self.metrics.function_fingerprints(module)
            if self.metrics.enabled
            else None
        )
        self.base_size = self.metrics.size(module, base_fps).total_bytes
        self.base_throughput = self.metrics.throughput(
            module, base_fps
        ).throughput
        self._base_fingerprint: Optional[str] = (
            self.metrics.fingerprint(module, base_fps)
            if self.metrics.enabled
            else None
        )

        # ``current`` is materialized lazily: ``_pending`` references a
        # read-only snapshot (the original, or a transition-cache entry)
        # that is cloned only when something actually needs a mutable
        # module. A chain of transition-cache hits therefore never clones.
        self._current: Optional[Module] = None
        self._pending: Optional[Module] = module
        self.steps = 0
        self.last_size = self.base_size
        self.last_throughput = self.base_throughput
        self.history: List[StepInfo] = []
        self._state: Optional[np.ndarray] = None
        self._base_state: Optional[np.ndarray] = None
        # Fingerprint of ``current``, maintained incrementally so a chain
        # of transition-cache hits never re-walks the module.
        self._fingerprint = self._base_fingerprint

    @property
    def current(self) -> Module:
        """The module in its current (post-actions) state.

        Materializes a private mutable copy on first access after a reset
        or a transition-cache hit.
        """
        if self._pending is not None:
            self._current = self._pending.clone()
            self._pending = None
        assert self._current is not None
        return self._current

    @current.setter
    def current(self, module: Module) -> None:
        self._current = module
        self._pending = None

    @property
    def fingerprint(self) -> Optional[str]:
        """Structural fingerprint of the current module.

        Maintained incrementally along the transition-cache chain; ``None``
        when the metrics engine is disabled (callers fall back to
        fingerprinting the materialized module themselves).
        """
        return self._fingerprint

    # -- gym-style API ---------------------------------------------------------
    @property
    def num_actions(self) -> int:
        return len(self.action_space)

    @property
    def state_dim(self) -> int:
        return self.encoder.dimension

    def observe(self) -> np.ndarray:
        if self.metrics.enabled and self._state is not None:
            return self._state
        # Embedding is a pure read: no need to materialize a mutable copy.
        module = self._pending if self._pending is not None else self.current
        return self.metrics.embedding(module)

    def reset(self) -> np.ndarray:
        self._pending = self.original
        self._current = None
        self.steps = 0
        self.last_size = self.base_size
        self.last_throughput = self.base_throughput
        self.history = []
        self._fingerprint = self._base_fingerprint
        self._state = None
        if self.metrics.enabled:
            if self._base_state is None:
                self._base_state = self.metrics.embedding(self.original)
                self._base_state.setflags(write=False)
            self._state = self._base_state
            return self._state
        self._state = self.observe()
        return self._state

    def step(self, action: int) -> Tuple[np.ndarray, float, bool, StepInfo]:
        if not (0 <= action < self.num_actions):
            raise IndexError(f"action {action} out of range")
        passes = self.action_space.passes_for(action)

        if self.metrics.enabled:
            (size, throughput, changed, cache_hit,
             passes_s, measure_s) = self._cached_apply(action)
        else:
            start = time.perf_counter()
            changed = self.action_space.apply(action, self.current)
            passes_s = time.perf_counter() - start
            cache_hit = False
            size = self.metrics.size(self.current).total_bytes
            throughput = self.metrics.throughput(self.current).throughput
            self._state = self.observe()
            measure_s = time.perf_counter() - start - passes_s

        reward = combined_reward(
            self.last_size,
            size,
            self.base_size,
            self.last_throughput,
            throughput,
            self.base_throughput,
            self.weights,
        )
        info = StepInfo(
            action=action,
            passes=passes,
            bin_size=size,
            throughput=throughput,
            size_reward=(self.last_size - size) / self.base_size,
            throughput_reward=(throughput - self.last_throughput)
            / self.base_throughput,
            changed=changed,
            cache_hit=cache_hit,
            passes_seconds=passes_s,
            measure_seconds=measure_s,
        )
        self.history.append(info)
        self.last_size = size
        self.last_throughput = throughput
        self.steps += 1
        done = self.steps >= self.episode_length
        state = self._state if self._state is not None else self.observe()
        return state, reward, done, info

    def _cached_apply(
        self, action: int
    ) -> Tuple[int, float, bool, bool, float, float]:
        """Apply ``action`` through the transition cache.

        Returns ``(size, throughput, changed, cache_hit, passes_seconds,
        measure_seconds)`` and leaves ``self.current`` / ``self._state``
        / ``self._fingerprint`` describing the post-action module.
        """
        engine = self.metrics
        assert engine.transitions is not None
        fingerprint = self._fingerprint
        if fingerprint is None:
            fingerprint = engine.fingerprint(self.current)

        hit = engine.transitions.get(fingerprint, action)
        if hit is not None:
            if hit.module is not None:
                # Lazy: keep a reference to the cache-owned snapshot; it
                # is cloned only if something needs a mutable module.
                self._current = None
                self._pending = hit.module
            self._fingerprint = hit.result_fingerprint
            self._state = hit.embedding
            return hit.size, hit.throughput, hit.changed, True, 0.0, 0.0

        module = self.current  # materializes a mutable copy if needed
        start = time.perf_counter()
        applied = self.action_space.apply(action, module)
        passes_s = time.perf_counter() - start
        # The changed-flag is advisory; fingerprint equality is the
        # authoritative no-op check (sound in both directions). Function
        # digests are computed once and reused by every measurement below.
        function_fps = engine.function_fingerprints(module) if applied else None
        result_fp = (
            engine.fingerprint(module, function_fps)
            if applied
            else fingerprint
        )
        changed = result_fp != fingerprint
        measure_s = 0.0
        if changed:
            start = time.perf_counter()
            measured = engine.measure(module, function_fps)
            measure_s = time.perf_counter() - start
            size, throughput = measured.size, measured.throughput
            cycles, embedding = measured.cycles, measured.embedding
            # Hand the mutated module itself to the cache and keep only a
            # lazy reference to it — nothing mutates it from here without
            # going through the materializing ``current`` property.
            snapshot: Optional[Module] = module
            self._current = None
            self._pending = module
        else:
            size, throughput = self.last_size, self.last_throughput
            cycles = 0.0
            embedding = self._state if self._state is not None else self.observe()
            snapshot = None
        # The state array is shared between the cache, the env and the
        # agent: freeze it so an accidental in-place edit cannot corrupt
        # future hits.
        embedding.setflags(write=False)
        engine.transitions.put(
            fingerprint,
            action,
            Transition(
                result_fingerprint=result_fp,
                changed=changed,
                size=size,
                throughput=throughput,
                cycles=cycles,
                embedding=embedding,
                module=snapshot,
            ),
        )
        self._fingerprint = result_fp
        self._state = embedding
        return size, throughput, changed, False, passes_s, measure_s

    # -- observability ---------------------------------------------------------
    def cache_stats(self) -> Dict[str, Dict[str, float]]:
        """Hit/miss/eviction counters of the underlying metrics engine."""
        return self.metrics.stats()

    # -- convenience -----------------------------------------------------------
    def rollout(self, actions: Sequence[int]) -> List[StepInfo]:
        """Reset and apply a fixed action sequence; returns step infos."""
        self.reset()
        infos = []
        for action in actions:
            _, _, done, info = self.step(action)
            infos.append(info)
            if done:
                break
        return infos


def make_action_space(kind: str = "odg") -> ActionSpace:
    """``"odg"`` (Table III, 34 actions) or ``"manual"`` (Table II, 15)."""
    from .subsequences import MANUAL_SUBSEQUENCES

    if kind == "odg":
        return ActionSpace(PAPER_ODG_SUBSEQUENCES)
    if kind == "manual":
        return ActionSpace(MANUAL_SUBSEQUENCES)
    raise ValueError(f"unknown action space {kind!r} (use 'odg' or 'manual')")
