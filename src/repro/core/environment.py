"""The phase-ordering RL environment (Section III-A).

Gym-style interface over one program: the state is the IR2Vec-style
300-d embedding of the current module, an action applies one optimization
sub-sequence through the pass manager, and the reward combines the object
file's size delta with the MCA throughput delta (both normalized against
the unoptimized module, Eqns 1-3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..codegen.objfile import object_size
from ..embeddings.ir2vec import IR2VecEncoder
from ..ir.module import Module
from ..mca.sched import estimate_throughput
from ..passes.base import PassManager, create_pass
from .rewards import RewardWeights, combined_reward
from .subsequences import PAPER_ODG_SUBSEQUENCES

#: Episode length: the paper's predicted sequences (Table VI) are 15
#: actions long.
DEFAULT_EPISODE_LENGTH = 15


@dataclass
class StepInfo:
    """Extra diagnostics returned from :meth:`PhaseOrderingEnv.step`."""

    action: int
    passes: List[str]
    bin_size: int
    throughput: float
    size_reward: float
    throughput_reward: float


class ActionSpace:
    """A list of pass sub-sequences, pre-instantiated as PassManagers."""

    def __init__(self, subsequences: Sequence[Sequence[str]]):
        self.subsequences: List[List[str]] = [list(s) for s in subsequences]
        self._managers = [
            PassManager(list(s)) for s in self.subsequences
        ]

    def __len__(self) -> int:
        return len(self.subsequences)

    def passes_for(self, action: int) -> List[str]:
        return list(self.subsequences[action])

    def apply(self, action: int, module: Module) -> bool:
        return self._managers[action].run(module)


class PhaseOrderingEnv:
    """RL environment optimizing one module for size and throughput."""

    def __init__(
        self,
        module: Module,
        action_space: Optional[ActionSpace] = None,
        target: str = "x86-64",
        weights: RewardWeights = RewardWeights(),
        episode_length: int = DEFAULT_EPISODE_LENGTH,
        encoder: Optional[IR2VecEncoder] = None,
    ):
        self.original = module
        self.action_space = action_space or ActionSpace(PAPER_ODG_SUBSEQUENCES)
        self.target = target
        self.weights = weights
        self.episode_length = episode_length
        self.encoder = encoder or IR2VecEncoder()

        # Baseline ("without any optimization") metrics — Eqns 2-3
        # denominators — computed once.
        self.base_size = object_size(module, target).total_bytes
        self.base_throughput = estimate_throughput(module, target).throughput

        self.current: Module = module.clone()
        self.steps = 0
        self.last_size = self.base_size
        self.last_throughput = self.base_throughput
        self.history: List[StepInfo] = []

    # -- gym-style API ---------------------------------------------------------
    @property
    def num_actions(self) -> int:
        return len(self.action_space)

    @property
    def state_dim(self) -> int:
        return self.encoder.dimension

    def observe(self) -> np.ndarray:
        return self.encoder.program_embedding(self.current)

    def reset(self) -> np.ndarray:
        self.current = self.original.clone()
        self.steps = 0
        self.last_size = self.base_size
        self.last_throughput = self.base_throughput
        self.history = []
        return self.observe()

    def step(self, action: int) -> Tuple[np.ndarray, float, bool, StepInfo]:
        if not (0 <= action < self.num_actions):
            raise IndexError(f"action {action} out of range")
        passes = self.action_space.passes_for(action)
        self.action_space.apply(action, self.current)

        size = object_size(self.current, self.target).total_bytes
        throughput = estimate_throughput(self.current, self.target).throughput

        reward = combined_reward(
            self.last_size,
            size,
            self.base_size,
            self.last_throughput,
            throughput,
            self.base_throughput,
            self.weights,
        )
        info = StepInfo(
            action=action,
            passes=passes,
            bin_size=size,
            throughput=throughput,
            size_reward=(self.last_size - size) / self.base_size,
            throughput_reward=(throughput - self.last_throughput)
            / self.base_throughput,
        )
        self.history.append(info)
        self.last_size = size
        self.last_throughput = throughput
        self.steps += 1
        done = self.steps >= self.episode_length
        return self.observe(), reward, done, info

    # -- convenience -----------------------------------------------------------
    def rollout(self, actions: Sequence[int]) -> List[StepInfo]:
        """Reset and apply a fixed action sequence; returns step infos."""
        self.reset()
        infos = []
        for action in actions:
            _, _, done, info = self.step(action)
            infos.append(info)
            if done:
                break
        return infos


def make_action_space(kind: str = "odg") -> ActionSpace:
    """``"odg"`` (Table III, 34 actions) or ``"manual"`` (Table II, 15)."""
    from .subsequences import MANUAL_SUBSEQUENCES

    if kind == "odg":
        return ActionSpace(PAPER_ODG_SUBSEQUENCES)
    if kind == "manual":
        return ActionSpace(MANUAL_SUBSEQUENCES)
    raise ValueError(f"unknown action space {kind!r} (use 'odg' or 'manual')")
