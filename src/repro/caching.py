"""Bounded LRU caches with hit/miss/eviction accounting.

The incremental metrics engine (``repro.core.metrics``) keys expensive
per-function computations — codegen size, MCA scheduling, IR2Vec
embeddings — and whole environment transitions on structural fingerprints
(``repro.ir.fingerprint``). All of those caches are instances of
:class:`LRUCache`, so hit rates and memory bounds are uniform and
observable everywhere.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional


@dataclass
class CacheStats:
    """Counter snapshot for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": round(self.hit_rate, 4),
        }


_MISSING = object()


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    ``get`` counts a hit or a miss and refreshes recency; ``put`` inserts
    and evicts the stalest entry once ``capacity`` is exceeded.
    """

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._data.clear()

    def reset_counters(self) -> None:
        self.hits = self.misses = self.evictions = 0

    @property
    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            size=len(self._data),
            capacity=self.capacity,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        s = self.stats
        return (
            f"<LRUCache {s.size}/{s.capacity} hits={s.hits} "
            f"misses={s.misses} evictions={s.evictions}>"
        )
