"""Bounded LRU caches with hit/miss/eviction accounting.

The incremental metrics engine (``repro.core.metrics``) keys expensive
per-function computations — codegen size, MCA scheduling, IR2Vec
embeddings — and whole environment transitions on structural fingerprints
(``repro.ir.fingerprint``). All of those caches are instances of
:class:`LRUCache`, so hit rates and memory bounds are uniform and
observable everywhere.

Two optional integrations, both free when unused:

* ``name=`` mirrors the counters into the process-wide metric registry
  (:mod:`repro.observability`) as ``repro_cache_*_total{cache=name}`` —
  bound at construction time, and only if observability is enabled then,
  so the disabled path never even checks. The mirror is *lazy*: the hot
  path only bumps plain ints, and a registry collect hook folds the
  totals into the counters when a snapshot/scrape actually reads them,
  so an enabled cache costs the same per operation as a disabled one.
* ``lock=`` serializes ``get``/``put``/``clear`` under a caller-supplied
  :class:`threading.Lock`. ``OrderedDict.move_to_end`` plus the counter
  increments are *not* safe under concurrent mutation; pass a lock when
  a cache is shared across threads (the serving engines do), or keep the
  default single-thread ownership.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Optional


@dataclass
class CacheStats:
    """Counter snapshot for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": round(self.hit_rate, 4),
        }


_MISSING = object()


class _CacheMetrics:
    """Registry mirror for one named cache (hits/misses/evictions).

    Synced lazily from the cache's plain int counters by a registry
    collect hook; ``_seen`` tracks what has already been folded in so
    the registry counters stay monotonic even across
    :meth:`LRUCache.reset_counters`.
    """

    __slots__ = ("hits", "misses", "evictions", "_seen", "_sync_lock")

    def __init__(self, registry, name: str):
        labels = {"cache": name}
        self.hits = registry.counter(
            "repro_cache_hits_total", "LRU cache hits", labels=labels
        )
        self.misses = registry.counter(
            "repro_cache_misses_total", "LRU cache misses", labels=labels
        )
        self.evictions = registry.counter(
            "repro_cache_evictions_total", "LRU cache evictions",
            labels=labels,
        )
        self._seen = [0, 0, 0]
        self._sync_lock = threading.Lock()

    def sync(self, cache: "LRUCache") -> None:
        with self._sync_lock:
            for i, (counter, value) in enumerate((
                (self.hits, cache.hits),
                (self.misses, cache.misses),
                (self.evictions, cache.evictions),
            )):
                delta = value - self._seen[i]
                if delta < 0:  # the cache's counters were reset
                    delta = value
                if delta:
                    counter.inc(delta)
                self._seen[i] = value


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    ``get`` counts a hit or a miss and refreshes recency; ``put`` inserts
    and evicts the stalest entry once ``capacity`` is exceeded.
    """

    def __init__(
        self,
        capacity: int = 4096,
        name: Optional[str] = None,
        lock: Optional[threading.Lock] = None,
        on_evict: Optional[Callable[[Hashable, Any], None]] = None,
    ):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = lock
        # Called as ``on_evict(key, value)`` for capacity evictions only
        # (not for ``clear``), while the cache's own lock (if any) is
        # held — the callback must not call back into this cache.
        self._on_evict = on_evict
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._metrics: Optional[_CacheMetrics] = None
        if name is not None:
            from .observability import get_registry

            registry = get_registry()
            if registry.enabled:
                metrics = _CacheMetrics(registry, name)
                self._metrics = metrics
                ref = weakref.ref(self)

                def _sync_hook(ref=ref, metrics=metrics):
                    cache = ref()
                    if cache is not None:
                        metrics.sync(cache)

                registry.register_collect_hook(_sync_hook)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        if self._lock is not None:
            with self._lock:
                return self._get(key, default)
        return self._get(key, default)

    def _get(self, key: Hashable, default: Any) -> Any:
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if self._lock is not None:
            with self._lock:
                self._put(key, value)
        else:
            self._put(key, value)

    def _put(self, key: Hashable, value: Any) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.capacity:
            evicted_key, evicted_value = self._data.popitem(last=False)
            self.evictions += 1
            if self._on_evict is not None:
                self._on_evict(evicted_key, evicted_value)

    def clear(self) -> None:
        if self._lock is not None:
            with self._lock:
                self._data.clear()
        else:
            self._data.clear()

    def reset_counters(self) -> None:
        self.hits = self.misses = self.evictions = 0

    @property
    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            size=len(self._data),
            capacity=self.capacity,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        s = self.stats
        return (
            f"<LRUCache {s.size}/{s.capacity} hits={s.hits} "
            f"misses={s.misses} evictions={s.evictions}>"
        )
