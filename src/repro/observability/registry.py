"""Process-wide metric registry: labeled counters, gauges and histograms.

The registry is the one place every layer of the system reports to —
pass pipeline timings, cache hit rates, training diagnostics, serving
latency decompositions — so one JSON snapshot (or one Prometheus scrape)
shows the whole process.

Two design rules keep it out of the hot path's way:

* **Disabled is the default and free.** The module-level default is a
  :class:`NullRegistry` whose instruments are shared no-op singletons;
  instrumented call sites either bind ``None`` at construction time or
  gate on :attr:`MetricRegistry.enabled`, so a process that never calls
  :func:`enable` executes the exact pre-observability code paths.
* **Instruments are cheap handles.** ``labels()``/``counter()`` resolve
  a child once; the child's ``inc``/``set``/``observe`` is a guarded
  float update under one registry lock (the increments are shared
  between scheduler and client threads in serving).
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Default histogram buckets (seconds): spans the ~100µs cache hit to the
#: multi-second fallback pipeline run.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

LabelValues = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Mapping[str, str]]) -> LabelValues:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically non-decreasing float with labels."""

    __slots__ = ("_lock", "value", "labels")

    def __init__(self, lock: threading.Lock, labels: LabelValues = ()):
        self._lock = lock
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self.value += amount


class Gauge:
    """Arbitrary float (set / add) with labels."""

    __slots__ = ("_lock", "value", "labels")

    def __init__(self, lock: threading.Lock, labels: LabelValues = ()):
        self._lock = lock
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram:
    """Fixed-bucket histogram (Prometheus ``le`` semantics).

    ``buckets`` are inclusive upper bounds in increasing order; a final
    ``+Inf`` bucket is implicit. ``observe`` updates one bucket count
    plus the running sum/count.
    """

    __slots__ = ("_lock", "buckets", "counts", "sum", "count", "labels")

    def __init__(
        self,
        lock: threading.Lock,
        buckets: Sequence[float],
        labels: LabelValues = (),
    ):
        self._lock = lock
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +Inf last
        self.sum = 0.0
        self.count = 0
        self.labels = labels

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def cumulative_counts(self) -> List[int]:
        """Prometheus-style cumulative per-``le`` counts (``+Inf`` last)."""
        out: List[int] = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


class _NullInstrument:
    """Shared no-op counter/gauge/histogram."""

    __slots__ = ()
    value = 0.0
    sum = 0.0
    count = 0
    labels: LabelValues = ()
    buckets: Tuple[float, ...] = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()

_KINDS = ("counter", "gauge", "histogram")


class _Family:
    """All children (label combinations) of one metric name."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(
        self, name: str, kind: str, help: str,
        buckets: Optional[Sequence[float]] = None,
    ):
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = tuple(buckets) if buckets is not None else None
        self.children: Dict[LabelValues, object] = {}


class MetricRegistry:
    """Namespace of metric families, safe to share across threads."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}
        self._collect_hooks: List[object] = []

    # -- instrument constructors -------------------------------------------
    def _family(
        self, name: str, kind: str, help: str,
        buckets: Optional[Sequence[float]] = None,
    ) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"cannot re-register as {kind}"
                )
            return family

    def counter(
        self, name: str, help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Counter:
        family = self._family(name, "counter", help)
        key = _label_key(labels)
        with self._lock:
            child = family.children.get(key)
            if child is None:
                child = Counter(self._lock, key)
                family.children[key] = child
        return child  # type: ignore[return-value]

    def gauge(
        self, name: str, help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Gauge:
        family = self._family(name, "gauge", help)
        key = _label_key(labels)
        with self._lock:
            child = family.children.get(key)
            if child is None:
                child = Gauge(self._lock, key)
                family.children[key] = child
        return child  # type: ignore[return-value]

    def histogram(
        self, name: str, help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        family = self._family(
            name, "histogram", help,
            buckets if buckets is not None else DEFAULT_TIME_BUCKETS,
        )
        key = _label_key(labels)
        with self._lock:
            child = family.children.get(key)
            if child is None:
                assert family.buckets is not None
                child = Histogram(self._lock, family.buckets, key)
                family.children[key] = child
        return child  # type: ignore[return-value]

    def register_collect_hook(self, hook) -> None:
        """Run ``hook()`` before every :meth:`collect`/:meth:`get_value`.

        Lazily-synced sources (the LRU caches keep plain int counters on
        their hot path) use this to fold their totals into registry
        instruments only when something actually reads the registry —
        zero added cost per cache operation. Hooks may call instrument
        methods; they run *outside* the registry lock.
        """
        with self._lock:
            self._collect_hooks.append(hook)

    def _run_collect_hooks(self) -> None:
        with self._lock:
            hooks = list(self._collect_hooks)
        for hook in hooks:
            hook()

    # -- export -------------------------------------------------------------
    def collect(self) -> List[Dict[str, object]]:
        """Every family with every labeled sample, JSON-friendly.

        The schema is shared with the exporters and the ``repro.tools.stats``
        renderer: a list of ``{name, type, help, samples}`` dicts, where a
        histogram sample carries per-``le`` cumulative bucket counts.
        """
        self._run_collect_hooks()
        out: List[Dict[str, object]] = []
        with self._lock:
            for family in sorted(self._families.values(), key=lambda f: f.name):
                samples: List[Dict[str, object]] = []
                for key, child in sorted(family.children.items()):
                    labels = dict(key)
                    if family.kind == "histogram":
                        assert isinstance(child, Histogram)
                        les = [_format_le(b) for b in child.buckets] + ["+Inf"]
                        samples.append({
                            "labels": labels,
                            "buckets": dict(zip(les, child.cumulative_counts())),
                            "sum": child.sum,
                            "count": child.count,
                        })
                    else:
                        samples.append(
                            {"labels": labels, "value": child.value}
                        )
                out.append({
                    "name": family.name,
                    "type": family.kind,
                    "help": family.help,
                    "samples": samples,
                })
        return out

    def get_value(
        self, name: str, labels: Optional[Mapping[str, str]] = None,
    ) -> Optional[float]:
        """Read one counter/gauge value (tests, CLIs); ``None`` if absent."""
        self._run_collect_hooks()
        family = self._families.get(name)
        if family is None:
            return None
        child = family.children.get(_label_key(labels))
        if child is None or isinstance(child, Histogram):
            return None
        return child.value  # type: ignore[union-attr]


def _format_le(bound: float) -> str:
    """Prometheus-style bucket bound: drop trailing zeros, keep '1.0'."""
    text = repr(float(bound))
    return text[:-2] if text.endswith(".0") else text


class NullRegistry:
    """The default: every instrument is the shared no-op singleton."""

    enabled = False

    def counter(self, name: str, help: str = "", labels=None) -> Counter:
        return NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", labels=None) -> Gauge:
        return NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(
        self, name: str, help: str = "", labels=None, buckets=None,
    ) -> Histogram:
        return NULL_INSTRUMENT  # type: ignore[return-value]

    def collect(self) -> List[Dict[str, object]]:
        return []

    def get_value(self, name: str, labels=None) -> Optional[float]:
        return None

    def register_collect_hook(self, hook) -> None:
        pass


NULL_REGISTRY = NullRegistry()
