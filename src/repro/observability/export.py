"""Exporters: JSON snapshots and Prometheus text format.

A *snapshot* is one JSON-friendly dict holding every metric family (the
:meth:`MetricRegistry.collect` schema) plus the tracer's recent traces.
``--metrics-out`` on the train/serve/fuzz CLIs writes one at exit;
``python -m repro.tools.stats`` renders or tails them, and
:func:`prometheus_text` turns either a live registry or a saved snapshot
into the Prometheus exposition format for scraping.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Mapping, Optional, Union

from .registry import MetricRegistry, NullRegistry
from .tracing import NullTracer, Tracer

SNAPSHOT_SCHEMA = "repro.observability/v1"


def snapshot(
    registry: Union[MetricRegistry, NullRegistry],
    tracer: Union[Tracer, NullTracer, None] = None,
) -> Dict[str, object]:
    """One JSON-friendly dict of everything the process has reported."""
    out: Dict[str, object] = {
        "schema": SNAPSHOT_SCHEMA,
        "unix_time": time.time(),
        "enabled": registry.enabled,
        "metrics": registry.collect(),
    }
    if tracer is not None:
        out["traces"] = [span.to_dict() for span in tracer.traces()]
        out["traces_dropped"] = tracer.dropped
    return out


def write_snapshot(
    path: str,
    registry: Union[MetricRegistry, NullRegistry],
    tracer: Union[Tracer, NullTracer, None] = None,
) -> Dict[str, object]:
    """Write :func:`snapshot` to ``path`` as JSON; returns the dict."""
    payload = snapshot(registry, tracer)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return payload


def merge_snapshots(snapshots: List[Dict[str, object]]) -> Dict[str, object]:
    """Fold N per-process snapshots into one aggregated view.

    The sharded gateway's workers each write their own ``--metrics-out``
    snapshot (separate processes, separate registries); this merges them
    — and optionally the gateway's own — so ``repro.tools.stats`` can
    render fleet totals. Samples are matched on ``(family name, labels)``
    and combined by type:

    * counters sum (they count disjoint per-process events),
    * histograms sum per-``le`` bucket counts, ``sum`` and ``count``
      (valid because every registry in this codebase uses the same
      bucket layout per family; mismatched layouts merge on the union of
      bounds, with bounds missing from some inputs undercounted),
    * gauges sum as well — every gauge this codebase exports is an
      occupancy/depth-style quantity where the fleet total is the
      meaningful aggregate.

    Traces concatenate, tagged with their source index. ``unix_time`` is
    the newest input's; ``enabled`` is true if any input was.
    """
    if not snapshots:
        raise ValueError("no snapshots to merge")
    if len(snapshots) == 1:
        return dict(snapshots[0])

    # (name, frozenset(labels)) -> merged sample; families keep first-seen
    # help/type and the order they first appear across inputs.
    families: Dict[str, Dict[str, object]] = {}
    merged_samples: Dict[str, Dict[frozenset, Dict[str, object]]] = {}
    traces: List[dict] = []
    traces_dropped = 0
    newest = 0.0
    enabled = False

    for index, snap in enumerate(snapshots):
        newest = max(newest, float(snap.get("unix_time", 0.0)))
        enabled = enabled or bool(snap.get("enabled"))
        traces_dropped += int(snap.get("traces_dropped", 0))
        for span in snap.get("traces", []) or []:
            tagged = dict(span)
            tagged["source"] = index
            traces.append(tagged)
        for family in snap.get("metrics", []) or []:
            name = str(family["name"])
            if name not in families:
                families[name] = {
                    "name": name,
                    "type": family["type"],
                    "help": family.get("help"),
                }
                merged_samples[name] = {}
            by_labels = merged_samples[name]
            kind = families[name]["type"]
            for sample in family.get("samples", []):
                labels = dict(sample.get("labels") or {})
                key = frozenset(labels.items())
                slot = by_labels.get(key)
                if slot is None:
                    slot = {"labels": labels}
                    if kind == "histogram":
                        slot["buckets"] = {}
                        slot["sum"] = 0.0
                        slot["count"] = 0
                    else:
                        slot["value"] = 0.0
                    by_labels[key] = slot
                if kind == "histogram":
                    buckets: Dict[str, float] = slot["buckets"]
                    for le, count in sample.get("buckets", {}).items():
                        buckets[le] = buckets.get(le, 0) + count
                    slot["sum"] = slot["sum"] + sample.get("sum", 0.0)
                    slot["count"] = slot["count"] + sample.get("count", 0)
                else:
                    slot["value"] = slot["value"] + sample.get("value", 0.0)

    def _le_sort_key(item):
        le = item[0]
        return float("inf") if le == "+Inf" else float(le)

    metrics: List[Dict[str, object]] = []
    for name, family in families.items():
        samples = []
        for slot in merged_samples[name].values():
            if family["type"] == "histogram":
                slot["buckets"] = dict(
                    sorted(slot["buckets"].items(), key=_le_sort_key)
                )
            samples.append(slot)
        metrics.append({**family, "samples": samples})

    return {
        "schema": SNAPSHOT_SCHEMA,
        "unix_time": newest,
        "enabled": enabled,
        "merged_from": len(snapshots),
        "metrics": metrics,
        "traces": traces,
        "traces_dropped": traces_dropped,
    }


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_text(
    source: Union[MetricRegistry, NullRegistry, Dict[str, object], List[dict]],
) -> str:
    """Prometheus exposition text from a registry, snapshot, or family list.

    Histograms render the full ``_bucket{le=...}`` / ``_sum`` / ``_count``
    triple; counters keep their ``_total`` suffix as named at the call
    site (the instrumentation already follows the convention).
    """
    if isinstance(source, (MetricRegistry, NullRegistry)):
        families = source.collect()
    elif isinstance(source, dict):
        families = source.get("metrics", [])  # a snapshot dict
    else:
        families = source

    lines: List[str] = []
    for family in families:
        name = family["name"]
        kind = family["type"]
        help_text = family.get("help") or ""
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in family["samples"]:
            labels = sample.get("labels") or {}
            if kind == "histogram":
                for le, count in sample["buckets"].items():
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = le
                    lines.append(
                        f"{name}_bucket{_render_labels(bucket_labels)} "
                        f"{_format_value(count)}"
                    )
                lines.append(
                    f"{name}_sum{_render_labels(labels)} "
                    f"{_format_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_render_labels(labels)} "
                    f"{_format_value(sample['count'])}"
                )
            else:
                lines.append(
                    f"{name}{_render_labels(labels)} "
                    f"{_format_value(sample['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")
