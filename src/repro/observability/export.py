"""Exporters: JSON snapshots and Prometheus text format.

A *snapshot* is one JSON-friendly dict holding every metric family (the
:meth:`MetricRegistry.collect` schema) plus the tracer's recent traces.
``--metrics-out`` on the train/serve/fuzz CLIs writes one at exit;
``python -m repro.tools.stats`` renders or tails them, and
:func:`prometheus_text` turns either a live registry or a saved snapshot
into the Prometheus exposition format for scraping.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Mapping, Optional, Union

from .registry import MetricRegistry, NullRegistry
from .tracing import NullTracer, Tracer

SNAPSHOT_SCHEMA = "repro.observability/v1"


def snapshot(
    registry: Union[MetricRegistry, NullRegistry],
    tracer: Union[Tracer, NullTracer, None] = None,
) -> Dict[str, object]:
    """One JSON-friendly dict of everything the process has reported."""
    out: Dict[str, object] = {
        "schema": SNAPSHOT_SCHEMA,
        "unix_time": time.time(),
        "enabled": registry.enabled,
        "metrics": registry.collect(),
    }
    if tracer is not None:
        out["traces"] = [span.to_dict() for span in tracer.traces()]
        out["traces_dropped"] = tracer.dropped
    return out


def write_snapshot(
    path: str,
    registry: Union[MetricRegistry, NullRegistry],
    tracer: Union[Tracer, NullTracer, None] = None,
) -> Dict[str, object]:
    """Write :func:`snapshot` to ``path`` as JSON; returns the dict."""
    payload = snapshot(registry, tracer)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return payload


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_text(
    source: Union[MetricRegistry, NullRegistry, Dict[str, object], List[dict]],
) -> str:
    """Prometheus exposition text from a registry, snapshot, or family list.

    Histograms render the full ``_bucket{le=...}`` / ``_sum`` / ``_count``
    triple; counters keep their ``_total`` suffix as named at the call
    site (the instrumentation already follows the convention).
    """
    if isinstance(source, (MetricRegistry, NullRegistry)):
        families = source.collect()
    elif isinstance(source, dict):
        families = source.get("metrics", [])  # a snapshot dict
    else:
        families = source

    lines: List[str] = []
    for family in families:
        name = family["name"]
        kind = family["type"]
        help_text = family.get("help") or ""
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in family["samples"]:
            labels = sample.get("labels") or {}
            if kind == "histogram":
                for le, count in sample["buckets"].items():
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = le
                    lines.append(
                        f"{name}_bucket{_render_labels(bucket_labels)} "
                        f"{_format_value(count)}"
                    )
                lines.append(
                    f"{name}_sum{_render_labels(labels)} "
                    f"{_format_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_render_labels(labels)} "
                    f"{_format_value(sample['count'])}"
                )
            else:
                lines.append(
                    f"{name}{_render_labels(labels)} "
                    f"{_format_value(sample['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")
