"""Unified observability: metric registry, tracing spans, exporters.

One process-wide :class:`MetricRegistry` and one :class:`Tracer` serve
every layer — the pass pipeline, the LRU caches behind the metrics
engine, the DQN training loop and the optimization service — so a single
JSON snapshot or Prometheus scrape decomposes where time and work went.

Observability is **off by default and free when off**: the module-level
registry/tracer are no-op singletons, and every instrumented call site
either binds nothing at construction time or gates on ``.enabled``.
Turn it on before constructing the objects you want instrumented::

    from repro.observability import enable, disable, export_snapshot

    enable()                       # fresh registry + tracer
    ...                            # build engines/services, run traffic
    export_snapshot("metrics.json")
    disable()

or from the CLIs with ``--metrics-out metrics.json`` (serve, fuzz,
profile), then render with ``python -m repro.tools.stats metrics.json``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from .export import (
    SNAPSHOT_SCHEMA,
    merge_snapshots,
    prometheus_text,
    snapshot,
    write_snapshot,
)
from .registry import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from .tracing import (
    DEFAULT_MAX_TRACES,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricRegistry", "NullRegistry",
    "Span", "Tracer", "NullTracer",
    "DEFAULT_TIME_BUCKETS", "DEFAULT_MAX_TRACES", "SNAPSHOT_SCHEMA",
    "get_registry", "get_tracer", "set_registry", "set_tracer",
    "enable", "disable", "enabled",
    "snapshot", "write_snapshot", "export_snapshot", "prometheus_text",
    "merge_snapshots",
]

_registry: Union[MetricRegistry, NullRegistry] = NULL_REGISTRY
_tracer: Union[Tracer, NullTracer] = NULL_TRACER


def get_registry() -> Union[MetricRegistry, NullRegistry]:
    """The process-wide registry (the no-op singleton unless enabled)."""
    return _registry


def get_tracer() -> Union[Tracer, NullTracer]:
    """The process-wide tracer (the no-op singleton unless enabled)."""
    return _tracer


def set_registry(
    registry: Union[MetricRegistry, NullRegistry],
) -> Union[MetricRegistry, NullRegistry]:
    """Install a registry; returns the previous one."""
    global _registry
    previous, _registry = _registry, registry
    return previous


def set_tracer(
    tracer: Union[Tracer, NullTracer],
) -> Union[Tracer, NullTracer]:
    """Install a tracer; returns the previous one."""
    global _tracer
    previous, _tracer = _tracer, tracer
    return previous


def enable(
    max_traces: int = DEFAULT_MAX_TRACES,
) -> Tuple[MetricRegistry, Tracer]:
    """Install (and return) a fresh registry + tracer pair.

    Call *before* constructing caches/engines/services: instruments are
    bound at construction time, so objects built while disabled stay
    uninstrumented (that is what keeps the disabled path free).
    """
    registry = MetricRegistry()
    tracer = Tracer(max_traces=max_traces)
    set_registry(registry)
    set_tracer(tracer)
    return registry, tracer


def disable() -> None:
    """Restore the no-op registry and tracer."""
    set_registry(NULL_REGISTRY)
    set_tracer(NULL_TRACER)


def enabled() -> bool:
    return _registry.enabled


def export_snapshot(path: Optional[str] = None) -> Dict[str, object]:
    """Snapshot the global registry + tracer (optionally writing JSON)."""
    if path is not None:
        return write_snapshot(path, _registry, _tracer)
    return snapshot(_registry, _tracer)
