"""Nested tracing spans with a bounded ring buffer of recent traces.

A *span* is one named, timed region with string tags and child spans; a
*trace* is a finished root span. Spans nest per thread: entering a span
while another is open on the same thread attaches it as a child, so a
served request shows up as one tree — request → queue/forward/passes/
measure/verify — and a traced pipeline run as pipeline → one span per
pass.

Like the metric registry, the module-level default is a
:class:`NullTracer` whose ``span()`` hands back a shared no-op context
manager; instrumented code gates on :attr:`Tracer.enabled` where even
that is too much.

Spans can also be built by hand (``Span(name, duration_s=...)``) and
published with :meth:`Tracer.record` — the serving scheduler uses this
to assemble one per-request trace from stage timings accumulated across
interleaved batch ticks, where no single ``with`` block can bracket the
request.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional

#: Default ring-buffer capacity: recent traces only, by design.
DEFAULT_MAX_TRACES = 64


class Span:
    """One named timed region; children are spans opened inside it."""

    __slots__ = ("name", "tags", "duration_s", "children", "_start")

    def __init__(
        self,
        name: str,
        duration_s: float = 0.0,
        tags: Optional[Dict[str, str]] = None,
        children: Optional[List["Span"]] = None,
    ):
        self.name = name
        self.tags = dict(tags) if tags else {}
        self.duration_s = duration_s
        self.children: List[Span] = list(children) if children else []
        self._start = 0.0

    def child(self, name: str, duration_s: float = 0.0, **tags: str) -> "Span":
        """Attach and return a hand-built child span."""
        span = Span(name, duration_s=duration_s, tags=tags or None)
        self.children.append(span)
        return span

    def find(self, name: str) -> Optional["Span"]:
        """First child (depth-first) with this name, or ``None``."""
        for child in self.children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "duration_s": round(self.duration_s, 6),
        }
        if self.tags:
            out["tags"] = dict(self.tags)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<span {self.name} {1e3 * self.duration_s:.3f}ms "
            f"children={len(self.children)}>"
        )


class _SpanContext:
    """The ``with tracer.span(...)`` guard: times and files one span."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._span._start = time.perf_counter()
        self._tracer._stack().append(self._span)
        return self._span

    def __exit__(self, *exc) -> None:
        span = self._span
        span.duration_s = time.perf_counter() - span._start
        stack = self._tracer._stack()
        # Pop back to (and past) our span even if an exception unwound
        # nested spans without their __exit__ running.
        while stack:
            top = stack.pop()
            if top is span:
                break
        if stack:
            stack[-1].children.append(span)
        else:
            self._tracer.record(span)


class Tracer:
    """Per-thread span nesting + process-wide ring of finished traces."""

    enabled = True

    def __init__(self, max_traces: int = DEFAULT_MAX_TRACES):
        if max_traces <= 0:
            raise ValueError("max_traces must be positive")
        self.max_traces = max_traces
        self._lock = threading.Lock()
        self._traces: Deque[Span] = deque(maxlen=max_traces)
        self._local = threading.local()
        self.dropped = 0

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **tags: str) -> _SpanContext:
        """Context manager opening one span nested under the current one."""
        return _SpanContext(self, Span(name, tags=tags or None))

    def record(self, root: Span) -> None:
        """Publish a finished root span as a trace (oldest evicted first)."""
        with self._lock:
            if len(self._traces) == self._traces.maxlen:
                self.dropped += 1
            self._traces.append(root)

    def traces(self) -> List[Span]:
        """Most recent traces, oldest first."""
        with self._lock:
            return list(self._traces)

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()
            self.dropped = 0


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> Span:
        return NULL_SPAN

    def __exit__(self, *exc) -> None:
        pass


NULL_SPAN = Span("null")
_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """The default: spans are no-ops, nothing is retained."""

    enabled = False
    dropped = 0

    def span(self, name: str, **tags: str) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def record(self, root: Span) -> None:
        pass

    def traces(self) -> List[Span]:
        return []

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()
