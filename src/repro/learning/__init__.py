"""Closed-loop continuous learning from live serving traffic.

The loop (see docs/LEARNING.md):

1. Serving taps completed rollouts into a bounded on-disk
   :class:`ExperienceJournal` (:class:`ExperienceTap`).
2. A background :class:`OnlineTrainer` fine-tunes from a pinned base
   checkpoint on the journaled experience and emits candidates.
3. An :class:`EvaluationGate` accepts a candidate only if it is no
   worse than the incumbent on a fixed holdout suite *and* passes a
   differential fuzz canary with zero miscompiles.
4. The :class:`LearningController` hot-swaps winners into serving and
   automatically rolls back when the post-promotion guard-trip rate
   breaches its threshold.
"""

from .controller import (
    CycleReport,
    LearningController,
    registry_health_sampler,
)
from .gate import (
    EvaluationGate,
    GateVerdict,
    HoldoutScore,
    constant_action_network,
)
from .journal import ExperienceJournal, JournalReader
from .tap import ExperienceTap
from .trainer import OnlineTrainer

__all__ = [
    "CycleReport",
    "EvaluationGate",
    "ExperienceJournal",
    "ExperienceTap",
    "GateVerdict",
    "HoldoutScore",
    "JournalReader",
    "LearningController",
    "OnlineTrainer",
    "constant_action_network",
    "registry_health_sampler",
]
