"""Experience tap: serving-side trajectory capture.

The scheduler hands a completed rollout to the tap as the raw pieces it
already has in hand — the visited state embeddings (``T + 1`` rows
including the terminal state), the chosen action indices and the
per-step rewards. The tap derives ``next_states`` / ``dones`` and
appends the trajectory to an :class:`~repro.learning.journal.ExperienceJournal`.

The tap sits on the serving hot path, so it must never raise into the
scheduler: :meth:`record` swallows and counts failures instead.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..observability import get_registry
from .journal import ExperienceJournal


class ExperienceTap:
    """Logs completed serving rollouts into an experience journal."""

    def __init__(self, journal: ExperienceJournal):
        self.journal = journal
        self.counters: Dict[str, int] = {
            "trajectories": 0,
            "transitions": 0,
            "errors": 0,
        }

    def record(
        self,
        states: Sequence[np.ndarray],
        actions: Sequence[int],
        rewards: Sequence[float],
    ) -> bool:
        """Log one trajectory; ``states`` holds ``len(actions) + 1`` rows.

        Returns whether the trajectory was accepted. Never raises.
        """
        try:
            n = len(actions)
            if n == 0 or len(states) != n + 1 or len(rewards) != n:
                raise ValueError("malformed trajectory")
            stacked = np.asarray(states, dtype=np.float32)
            dones = np.zeros(n, dtype=bool)
            dones[-1] = True
            self.journal.append(
                stacked[:-1],
                np.asarray(actions, dtype=np.int64),
                np.asarray(rewards, dtype=np.float64),
                stacked[1:],
                dones,
            )
        except Exception:
            self.counters["errors"] += 1
            return False
        self.counters["trajectories"] += 1
        self.counters["transitions"] += n
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "repro_learning_trajectories_total",
                "serving trajectories logged to the experience journal",
            ).inc()
            registry.counter(
                "repro_learning_transitions_total",
                "transitions logged to the experience journal",
            ).inc(n)
        return True

    def flush(self) -> Optional[str]:
        """Flush buffered trajectories to disk (e.g. on drain)."""
        try:
            return self.journal.flush()
        except Exception:
            self.counters["errors"] += 1
            return None
