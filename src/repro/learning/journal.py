"""Bounded on-disk experience journal.

Serving workers append completed trajectories; the background trainer
reads them back into the array-backed
:class:`~repro.rl.replay.ReplayMemory`. The two sides share nothing but
the directory, so they can live in different processes (each gateway
shard writes its own subdirectory) and either side can restart without
coordinating with the other.

Layout: ``seg-00000042.npz`` segment files, each holding the stacked
transition arrays of up to ``segment_size`` transitions. Segments are
written atomically (tmp file + ``os.replace``) so a reader never sees a
partial ``.npz``, and rotation deletes the oldest files beyond
``max_segments`` — the journal is a bounded ring on disk, exactly like
the replay memory is in RAM.
"""

from __future__ import annotations

import glob
import os
import threading
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..observability import get_registry

SEGMENT_PREFIX = "seg-"
SEGMENT_PATTERN = SEGMENT_PREFIX + "*.npz"

#: (states, actions, rewards, next_states, dones) — push_batch order.
TransitionArrays = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def _segment_path(directory: str, serial: int) -> str:
    return os.path.join(directory, f"{SEGMENT_PREFIX}{serial:08d}.npz")


def _segment_serial(path: str) -> int:
    name = os.path.basename(path)
    return int(name[len(SEGMENT_PREFIX):-len(".npz")])


class ExperienceJournal:
    """Thread-safe trajectory writer with bounded on-disk rotation."""

    def __init__(
        self,
        directory: str,
        *,
        segment_size: int = 256,
        max_segments: int = 64,
    ):
        if segment_size <= 0:
            raise ValueError("segment_size must be positive")
        if max_segments <= 0:
            raise ValueError("max_segments must be positive")
        self.directory = directory
        self.segment_size = segment_size
        self.max_segments = max_segments
        os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()
        self._buffer: List[TransitionArrays] = []
        self._buffered = 0
        # Restart-safe: continue numbering after whatever already exists.
        existing = sorted(glob.glob(os.path.join(directory, SEGMENT_PATTERN)))
        self._serial = (_segment_serial(existing[-1]) + 1) if existing else 0
        self.counters: Dict[str, int] = {
            "trajectories": 0,
            "transitions": 0,
            "segments_written": 0,
            "segments_dropped": 0,
        }

    def append(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
        dones: np.ndarray,
    ) -> None:
        """Buffer one trajectory's transitions (rows of the given arrays)."""
        states = np.atleast_2d(np.asarray(states, dtype=np.float32))
        next_states = np.atleast_2d(np.asarray(next_states, dtype=np.float32))
        actions = np.asarray(actions, dtype=np.int64).ravel()
        rewards = np.asarray(rewards, dtype=np.float64).ravel()
        dones = np.asarray(dones, dtype=bool).ravel()
        n = len(actions)
        if n == 0:
            return
        if not (len(states) == len(next_states) == len(rewards) == len(dones) == n):
            raise ValueError("trajectory arrays must have matching lengths")
        flush_now = False
        with self._lock:
            self._buffer.append((states, actions, rewards, next_states, dones))
            self._buffered += n
            self.counters["trajectories"] += 1
            self.counters["transitions"] += n
            flush_now = self._buffered >= self.segment_size
        if flush_now:
            self.flush()

    def flush(self) -> Optional[str]:
        """Write buffered transitions as one segment; returns its path."""
        with self._lock:
            if not self._buffer:
                return None
            chunks, self._buffer, self._buffered = self._buffer, [], 0
            serial = self._serial
            self._serial += 1
        states = np.concatenate([c[0] for c in chunks])
        actions = np.concatenate([c[1] for c in chunks])
        rewards = np.concatenate([c[2] for c in chunks])
        next_states = np.concatenate([c[3] for c in chunks])
        dones = np.concatenate([c[4] for c in chunks])
        path = _segment_path(self.directory, serial)
        tmp = f"{path}.tmp-{os.getpid()}"
        try:
            with open(tmp, "wb") as fh:
                np.savez(
                    fh,
                    states=states,
                    actions=actions,
                    rewards=rewards,
                    next_states=next_states,
                    dones=dones,
                )
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        dropped = self._rotate()
        with self._lock:
            self.counters["segments_written"] += 1
            self.counters["segments_dropped"] += dropped
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "repro_learning_journal_segments_total",
                "experience journal segments written",
            ).inc()
            if dropped:
                registry.counter(
                    "repro_learning_journal_dropped_total",
                    "journal segments dropped by rotation",
                ).inc(dropped)
        return path

    def _rotate(self) -> int:
        paths = sorted(glob.glob(os.path.join(self.directory, SEGMENT_PATTERN)))
        excess = len(paths) - self.max_segments
        for path in paths[:max(0, excess)]:
            try:
                os.unlink(path)
            except OSError:
                pass
        return max(0, excess)

    def segments(self) -> List[str]:
        return sorted(glob.glob(os.path.join(self.directory, SEGMENT_PATTERN)))


class JournalReader:
    """Incremental reader over one or more journal directories.

    Tracks which segment files it has already consumed, so repeated
    :meth:`read_new` calls return only fresh experience. Files removed by
    rotation between calls are simply skipped — the reader never blocks
    the writer and vice versa.
    """

    def __init__(self, directories: Iterable[str]):
        self.directories = list(directories)
        self._seen: set = set()

    def read_new(self) -> List[TransitionArrays]:
        """Transition arrays from segments not yet consumed, oldest first."""
        batches: List[TransitionArrays] = []
        for directory in self.directories:
            paths = sorted(glob.glob(os.path.join(directory, SEGMENT_PATTERN)))
            for path in paths:
                if path in self._seen:
                    continue
                self._seen.add(path)
                try:
                    with np.load(path, allow_pickle=False) as data:
                        batches.append(
                            (
                                data["states"].copy(),
                                data["actions"].copy(),
                                data["rewards"].copy(),
                                data["next_states"].copy(),
                                data["dones"].copy(),
                            )
                        )
                except (OSError, KeyError, ValueError):
                    # Rotated away or torn mid-read — skip, never crash
                    # the trainer over one segment.
                    continue
        return batches
