"""Background online trainer.

Fine-tunes from a pinned base checkpoint on journaled traffic
experience. The trainer owns a :class:`~repro.rl.dqn.DoubleDQNAgent`
whose online *and* target networks start as copies of the base network
— fine-tuning always departs from the same anchor, never from an
unvetted previous candidate, so a bad candidate can't poison the next
one. Each cycle ingests new journal segments into the agent's
array-backed replay ring, runs a bounded number of gradient updates,
and emits a frozen candidate :class:`~repro.rl.network.QNetwork` for
the :class:`~repro.learning.gate.EvaluationGate` to judge.

The replay ring itself snapshots to disk (:meth:`OnlineTrainer.
snapshot_replay`) so a restarted trainer resumes with the same buffer
and the same RNG stream.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from ..observability import get_registry
from ..rl.dqn import AgentConfig, DoubleDQNAgent
from ..rl.network import QNetwork
from ..rl.replay import ReplayMemory
from .journal import JournalReader


class OnlineTrainer:
    """Fine-tunes a pinned base checkpoint on journaled experience."""

    def __init__(
        self,
        base_checkpoint: str,
        journal_dirs: Iterable[str],
        *,
        replay_capacity: int = 10_000,
        batch_size: int = 32,
        steps_per_cycle: int = 64,
        min_buffer: int = 64,
        learning_rate: Optional[float] = None,
        prioritized: bool = False,
        seed: int = 0,
    ):
        self.base_checkpoint = base_checkpoint
        self.base_network = QNetwork.load(base_checkpoint)
        self.base_metadata = QNetwork.load_metadata(base_checkpoint)
        self.steps_per_cycle = steps_per_cycle
        config = AgentConfig(
            state_dim=self.base_network.state_dim,
            num_actions=self.base_network.num_actions,
            hidden=self.base_network.hidden,
            learning_rate=(
                self.base_network.learning_rate
                if learning_rate is None
                else learning_rate
            ),
            batch_size=batch_size,
            replay_capacity=replay_capacity,
            min_replay=min_buffer,
            prioritized_replay=prioritized,
            seed=seed,
        )
        self.agent = DoubleDQNAgent(config)
        # Pinned base: both networks depart from the checkpoint weights.
        self.agent.online.copy_from(self.base_network)
        self.agent.target.copy_from(self.base_network)
        self.reader = JournalReader(journal_dirs)
        self.fine_tune_steps = 0
        self.candidates_emitted = 0
        self.counters: Dict[str, int] = {
            "ingested_transitions": 0,
            "ingest_calls": 0,
            "train_updates": 0,
        }

    @property
    def memory(self) -> ReplayMemory:
        return self.agent.memory

    # -- experience ingest ---------------------------------------------------
    def ingest(self) -> int:
        """Pull new journal segments into the replay ring; returns rows added.

        Rewards are scaled exactly as online :meth:`DQNAgent.remember`
        scales them, but no training cadence runs here — the trainer
        drives updates explicitly in :meth:`train`.
        """
        added = 0
        for states, actions, rewards, next_states, dones in self.reader.read_new():
            self.memory.push_batch(
                states,
                actions,
                rewards * self.agent.config.reward_scale,
                next_states,
                dones,
            )
            added += len(actions)
        self.counters["ingest_calls"] += 1
        self.counters["ingested_transitions"] += added
        registry = get_registry()
        if registry.enabled and added:
            registry.counter(
                "repro_learning_ingested_transitions_total",
                "journal transitions ingested into the trainer replay ring",
            ).inc(added)
        if registry.enabled:
            registry.gauge(
                "repro_learning_replay_size",
                "transitions in the online trainer replay ring",
            ).set(len(self.memory))
        return added

    # -- training ------------------------------------------------------------
    def train(self, updates: Optional[int] = None) -> List[float]:
        """Run one fine-tune cycle; returns the losses of the updates run."""
        losses = self.agent.train_from_replay(
            self.steps_per_cycle if updates is None else updates
        )
        self.fine_tune_steps += len(losses)
        self.counters["train_updates"] += len(losses)
        registry = get_registry()
        if registry.enabled and losses:
            registry.counter(
                "repro_learning_train_steps_total",
                "online fine-tune gradient updates",
            ).inc(len(losses))
        return losses

    # -- candidates ----------------------------------------------------------
    def make_candidate(
        self, metadata: Optional[Dict[str, Any]] = None
    ) -> QNetwork:
        """Freeze the current online weights as a candidate network."""
        net = self.agent.online
        candidate = QNetwork(
            net.state_dim,
            net.num_actions,
            net.hidden,
            net.learning_rate,
        )
        candidate.copy_from(net)
        self.candidates_emitted += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "repro_learning_candidates_total",
                "candidate networks emitted by the online trainer",
            ).inc()
        return candidate

    def candidate_metadata(self) -> Dict[str, Any]:
        meta = dict(self.base_metadata)
        meta.update(
            base_checkpoint=self.base_checkpoint,
            fine_tune_steps=self.fine_tune_steps,
            ingested_transitions=self.counters["ingested_transitions"],
            trained_online=True,
        )
        return meta

    # -- restart survival ----------------------------------------------------
    def snapshot_replay(self, path: str) -> None:
        self.memory.save(path)

    def restore_replay(self, path: str) -> None:
        """Replace the agent's replay ring with a saved snapshot.

        Loads through the agent's own memory class, so a prioritized
        trainer restores its sum-tree priorities (a plain-ring snapshot
        re-enters every row at max priority)."""
        restored = type(self.agent.memory).load(path)
        if (
            restored.state_dim is not None
            and restored.state_dim != self.base_network.state_dim
        ):
            raise ValueError(
                f"replay snapshot state_dim {restored.state_dim} does not "
                f"match base network state_dim {self.base_network.state_dim}"
            )
        self.agent.memory = restored
