"""Closed-loop learning controller.

Ties the pieces into the loop: ingest journaled traffic experience,
fine-tune, gate the candidate against the incumbent, hot-swap winners
into the serving plane, and watch post-promotion health for automatic
rollback.

The controller drives either serving front end through a small adapter:

* :class:`~repro.serving.service.OptimizationService` — promotion
  registers + activates in the in-process :class:`ModelRegistry`;
  rollback re-activates the previous version.
* :class:`~repro.serving.gateway.ShardedGateway` — promotion broadcasts
  ``hot_reload`` to every shard worker; rollback broadcasts
  ``activate_version`` (the workers re-activate a version they already
  hold, no weights cross the pipe).

Rollback watches the *fallback rate* — the fraction of completed
requests that tripped the robustness guard (verify failure, crash,
deadline) and fell back to ``-Oz``. A healthy promotion barely moves
it; a bad model spikes it, and the spike is attributable to the
promotion because the controller samples the counters at promotion time
and judges only the delta.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..observability import get_registry
from ..rl.network import QNetwork
from .gate import EvaluationGate, GateVerdict
from .trainer import OnlineTrainer

#: ``health_sampler() -> (completed_requests, guard_trips)`` cumulative pair.
HealthSampler = Callable[[], Tuple[int, int]]


@dataclass
class CycleReport:
    """What one :meth:`LearningController.run_cycle` did."""

    ingested: int
    train_updates: int
    candidate_version: Optional[str] = None
    verdict: Optional[GateVerdict] = None
    promoted: bool = False
    rolled_back: bool = False
    details: Dict[str, Any] = field(default_factory=dict)


class _ServiceAdapter:
    """Promotion/rollback against an in-process ``OptimizationService``."""

    def __init__(self, service):
        self.service = service

    def incumbent_version(self) -> str:
        return self.service.registry.active.version

    def incumbent_network(self) -> QNetwork:
        return self.service.registry.active.network

    def promote(
        self, network: QNetwork, version: str, metadata: Dict[str, Any]
    ) -> None:
        active = self.service.registry.active
        self.service.registry.register(
            network,
            action_space=active.action_space_kind,
            version=version,
            episode_length=active.episode_length,
            metadata=metadata,
            activate=True,
        )

    def activate(self, version: str) -> None:
        self.service.registry.activate(version)

    def health(self) -> Tuple[int, int]:
        with self.service._memo_lock:
            c = dict(self.service.counters)
        completed = int(c.get("ok", 0)) + int(c.get("fallbacks", 0))
        return completed, int(c.get("fallbacks", 0))

    def prune(self, keep_last: int, keep: Tuple[str, ...]) -> List[str]:
        return self.service.registry.prune(keep_last=keep_last, keep=keep)


class _GatewayAdapter:
    """Promotion/rollback against a ``ShardedGateway`` (remote workers).

    Worker registries live in other processes, so the adapter keeps its
    own version → network map for gating (seeded with the base network)
    and trusts ``gateway.model_version`` as the incumbent pointer.
    """

    def __init__(self, gateway, base_network: QNetwork):
        self.gateway = gateway
        self._networks: Dict[str, QNetwork] = {
            gateway.model_version: base_network
        }

    def incumbent_version(self) -> str:
        return self.gateway.model_version

    def incumbent_network(self) -> QNetwork:
        version = self.gateway.model_version
        network = self._networks.get(version)
        if network is None:
            raise LookupError(
                f"gateway serves version {version!r} but the controller "
                "holds no weights for it (promoted outside the loop?)"
            )
        return network

    def promote(
        self, network: QNetwork, version: str, metadata: Dict[str, Any]
    ) -> None:
        outcomes = self.gateway.hot_reload(
            network=network, version=version, metadata=metadata
        )
        errors = {s: e for s, e in outcomes.items() if e is not None}
        if errors:
            raise RuntimeError(f"hot reload failed on shards {errors}")
        self._networks[version] = network

    def activate(self, version: str) -> None:
        outcomes = self.gateway.activate_version(version)
        errors = {s: e for s, e in outcomes.items() if e is not None}
        if errors:
            raise RuntimeError(f"rollback failed on shards {errors}")

    def health(self) -> Tuple[int, int]:
        stats = self.gateway.stats()
        completed = int(stats.counters.get("ok", 0)) + int(
            stats.counters.get("fallback", 0)
        )
        return completed, int(stats.counters.get("fallback", 0))

    def prune(self, keep_last: int, keep: Tuple[str, ...]) -> List[str]:
        # Worker registries are pruned on their own; nothing to do here
        # beyond dropping network references the controller holds.
        keep_set = set(keep) | {self.gateway.model_version}
        order = list(self._networks)
        victims = [v for v in order[:-keep_last or None] if v not in keep_set]
        for v in victims:
            del self._networks[v]
        return victims


def registry_health_sampler(prefix: str = "repro_serving") -> HealthSampler:
    """Health from the metric registry instead of live counter objects.

    Reads the ``{prefix}_requests_total`` family and treats the
    ``status="fallback"`` series as guard trips — useful when the
    controller runs beside a serving process it cannot reach directly
    but shares a metric registry with.
    """

    def sample() -> Tuple[int, int]:
        registry = get_registry()
        ok = registry.get_value(
            f"{prefix}_requests_total", labels={"status": "ok"}
        )
        fallback = registry.get_value(
            f"{prefix}_requests_total", labels={"status": "fallback"}
        )
        ok = int(ok or 0)
        fallback = int(fallback or 0)
        return ok + fallback, fallback

    return sample


class LearningController:
    """Runs the ingest → train → gate → promote → watch loop."""

    def __init__(
        self,
        serving,
        trainer: OnlineTrainer,
        gate: EvaluationGate,
        *,
        version_prefix: str = "online",
        rollback_threshold: float = 0.5,
        rollback_min_requests: int = 4,
        prune_keep_last: int = 4,
        health_sampler: Optional[HealthSampler] = None,
    ):
        from ..serving.gateway import ShardedGateway

        self.trainer = trainer
        self.gate = gate
        if isinstance(serving, ShardedGateway):
            self.adapter = _GatewayAdapter(serving, trainer.base_network)
        else:
            self.adapter = _ServiceAdapter(serving)
        self.version_prefix = version_prefix
        #: Roll back when guard trips / completed requests since promotion
        #: exceeds this fraction (once ``rollback_min_requests`` completed).
        self.rollback_threshold = rollback_threshold
        self.rollback_min_requests = rollback_min_requests
        self.prune_keep_last = prune_keep_last
        self._health_sampler: HealthSampler = (
            health_sampler if health_sampler is not None else self.adapter.health
        )
        self._candidate_counter = 0
        #: (previous_version, health baseline at promotion) — set while a
        #: promotion is being watched; cleared by rollback.
        self._watch: Optional[Tuple[str, Tuple[int, int]]] = None
        self.promotions = 0
        self.rollbacks = 0
        self.history: List[CycleReport] = []
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- one cycle -----------------------------------------------------------
    def run_cycle(self, *, train_updates: Optional[int] = None) -> CycleReport:
        """Ingest → train → candidate → gate → maybe promote."""
        ingested = self.trainer.ingest()
        losses = self.trainer.train(train_updates)
        report = CycleReport(ingested=ingested, train_updates=len(losses))
        if not losses and not ingested:
            report.details["skipped"] = "no new experience and no updates run"
            self.history.append(report)
            return report
        if not losses:
            report.details["skipped"] = (
                f"buffer below minimum ({len(self.trainer.memory)} rows)"
            )
            self.history.append(report)
            return report
        candidate = self.trainer.make_candidate()
        self._candidate_counter += 1
        version = f"{self.version_prefix}-{self._candidate_counter}"
        report.candidate_version = version
        report.verdict, report.promoted = self.consider(candidate, version)
        self.history.append(report)
        return report

    def consider(
        self, candidate: QNetwork, version: str
    ) -> Tuple[GateVerdict, bool]:
        """Gate ``candidate`` and promote it if it wins.

        The incumbent is re-read *after* evaluation: if it changed while
        the gate ran (a rollback fired, or another promotion landed) the
        verdict no longer compares against reality and the candidate is
        discarded as stale rather than promoted over the wrong baseline.
        """
        incumbent_version = self.adapter.incumbent_version()
        verdict = self.gate.evaluate(candidate, self.adapter.incumbent_network())
        if not verdict.passed:
            return verdict, False
        if self.adapter.incumbent_version() != incumbent_version:
            verdict.passed = False
            verdict.reasons.append(
                f"stale_incumbent: incumbent changed from "
                f"{incumbent_version!r} to "
                f"{self.adapter.incumbent_version()!r} during evaluation"
            )
            return verdict, False
        self.promote(candidate, version, previous=incumbent_version)
        return verdict, True

    # -- promotion / rollback ------------------------------------------------
    def promote(
        self, network: QNetwork, version: str, *, previous: str
    ) -> None:
        metadata = self.trainer.candidate_metadata()
        metadata["promoted_over"] = previous
        self.adapter.promote(network, version, metadata)
        self._watch = (previous, self._health_sampler())
        self.promotions += 1
        self.adapter.prune(
            self.prune_keep_last, keep=(previous, version)
        )
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "repro_learning_promotions_total",
                "candidate models promoted to serving",
            ).inc()

    def check_rollback(self) -> bool:
        """Roll back if post-promotion guard-trip rate breached the bar."""
        if self._watch is None:
            return False
        previous, (base_completed, base_bad) = self._watch
        completed, bad = self._health_sampler()
        d_completed = completed - base_completed
        d_bad = bad - base_bad
        if d_completed < self.rollback_min_requests:
            return False
        rate = d_bad / d_completed
        registry = get_registry()
        if registry.enabled:
            registry.gauge(
                "repro_learning_post_promotion_fallback_rate",
                "guard-trip rate observed since the last promotion",
            ).set(rate)
        if rate <= self.rollback_threshold:
            return False
        self.rollback(previous, rate=rate)
        return True

    def rollback(self, version: str, *, rate: Optional[float] = None) -> None:
        """Re-activate ``version`` and stop watching the failed promotion."""
        self.adapter.activate(version)
        self._watch = None
        self.rollbacks += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "repro_learning_rollbacks_total",
                "automatic rollbacks after a bad promotion",
            ).inc()

    # -- background loop -----------------------------------------------------
    def start(self, interval_s: float = 1.0) -> None:
        """Run cycles on a daemon thread until :meth:`stop`."""
        if self._thread is not None:
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.is_set():
                try:
                    self.run_cycle()
                    self.check_rollback()
                except Exception:
                    # The loop must outlive one bad cycle; the next one
                    # starts from clean state.
                    pass
                self._stop.wait(interval_s)

        self._thread = threading.Thread(
            target=loop, name="learning-controller", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout)
        self._thread = None
