"""Promotion gate for online-trained candidate models.

A candidate earns promotion only by clearing two independent bars:

1. **Holdout**: greedy rollouts over a fixed holdout suite must score no
   worse than the incumbent on both objectives — mean size reduction and
   mean throughput gain, each within a configurable tolerance (in
   percentage points). The suite never changes between evaluations, so
   scores are directly comparable and fully deterministic.
2. **Fuzz canary**: the candidate's own pass sequences, rolled out on
   seeded fuzz programs, are checked against the reference interpreter
   via :class:`~repro.testing.DifferentialOracle`. Any miscompile,
   verifier error, crash or hang is an immediate rejection — a model
   that triggers the serving guard is worse than one that scores lower.

Both halves share one :class:`~repro.core.metrics.MetricsEngine` per
gate, so the incumbent's rollouts warm the transition cache for every
future candidate evaluated against the same suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.environment import (
    DEFAULT_EPISODE_LENGTH,
    PhaseOrderingEnv,
    make_action_space,
)
from ..core.metrics import MetricsEngine
from ..ir.module import Module
from ..observability import get_registry
from ..rl.network import QNetwork
from ..testing import DifferentialOracle, FuzzProfile, generate_fuzz_program

DEFAULT_CANARY_SEEDS: Tuple[int, ...] = (1801, 1802, 1803)


def constant_action_network(template: QNetwork, action: int) -> QNetwork:
    """A network whose greedy action is always ``action``.

    All weights are zero except the head bias of the chosen action, so
    every forward yields the same argmax regardless of the state.
    """
    net = QNetwork(
        template.state_dim,
        template.num_actions,
        template.hidden,
        template.learning_rate,
    )
    weights = [np.zeros_like(w) for w in net.get_weights()]
    weights[-1][action] = 1.0
    net.set_weights(weights)
    return net


@dataclass
class HoldoutScore:
    """Mean greedy-rollout score of one network over the holdout suite."""

    size_reduction_pct: float
    throughput_gain_pct: float
    per_module: List[Dict[str, float]] = field(default_factory=list)


@dataclass
class GateVerdict:
    """Outcome of one candidate evaluation."""

    passed: bool
    reasons: List[str] = field(default_factory=list)
    candidate: Optional[HoldoutScore] = None
    incumbent: Optional[HoldoutScore] = None
    canary_checks: int = 0
    canary_failures: int = 0
    details: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "passed": self.passed,
            "reasons": list(self.reasons),
            "canary_checks": self.canary_checks,
            "canary_failures": self.canary_failures,
        }
        if self.candidate is not None:
            out["candidate_size_reduction_pct"] = self.candidate.size_reduction_pct
            out["candidate_throughput_gain_pct"] = (
                self.candidate.throughput_gain_pct
            )
        if self.incumbent is not None:
            out["incumbent_size_reduction_pct"] = self.incumbent.size_reduction_pct
            out["incumbent_throughput_gain_pct"] = (
                self.incumbent.throughput_gain_pct
            )
        out.update(self.details)
        return out


class EvaluationGate:
    """No-worse-than-incumbent holdout check + differential fuzz canary."""

    def __init__(
        self,
        holdout: Sequence[Module],
        *,
        target: str = "x86-64",
        action_space: str = "odg",
        episode_length: int = DEFAULT_EPISODE_LENGTH,
        size_tolerance_pct: float = 0.0,
        throughput_tolerance_pct: float = 0.0,
        canary_seeds: Sequence[int] = DEFAULT_CANARY_SEEDS,
        canary_segments: int = 3,
    ):
        if not holdout:
            raise ValueError("holdout suite must not be empty")
        self.holdout = list(holdout)
        self.target = target
        self.action_space_kind = action_space
        self.space = make_action_space(action_space)
        self.episode_length = episode_length
        self.size_tolerance_pct = size_tolerance_pct
        self.throughput_tolerance_pct = throughput_tolerance_pct
        self.canary_seeds = tuple(canary_seeds)
        self.canary_segments = canary_segments
        # One engine for every rollout the gate ever runs: the incumbent's
        # trajectories warm the transition cache for all later candidates.
        self.engine = MetricsEngine(target=target)
        self._oracle = DifferentialOracle()

    # -- rollouts ------------------------------------------------------------
    def _rollout(
        self, network: QNetwork, module: Module
    ) -> Tuple[List[int], Dict[str, float]]:
        env = PhaseOrderingEnv(
            module,
            action_space=self.space,
            target=self.target,
            episode_length=self.episode_length,
            metrics=self.engine,
        )
        state = env.reset()
        actions: List[int] = []
        for _ in range(self.episode_length):
            q = network.predict(np.atleast_2d(np.asarray(state, dtype=np.float64)))
            action = int(q.argmax(axis=1)[0])
            actions.append(action)
            state, _, done, _ = env.step(action)
            if done:
                break
        score = {
            "size_reduction_pct": 100.0
            * (env.base_size - env.last_size)
            / env.base_size,
            "throughput_gain_pct": 100.0
            * (env.last_throughput - env.base_throughput)
            / env.base_throughput,
        }
        return actions, score

    def holdout_score(self, network: QNetwork) -> HoldoutScore:
        """Mean greedy-rollout score of ``network`` over the holdout suite."""
        per_module: List[Dict[str, float]] = []
        for module in self.holdout:
            _, score = self._rollout(network, module)
            per_module.append(score)
        return HoldoutScore(
            size_reduction_pct=float(
                np.mean([s["size_reduction_pct"] for s in per_module])
            ),
            throughput_gain_pct=float(
                np.mean([s["throughput_gain_pct"] for s in per_module])
            ),
            per_module=per_module,
        )

    # -- fuzz canary ---------------------------------------------------------
    def canary(self, network: QNetwork) -> Tuple[int, int, List[str]]:
        """Differential-check the network's sequences on fuzz programs.

        Returns ``(checks, failures, failure_details)``. The pass list
        checked is exactly what the candidate would emit in serving: the
        concatenated sub-sequences of its greedy rollout on each program.
        """
        checks = 0
        failures = 0
        details: List[str] = []
        for seed in self.canary_seeds:
            profile = FuzzProfile(
                name=f"canary-{seed}", seed=seed, segments=self.canary_segments
            )
            module = generate_fuzz_program(profile)
            actions, _ = self._rollout(network, module)
            passes: List[str] = []
            for action in actions:
                passes.extend(self.space.passes_for(action))
            result = self._oracle.check(module, passes)
            checks += 1
            if result.is_failure:
                failures += 1
                details.append(f"seed {seed}: {result.kind} ({result.detail})")
        return checks, failures, details

    # -- the gate ------------------------------------------------------------
    def evaluate(
        self, candidate: QNetwork, incumbent: QNetwork
    ) -> GateVerdict:
        """Full gate: holdout no-worse-than-incumbent AND clean canary."""
        reasons: List[str] = []
        if candidate.num_actions != len(self.space):
            verdict = GateVerdict(
                passed=False,
                reasons=[
                    f"shape_mismatch: candidate has {candidate.num_actions} "
                    f"actions, gate space {self.action_space_kind!r} has "
                    f"{len(self.space)}"
                ],
            )
            self._publish(verdict)
            return verdict
        cand_score = self.holdout_score(candidate)
        inc_score = self.holdout_score(incumbent)
        if (
            cand_score.size_reduction_pct
            < inc_score.size_reduction_pct - self.size_tolerance_pct
        ):
            reasons.append(
                "holdout_size_regression: "
                f"{cand_score.size_reduction_pct:.3f}% vs incumbent "
                f"{inc_score.size_reduction_pct:.3f}%"
            )
        if (
            cand_score.throughput_gain_pct
            < inc_score.throughput_gain_pct - self.throughput_tolerance_pct
        ):
            reasons.append(
                "holdout_throughput_regression: "
                f"{cand_score.throughput_gain_pct:.3f}% vs incumbent "
                f"{inc_score.throughput_gain_pct:.3f}%"
            )
        checks, canary_failures, canary_details = self.canary(candidate)
        if canary_failures:
            reasons.append(
                f"canary_failure: {canary_failures}/{checks} fuzz programs "
                f"misbehaved ({'; '.join(canary_details)})"
            )
        verdict = GateVerdict(
            passed=not reasons,
            reasons=reasons,
            candidate=cand_score,
            incumbent=inc_score,
            canary_checks=checks,
            canary_failures=canary_failures,
        )
        self._publish(verdict)
        return verdict

    def evaluate_checkpoint(
        self, path: str, incumbent: QNetwork
    ) -> GateVerdict:
        """Gate a candidate straight from its ``.npz`` checkpoint file.

        A checkpoint that fails to load (corrupted, truncated, wrong
        format) is rejected with a ``load_error`` reason rather than
        raising — a broken artifact must never take down the controller.
        """
        try:
            candidate = QNetwork.load(path)
        except Exception as exc:
            verdict = GateVerdict(
                passed=False,
                reasons=[f"load_error: {type(exc).__name__}: {exc}"],
                details={"checkpoint": path},
            )
            self._publish(verdict)
            return verdict
        return self.evaluate(candidate, incumbent)

    def worst_constant_candidate(
        self, template: QNetwork
    ) -> Tuple[QNetwork, int]:
        """The constant-action policy scoring worst on the holdout.

        Deterministic given the holdout suite: used to *inject* a known
        holdout regression and prove the gate rejects it (tests, the
        ``--inject-regression`` CLI path and the CI smoke job).
        ``template`` supplies the network shape (e.g. the incumbent).
        """
        worst: Optional[Tuple[float, int, QNetwork]] = None
        for action in range(len(self.space)):
            net = constant_action_network(template, action)
            score = self.holdout_score(net)
            key = score.size_reduction_pct + score.throughput_gain_pct
            if worst is None or key < worst[0]:
                worst = (key, action, net)
        assert worst is not None
        return worst[2], worst[1]

    def _publish(self, verdict: GateVerdict) -> None:
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "repro_learning_gate_verdicts_total",
                "promotion gate verdicts",
                labels={"verdict": "pass" if verdict.passed else "fail"},
            ).inc()
