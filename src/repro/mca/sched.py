"""Static block scheduling: cycles-per-execution estimates.

For each basic block three bounds are computed, exactly the quantities
llvm-mca's summary is driven by:

* dispatch bound — uops / dispatch width;
* resource bound — the most contended port group;
* latency bound — the critical dependence path through the block,
  including the loop-carried recurrence through header phis.

The block estimate is their maximum. Function/module totals weight block
estimates with static block frequencies (loop depth and branch hints).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from ..analysis.blockfreq import BlockFrequency
from ..analysis.loops import LoopInfo
from ..caching import LRUCache
from ..ir.fingerprint import function_fingerprint
from ..ir.flat import FlatFunction, throughput_row
from ..ir.instructions import Call, Instruction, Phi
from ..ir.module import BasicBlock, Function, Module
from ..codegen.isel import lower_instruction
from ..codegen.target import TargetDescriptor, get_target
from ..ir.instructions import Branch, Switch
from .ports import PortModel, get_port_model

#: Amortized misprediction cost per conditional-control transfer. This is
#: what makes flattening (if-conversion, unswitching) profitable in the
#: model, as it is on hardware.
COND_BRANCH_OVERHEAD = 2.0


@dataclass
class BlockReport:
    name: str
    uops: int
    dispatch_bound: float
    resource_bound: float
    latency_bound: float
    frequency: float
    branch_overhead: float = 0.0

    @property
    def cycles(self) -> float:
        bound = max(
            self.dispatch_bound, self.resource_bound, self.latency_bound, 0.25
        )
        return bound + self.branch_overhead


def _instruction_latency(
    inst: Instruction, ops: List[str], model: PortModel
) -> float:
    if not ops:
        return 0.0
    # The instruction's result latency is its longest component op.
    return max(model.latency_of(op) for op in ops)


def analyze_block(
    block: BasicBlock,
    target: TargetDescriptor,
    model: PortModel,
    frequency: float = 1.0,
) -> BlockReport:
    op_counts: Dict[str, int] = {}
    uops = 0
    finish: Dict[int, float] = {}
    critical = 0.0
    recurrence = 0.0

    lowered: Dict[int, List[str]] = {}
    for inst in block.instructions:
        ops = lower_instruction(inst, target)
        lowered[id(inst)] = ops
        uops += len(ops)
        for op in ops:
            op_counts[op] = op_counts.get(op, 0) + 1

    for inst in block.instructions:
        if isinstance(inst, Phi):
            finish[id(inst)] = 0.0
            continue
        ready = 0.0
        for op in inst.operands:
            if isinstance(op, Instruction) and id(op) in finish:
                ready = max(ready, finish[id(op)])
        lat = _instruction_latency(inst, lowered[id(inst)], model)
        done = ready + lat
        finish[id(inst)] = done
        critical = max(critical, done)

    # Loop-carried recurrence: value feeding a phi of this block from this
    # block (single-block loop bodies) bounds iteration throughput.
    for phi in block.phis():
        for value, pred in phi.incoming():
            if pred is block and isinstance(value, Instruction):
                recurrence = max(recurrence, finish.get(id(value), 0.0))

    # The latency bound models the loop-carried recurrence (the quantity
    # that actually limits iteration throughput); for straight-line code
    # executed once, out-of-order execution hides in-block chains, and a
    # small fraction of the critical path stands in for imperfect overlap.
    term = block.terminator
    overhead = 0.0
    if isinstance(term, Branch) and term.is_conditional:
        overhead = COND_BRANCH_OVERHEAD
    elif isinstance(term, Switch):
        overhead = COND_BRANCH_OVERHEAD * max(1, term.num_cases)

    return BlockReport(
        name=block.name,
        uops=uops,
        dispatch_bound=uops / model.dispatch_width,
        resource_bound=model.pressure_of(op_counts),
        latency_bound=max(critical / 4.0, recurrence),
        frequency=frequency,
        branch_overhead=overhead,
    )


@dataclass
class FunctionReport:
    name: str
    cycles_per_invocation: float
    uops_per_invocation: float
    blocks: List[BlockReport] = field(default_factory=list)


def analyze_function(
    fn: Function, target: TargetDescriptor, model: PortModel
) -> FunctionReport:
    freq = BlockFrequency(fn)
    blocks = [
        analyze_block(b, target, model, freq.frequency(b)) for b in fn.blocks
    ]
    cycles = sum(b.cycles * b.frequency for b in blocks)
    uops = sum(b.uops * b.frequency for b in blocks)
    return FunctionReport(fn.name, cycles, uops, blocks)


def _segment_max(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment max over a CSR layout; empty segments yield 0.0.

    ``np.maximum.reduceat`` mishandles empty segments (it returns the
    element *at* the start index), so reduce only over the non-empty
    starts — dropping an empty segment's (duplicate) start keeps the
    remaining starts strictly increasing, which is exactly the layout
    reduceat folds correctly.
    """
    n = len(offsets) - 1
    out = np.zeros(n)
    sizes = np.diff(offsets)
    nonempty = sizes > 0
    if nonempty.any():
        out[nonempty] = np.maximum.reduceat(values, offsets[:-1][nonempty])
    return out


def flat_analyze_function(ff: FlatFunction, model: PortModel) -> FunctionReport:
    """:func:`analyze_function` over a flat view, all blocks at once.

    Dispatch and resource bounds are row reductions. The latency chain
    runs as a *wavefront*: instructions grouped by position within their
    block — every dependence points at a smaller position, so one pass
    over positions finalizes all blocks' finish times together in
    dependency order. Bit-identical to the scalar loop: same division
    (not reciprocal-multiply), same max-fold over the same operands, and
    the frequency-weighted totals use Python's left-fold ``sum`` over the
    per-block products, exactly as the object path folds them.
    """
    dispatch = ff.block_uops / model.dispatch_width
    resource = (
        (ff.block_mop_counts / throughput_row(model)).max(axis=1)
        if ff.n_blocks
        else np.zeros(0)
    )

    finish = np.zeros(ff.n_inst)  # phis stay at 0.0
    lat = ff.inst_latency
    deps = ff.wave_deps
    dep_off = ff.wave_dep_offsets
    for w in range(len(ff.wave_offsets) - 1):
        w0, w1 = ff.wave_offsets[w], ff.wave_offsets[w + 1]
        if w0 == w1:
            continue
        idx = ff.wave_insts[w0:w1]
        s0, s1 = dep_off[w0], dep_off[w1]
        ready = _segment_max(finish[deps[s0:s1]], dep_off[w0 : w1 + 1] - s0)
        finish[idx] = ready + lat[idx]

    critical = _segment_max(finish, ff.block_offsets)
    recurrence = _segment_max(finish[ff.rec_idx], ff.rec_offsets)
    latency_bound = np.maximum(critical / 4.0, recurrence)

    bound = np.maximum(
        np.maximum(dispatch, resource), np.maximum(latency_bound, 0.25)
    )
    cycles = float(sum(((bound + ff.overheads) * ff.freqs).tolist()))
    uops = float(sum((ff.block_uops * ff.freqs).tolist()))

    blocks = [
        BlockReport(
            name=ff.block_names[bi],
            uops=int(ff.block_uops[bi]),
            dispatch_bound=float(dispatch[bi]),
            resource_bound=float(resource[bi]),
            latency_bound=float(latency_bound[bi]),
            frequency=float(ff.freqs[bi]),
            branch_overhead=float(ff.overheads[bi]),
        )
        for bi in range(ff.n_blocks)
    ]
    return FunctionReport(ff.name, cycles, uops, blocks)


def flat_call_counts(ff: FlatFunction) -> Dict[str, float]:
    """:func:`_function_call_counts` from the flat view's recorded call
    edges (same instruction order, same left-fold accumulation)."""
    counts: Dict[str, float] = {}
    for callee, f in ff.call_edges:
        counts[callee] = counts.get(callee, 0.0) + f
    return counts


#: Cycle cost charged for calling an unknown external function.
EXTERNAL_CALL_CYCLES = 20.0
#: Frequency cap to keep recursive call graphs bounded.
MAX_CALL_FREQ = 1e6


@dataclass
class McaSummary:
    """Whole-module static performance estimate."""

    target: str
    total_cycles: float
    total_uops: float
    functions: List[FunctionReport]

    @property
    def ipc(self) -> float:
        return self.total_uops / self.total_cycles if self.total_cycles else 0.0

    @property
    def throughput(self) -> float:
        """The runtime proxy used by the POSET-RL reward: simulated program
        executions per 1e9 cycles. Monotonically higher = faster."""
        return 1e9 / max(self.total_cycles, 1e-9)


def _function_call_counts(fn: Function) -> Dict[str, float]:
    """Frequency-weighted direct-call counts out of one function."""
    freq = BlockFrequency(fn)
    counts: Dict[str, float] = {}
    for inst in fn.instructions():
        if isinstance(inst, Call):
            callee = inst.called_function
            if callee is None or callee.is_intrinsic:
                continue
            f = freq.frequency(inst.parent) if inst.parent else 1.0
            counts[callee.name] = counts.get(callee.name, 0.0) + f
    return counts


def estimate_throughput(
    module: Module,
    target="x86-64",
    cache: Optional[LRUCache] = None,
    fingerprints: Optional[Mapping[str, str]] = None,
    flat=None,
) -> McaSummary:
    """LLVM-MCA stand-in: static cycles/throughput for the whole module.

    With ``cache``, the per-function scheduling report and outgoing-call
    counts are memoized on the function's structural fingerprint; only the
    (cheap) interprocedural invocation fixed point is recombined per call.

    ``fingerprints`` (name → digest) supplies fingerprints already computed
    this step so each function is hashed at most once. ``flat`` (a
    :class:`~repro.ir.flat.FlatCore` for the same target) schedules
    functions through the batched wavefront kernel instead of the
    per-instruction loop.
    """
    if isinstance(target, str):
        descriptor = get_target(target)
        model = get_port_model(target)
    else:  # pragma: no cover - convenience
        descriptor = target
        model = get_port_model(target.name)
    if flat is not None and flat.descriptor.name != descriptor.name:
        flat = None

    reports: Dict[str, FunctionReport] = {}
    call_counts: Dict[str, Dict[str, float]] = {}
    for fn in module.functions:
        if fn.is_declaration:
            continue
        if cache is not None or flat is not None:
            fp = fingerprints.get(fn.name) if fingerprints is not None else None
            if fp is None:
                fp = function_fingerprint(fn)
        if cache is not None:
            key = (fp, descriptor.name)
            entry = cache.get(key)
            if entry is None:
                if flat is not None:
                    ff = flat.get(fn, fp)
                    entry = (flat_analyze_function(ff, model), flat_call_counts(ff))
                else:
                    entry = (
                        analyze_function(fn, descriptor, model),
                        _function_call_counts(fn),
                    )
                cache.put(key, entry)
            reports[fn.name], call_counts[fn.name] = entry
        elif flat is not None:
            ff = flat.get(fn, fp)
            reports[fn.name] = flat_analyze_function(ff, model)
            call_counts[fn.name] = flat_call_counts(ff)
        else:
            reports[fn.name] = analyze_function(fn, descriptor, model)
            call_counts[fn.name] = _function_call_counts(fn)

    # Invocation frequencies: externally visible functions are entry points
    # invoked once; internal functions accumulate caller frequency.
    # Iterate a few rounds to settle call chains (cap guards recursion).
    base_invocations: Dict[str, float] = {
        name: (0.0 if module.get_function(name).is_internal else 1.0)  # type: ignore[union-attr]
        for name in reports
    }
    invocations = dict(base_invocations)
    for _ in range(8):
        fresh = dict(base_invocations)
        for caller, counts in call_counts.items():
            caller_freq = invocations.get(caller, 0.0)
            for callee, count in counts.items():
                if callee in fresh:
                    fresh[callee] = min(
                        fresh[callee] + caller_freq * count, MAX_CALL_FREQ
                    )
        if all(
            abs(fresh[name] - invocations[name]) <= 1e-6 for name in fresh
        ):
            invocations = fresh
            break
        invocations = fresh

    total_cycles = 0.0
    total_uops = 0.0
    for name, report in reports.items():
        weight = max(invocations.get(name, 0.0), 0.0)
        if weight == 0.0:
            continue
        total_cycles += weight * report.cycles_per_invocation
        total_uops += weight * report.uops_per_invocation

    # Unknown externals: charge a flat call-out cost.
    for fn in module.functions:
        if fn.is_declaration and not fn.is_intrinsic and fn.has_uses:
            total_cycles += EXTERNAL_CALL_CYCLES

    total_cycles = max(total_cycles, 1.0)
    return McaSummary(
        target=descriptor.name,
        total_cycles=total_cycles,
        total_uops=total_uops,
        functions=list(reports.values()),
    )
