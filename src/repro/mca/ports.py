"""Microarchitectural models for the MCA-style throughput estimator.

Per machine-op class: latency (cycles until the result is usable) and
per-cycle issue throughput (how many such ops the port group sustains).
Numbers are Skylake-ish for x86-64 and Cortex-A72-ish for AArch64 — the
paper evaluates on Xeon (x86) and Cortex-A72 (AArch64).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class PortModel:
    """Issue-width, latency and throughput tables for one core model."""

    name: str
    dispatch_width: int
    latency: Dict[str, float]
    throughput: Dict[str, float]  # ops issuable per cycle per class

    def latency_of(self, op: str) -> float:
        return self.latency.get(op, 1.0)

    def pressure_of(self, op_counts: Dict[str, int]) -> float:
        """Cycles implied by the most contended port group."""
        worst = 0.0
        for op, count in op_counts.items():
            tp = self.throughput.get(op, 2.0)
            worst = max(worst, count / tp)
        return worst


SKYLAKE = PortModel(
    name="x86-64-skylake",
    dispatch_width=4,
    latency={
        "alu": 1, "imul": 3, "idiv": 26, "lea": 1,
        "load": 5, "store": 1,
        "fpalu": 4, "fpmul": 4, "fpdiv": 14,
        "valu": 1, "vfp": 4, "vload": 6, "vstore": 1,
        "mov": 1, "movimm": 1,
        "branch": 1, "call": 2, "cmov": 1, "ret": 1, "trap": 1,
    },
    throughput={
        "alu": 4, "imul": 1, "idiv": 0.16, "lea": 2,
        "load": 2, "store": 1,
        "fpalu": 2, "fpmul": 2, "fpdiv": 0.25,
        "valu": 3, "vfp": 2, "vload": 2, "vstore": 1,
        "mov": 4, "movimm": 4,
        "branch": 1, "call": 1, "cmov": 2, "ret": 1, "trap": 1,
    },
)

CORTEX_A72 = PortModel(
    name="aarch64-cortex-a72",
    dispatch_width=3,
    latency={
        "alu": 1, "imul": 4, "idiv": 20, "lea": 1,
        "load": 4, "store": 1,
        "fpalu": 4, "fpmul": 4, "fpdiv": 17,
        "valu": 3, "vfp": 4, "vload": 5, "vstore": 1,
        "mov": 1, "movimm": 1,
        "branch": 1, "call": 2, "cmov": 1, "ret": 1, "trap": 1,
    },
    throughput={
        "alu": 2, "imul": 1, "idiv": 0.08, "lea": 2,
        "load": 2, "store": 1,
        "fpalu": 2, "fpmul": 2, "fpdiv": 0.1,
        "valu": 2, "vfp": 2, "vload": 1, "vstore": 1,
        "mov": 3, "movimm": 3,
        "branch": 1, "call": 1, "cmov": 1, "ret": 1, "trap": 1,
    },
)

PORT_MODELS: Dict[str, PortModel] = {
    "x86-64": SKYLAKE,
    "x86": SKYLAKE,
    "aarch64": CORTEX_A72,
    "arm64": CORTEX_A72,
}


def get_port_model(name: str) -> PortModel:
    try:
        return PORT_MODELS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown core model {name!r}; available: {sorted(set(PORT_MODELS))}"
        ) from None
