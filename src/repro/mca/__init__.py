"""MCA-style static throughput estimation (the LLVM-MCA substitute)."""

from .ports import CORTEX_A72, PORT_MODELS, PortModel, SKYLAKE, get_port_model
from .sched import (
    BlockReport,
    FunctionReport,
    McaSummary,
    analyze_block,
    analyze_function,
    estimate_throughput,
)

__all__ = [
    "BlockReport",
    "CORTEX_A72",
    "FunctionReport",
    "McaSummary",
    "PORT_MODELS",
    "PortModel",
    "SKYLAKE",
    "analyze_block",
    "analyze_function",
    "estimate_throughput",
    "get_port_model",
]
