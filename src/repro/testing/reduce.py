"""Delta-debugging reducer for failing (module, pass-sequence) pairs.

Shrinks along two axes, llvm-reduce style:

* **pass sequence** — classic ddmin over the pass list: drop halves,
  then quarters, … then single passes, keeping any candidate that still
  reproduces the failure;
* **module** — structural transformations applied to clones of the
  current best module, each kept only if (a) the candidate still passes
  the structural verifier (garbage in must not masquerade as a pass bug)
  and (b) the failure still reproduces:

  - delete never-called helper functions and unused globals,
  - replace conditional branches/switches with unconditional branches
    (then prune newly unreachable blocks and phi edges),
  - delete instructions in shrinking chunks, rewriting uses of a deleted
    value to a zero constant of its type.

The predicate is typically ``lambda m, p: oracle.check(m, p).kind ==
original_kind`` — a candidate whose *baseline* breaks (e.g. a load
through a zeroed pointer now traps) makes the oracle return ``skip``,
which the predicate rejects, so reduction can never wander off the
original failure.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..ir.instructions import Branch, Instruction, Phi, Switch
from ..ir.module import BasicBlock, Function, Module
from ..ir.types import FloatType, IntType, PointerType, Type, VectorType
from ..ir.values import (
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantVector,
    UndefValue,
    Value,
)
from ..ir.verifier import verify_module

Predicate = Callable[[Module, List[str]], bool]


def zero_value(ty: Type) -> Value:
    """A harmless constant of ``ty`` to stand in for a deleted value."""
    if isinstance(ty, IntType):
        return ConstantInt(ty, 0)
    if isinstance(ty, FloatType):
        return ConstantFloat(ty, 0.0)
    if isinstance(ty, PointerType):
        return ConstantNull(ty)
    if isinstance(ty, VectorType):
        return ConstantVector(ty, [zero_value(ty.element)] * ty.count)
    return UndefValue(ty)


def ddmin_passes(
    passes: Sequence[str], interesting: Callable[[List[str]], bool],
) -> List[str]:
    """Minimal sub-list of ``passes`` that stays interesting (ddmin)."""
    current = list(passes)
    chunk = max(1, len(current) // 2)
    while chunk >= 1:
        shrunk = True
        while shrunk and len(current) > 1:
            shrunk = False
            i = 0
            while i < len(current):
                candidate = current[:i] + current[i + chunk:]
                if candidate and interesting(candidate):
                    current = candidate
                    shrunk = True
                else:
                    i += chunk
        if chunk == 1:
            break
        chunk = max(1, chunk // 2)
    return current


class Reducer:
    """Shrinks a failing (module, passes) pair to a minimal repro."""

    def __init__(
        self,
        predicate: Predicate,
        max_checks: int = 3000,
        max_rounds: int = 12,
    ):
        self.predicate = predicate
        self.max_checks = max_checks
        self.max_rounds = max_rounds
        self.checks = 0

    # -- bookkeeping --------------------------------------------------------
    def _interesting(self, module: Module, passes: List[str]) -> bool:
        if self.checks >= self.max_checks:
            return False
        self.checks += 1
        return self.predicate(module, passes)

    def _try(self, module: Module, passes: List[str],
             transform: Callable[[Module], bool]) -> Optional[Module]:
        """Apply ``transform`` to a clone; return it if still interesting."""
        if self.checks >= self.max_checks:
            return None  # don't pay for clones the budget can't evaluate
        candidate = module.clone()
        try:
            if not transform(candidate):
                return None
            verify_module(candidate)
        except Exception:
            return None
        if self._interesting(candidate, passes):
            return candidate
        return None

    # -- entry point --------------------------------------------------------
    def reduce(
        self, module: Module, passes: Sequence[str],
    ) -> Tuple[Module, List[str]]:
        """Return the reduced (module, passes); inputs are not mutated."""
        passes = list(passes)
        if not self._interesting(module, passes):
            raise ValueError(
                "the (module, passes) pair does not reproduce the failure"
            )
        passes = ddmin_passes(
            passes, lambda ps: self._interesting(module, list(ps))
        )
        best = module.clone()
        for _ in range(self.max_rounds):
            before = best.instruction_count
            best = self._reduce_module_round(best, passes)
            if best.instruction_count >= before or self.checks >= self.max_checks:
                break
        # The smaller module may need even fewer passes.
        final_best = best
        passes = ddmin_passes(
            passes, lambda ps: self._interesting(final_best, list(ps))
        )
        normalize_names(best)
        if not self.predicate(best, passes):  # renaming must be a no-op
            raise AssertionError("renaming changed reproduction behaviour")
        return best, passes

    # -- one round of module shrinking --------------------------------------
    def _reduce_module_round(self, module: Module, passes: List[str]) -> Module:
        for step in (
            self._drop_dead_symbols,
            self._simplify_terminators,
            self._delete_instructions,
            self._merge_chains,
        ):
            module = step(module, passes)
            if self.checks >= self.max_checks:
                break
        return module

    # -- straight-line cleanup ----------------------------------------------
    def _merge_chains(self, module: Module, passes: List[str]) -> Module:
        """Collapse br-only chains left behind by instruction deletion."""
        candidate = self._try(module, passes, _merge_chain_blocks)
        return candidate if candidate is not None else module

    # -- symbol-level -------------------------------------------------------
    def _drop_dead_symbols(self, module: Module, passes: List[str]) -> Module:
        changed = True
        while changed and self.checks < self.max_checks:
            changed = False
            for fn in list(module.functions):
                if fn.name == "entry" or fn.has_uses:
                    continue
                name = fn.name
                candidate = self._try(
                    module, passes, lambda m: _remove_function(m, name)
                )
                if candidate is not None:
                    module = candidate
                    changed = True
            for gv in list(module.globals):
                if gv.has_uses:
                    continue
                name = gv.name
                candidate = self._try(
                    module, passes, lambda m: _remove_global(m, name)
                )
                if candidate is not None:
                    module = candidate
                    changed = True
        return module

    # -- CFG-level ----------------------------------------------------------
    def _simplify_terminators(self, module: Module, passes: List[str]) -> Module:
        for f_idx, fn in enumerate(module.functions):
            if fn.is_declaration:
                continue
            b_idx = 0
            while b_idx < len(fn.blocks):
                term = fn.blocks[b_idx].terminator
                variants: List[int] = []
                if isinstance(term, Branch) and term.is_conditional:
                    variants = [0, 1]
                elif isinstance(term, Switch):
                    variants = list(range(len(term.targets)))
                for which in variants:
                    candidate = self._try(
                        module, passes,
                        lambda m: _force_terminator(m, f_idx, b_idx, which),
                    )
                    if candidate is not None:
                        module = candidate
                        fn = module.functions[f_idx]
                        break
                b_idx += 1
            if self.checks >= self.max_checks:
                break
        return module

    # -- instruction-level --------------------------------------------------
    def _delete_instructions(self, module: Module, passes: List[str]) -> Module:
        progress = True
        while progress and self.checks < self.max_checks:
            progress = False
            coords = _deletable_coords(module)
            chunk = max(1, len(coords) // 2)
            while chunk >= 1 and self.checks < self.max_checks:
                i = 0
                coords = _deletable_coords(module)
                while i < len(coords):
                    batch = coords[i : i + chunk]
                    candidate = self._try(
                        module, passes, lambda m: _delete_coords(m, batch)
                    )
                    if candidate is not None:
                        module = candidate
                        progress = True
                        coords = _deletable_coords(module)
                        # restart scan at the same position
                    else:
                        i += chunk
                if chunk == 1:
                    break
                chunk = max(1, chunk // 2)
        return module


# -- clone-side transformations (operate on coordinates, since clones
#    produce fresh objects) ----------------------------------------------------

Coord = Tuple[int, int, int]  # (function index, block index, instruction index)


def _remove_function(module: Module, name: str) -> bool:
    fn = module.get_function(name)
    if fn is None or fn.has_uses:
        return False
    for block in list(fn.blocks):
        for inst in list(block.instructions):
            inst.drop_all_operands()
    module.remove_function(fn)
    return True


def _remove_global(module: Module, name: str) -> bool:
    gv = module.get_global(name)
    if gv is None or gv.has_uses:
        return False
    module.remove_global(gv)
    return True


def _force_terminator(
    module: Module, f_idx: int, b_idx: int, which: int
) -> bool:
    """Replace a conditional branch/switch with ``br`` to target ``which``."""
    fn = module.functions[f_idx]
    block = fn.blocks[b_idx]
    term = block.terminator
    if isinstance(term, Branch) and term.is_conditional:
        targets = term.targets
    elif isinstance(term, Switch):
        targets = term.targets
    else:
        return False
    keep = targets[which]
    dropped = [t for t in targets if t is not keep]
    term.erase_from_parent()
    block.append(Branch(keep))
    for succ in dropped:
        if block not in succ.predecessors():
            succ.remove_phi_incoming_for(block)
    _prune_unreachable(fn)
    return True


def _prune_unreachable(fn: Function) -> None:
    reachable = set()
    work = [fn.entry]
    while work:
        block = work.pop()
        if id(block) in reachable:
            continue
        reachable.add(id(block))
        work.extend(block.successors())
    for block in list(fn.blocks):
        if id(block) in reachable:
            continue
        for succ in block.successors():
            if id(succ) in reachable:
                succ.remove_phi_incoming_for(block)
        for inst in list(block.instructions):
            if inst.has_uses:
                inst.replace_all_uses_with(zero_value(inst.type))
            inst.drop_all_operands()
        block.instructions.clear()
        block.erase_from_parent()
    # Single-incoming phis left by edge removal fold to their value.
    for block in fn.blocks:
        for phi in list(block.phis()):
            if phi.num_incoming == 1:
                phi.replace_all_uses_with(phi.incoming_value(0))
                phi.erase_from_parent()


def _merge_chain_blocks(module: Module) -> bool:
    """Merge each block into its single-predecessor unconditional successor."""
    changed = False
    for fn in module.functions:
        if fn.is_declaration:
            continue
        merged = True
        while merged:
            merged = False
            for block in list(fn.blocks):
                term = block.terminator
                if not (isinstance(term, Branch) and not term.is_conditional):
                    continue
                succ = term.targets[0]
                if (
                    succ is block
                    or succ is fn.entry
                    or succ.single_predecessor is not block
                ):
                    continue
                for phi in list(succ.phis()):
                    phi.replace_all_uses_with(phi.incoming_value(0))
                    phi.erase_from_parent()
                term.erase_from_parent()
                for inst in list(succ.instructions):
                    succ.instructions.remove(inst)
                    block.append(inst)
                # Phis in succ's successors must see the merged block as
                # their incoming edge now.
                succ.replace_all_uses_with(block)
                succ.erase_from_parent()
                changed = True
                merged = True
                break
    return changed


def normalize_names(module: Module) -> None:
    """Rename blocks/values sequentially after clone-round name growth."""
    for fn in module.functions:
        counter = 0
        for b_idx, block in enumerate(fn.blocks):
            block.name = "entry" if b_idx == 0 else f"b{b_idx}"
            for inst in block.instructions:
                if not inst.type.is_void:
                    counter += 1
                    inst.name = f"v{counter}"


def _deletable_coords(module: Module) -> List[Coord]:
    coords: List[Coord] = []
    for f_idx, fn in enumerate(module.functions):
        for b_idx, block in enumerate(fn.blocks):
            for i_idx, inst in enumerate(block.instructions):
                if inst.is_terminator:
                    continue
                coords.append((f_idx, b_idx, i_idx))
    return coords


def _delete_coords(module: Module, coords: Sequence[Coord]) -> bool:
    """Delete instructions (highest index first so indices stay valid)."""
    if not coords:
        return False
    for f_idx, b_idx, i_idx in sorted(coords, reverse=True):
        fn = module.functions[f_idx]
        block = fn.blocks[b_idx]
        inst = block.instructions[i_idx]
        if inst.is_terminator:
            return False
        if inst.has_uses:
            if inst.type.is_void:
                return False
            inst.replace_all_uses_with(zero_value(inst.type))
        inst.erase_from_parent()
    return True
