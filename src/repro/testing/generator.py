"""Csmith-style random program generator for differential testing.

Extends the workload generator with constructs the training corpus never
needed but the pass pipeline must still handle correctly: unsigned
arithmetic and masked shifts, integer/float cast chains, vector
insert/extract and lane-wise arithmetic, pointer↔integer round-trips,
wide switches, global read/write traffic, and *observable* external calls
(``@observe``) whose trace the differential oracle compares.

Every generated module is

* **deterministic** in its seed (byte-identical printed text across
  processes — asserted by the seed-determinism test),
* **interpreter-executable with no undefined behaviour** (divisors are
  forced odd, shift amounts masked below the bit width, every load reads
  initialized memory), and
* **fully printable↔parseable** (no named struct types — the one corner
  the textual format deliberately omits), so failing cases can be saved
  to the corpus and replayed from text.

The guaranteed "coverage segments" run once per module before the
weighted random mix, so every executable opcode appears in — and is
executed by — every generated program. The interpreter-coverage test
relies on this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..ir.module import Function, Module
from ..ir.types import (
    F32,
    F64,
    FunctionType,
    I8,
    I16,
    I32,
    I64,
    PointerType,
    VectorType,
    VOID,
)
from ..ir.values import ConstantFloat, ConstantInt, ConstantVector, Value
from ..workloads.generator import (
    _CONSTRUCTS,
    ProgramGenerator,
    ProgramProfile,
    _Builder,
)


@dataclass(frozen=True)
class FuzzProfile(ProgramProfile):
    """Construct mix for one fuzz program (extends the workload knobs)."""

    name: str = "fuzz"
    segments: int = 6
    array_len: int = 8
    recursive_helper: bool = True
    #: weights of the fuzz-only constructs in the random segment mix
    w_unsigned: float = 1.2
    w_cast: float = 1.2
    w_vector: float = 1.0
    w_fp_chain: float = 1.0
    w_wide_switch: float = 0.7
    w_global_rw: float = 0.8
    w_ptr_play: float = 0.7
    w_observe: float = 1.5


#: fuzz-only constructs; appended to the workload construct table
_FUZZ_CONSTRUCTS: List[Tuple[str, str]] = [
    ("w_unsigned", "emit_unsigned"),
    ("w_cast", "emit_cast_chain"),
    ("w_vector", "emit_vector"),
    ("w_fp_chain", "emit_fp_chain"),
    ("w_wide_switch", "emit_wide_switch"),
    ("w_global_rw", "emit_global_rw"),
    ("w_ptr_play", "emit_ptr_play"),
    ("w_observe", "emit_observe"),
]

#: constructs run exactly once per module, in order, before the random
#: mix — together they execute every opcode the interpreter supports.
COVERAGE_SEGMENTS: List[str] = [
    "emit_signed_core",
    "emit_unsigned",
    "emit_cast_chain",
    "emit_vector",
    "emit_fp_chain",
    "emit_wide_switch",
    "emit_global_rw",
    "emit_ptr_play",
    "emit_observe",
]


class _FuzzBuilder(_Builder):
    """Workload builder plus the fuzz-only constructs."""

    # -- deterministic signed-arithmetic core -------------------------------
    def emit_signed_core(self) -> None:
        """add/sub/mul/sdiv/srem/shl with guarded operands, once."""
        b = self.b
        x, y = self.pick(), self.pick()
        s = b.add(x, y)
        d = b.sub(s, x)
        m = b.mul(d, b.and_(y, self._c(7)))
        den = b.or_(self.pick(), self._c(1))  # odd => never zero
        q = b.sdiv(m, den)
        r = b.srem(m, den)
        sh = b.shl(x, b.and_(y, self._c(7)))
        self.pool.extend([b.add(q, r), b.xor(sh, d)])

    def emit_unsigned(self) -> None:
        """udiv/urem and masked lshr/ashr (all defined for any input)."""
        b = self.b
        num = self.pick()
        den = b.or_(self.pick(), self._c(1))
        q = b.udiv(num, den)
        r = b.binary("urem", num, den)
        amt = b.and_(self.pick(), self._c(31))  # < bit width: no poison
        l = b.lshr(self.pick(), amt)
        a = b.ashr(self.pick(), amt)
        self.pool.extend([b.add(q, r), b.xor(l, a)])

    def emit_cast_chain(self) -> None:
        """trunc/zext/sext chains through i64/i16/i8."""
        b = self.b
        x = self.pick()
        wide = b.sext(x, I64)
        bumped = b.binary("add", wide, ConstantInt(I64, 0x1234))
        narrow = b.trunc(bumped, I16)
        back = b.zext(narrow, I32)
        byte = b.trunc(self.pick(), I8)
        sign = b.sext(byte, I32)
        self.pool.extend([back, sign])

    def emit_vector(self) -> None:
        """Vector insert/extract and lane-wise arithmetic on <4 x i32>."""
        b = self.b
        rng = self.rng
        vty = VectorType(I32, 4)
        base = ConstantVector(
            vty, [ConstantInt(I32, int(rng.randint(-9, 10))) for _ in range(4)]
        )
        v1 = b.insertelement(base, self.pick(), ConstantInt(I32, 0))
        v2 = b.insertelement(v1, self.pick(), ConstantInt(I32, int(rng.randint(1, 4))))
        op = ["add", "mul", "xor", "and"][int(rng.randint(4))]
        mixed = b.binary(op, v1, v2)
        lane_a = b.extractelement(mixed, ConstantInt(I32, 0))
        lane_b = b.extractelement(mixed, ConstantInt(I32, 3))
        self.pool.append(b.add(lane_a, lane_b))

    def emit_fp_chain(self) -> None:
        """fdiv/frem/fcmp/select plus the full float-cast family."""
        b = self.b
        a = b.sitofp(self.pick(), F64)
        nz = b.or_(self.pick(), self._c(1))  # odd int => nonzero float
        c = b.sitofp(nz, F64)
        d = b.fdiv(a, c)
        rem = b.binary("frem", a, c)
        mix = b.fsub(b.fadd(d, rem), b.fmul(a, ConstantFloat(F64, 0.5)))
        squeezed = b.cast("fptrunc", mix, F32)
        widened = b.cast("fpext", squeezed, F64)
        cond = b.fcmp("olt", widened, a)
        chosen = b.select(cond, widened, mix)
        unsigned = b.cast("uitofp", self.pick(), F64)
        total = b.fadd(chosen, unsigned)
        self.fpool.append(total)
        self.pool.append(b.fptosi(total, I32))

    def emit_wide_switch(self) -> None:
        """A 5-way switch with a phi merge."""
        b = self.b
        value = b.and_(self.pick(), self._c(7))
        merge = self.fresh_block("wswmerge")
        default = self.fresh_block("wswdef")
        cases = []
        blocks = []
        for i in range(5):
            blocks.append(self.fresh_block(f"wswcase{i}"))
            cases.append((self._c(i), blocks[-1]))
        b.switch(value, default, cases)
        incomings = []
        for i, block in enumerate(blocks):
            self.continue_in(block)
            v = b.add(self.pick(), self._c(3 * i + 1))
            b.br(merge)
            incomings.append((v, b.block))
        self.continue_in(default)
        dv = b.mul(self.pick(), self._c(-3))
        b.br(merge)
        incomings.append((dv, b.block))
        self.continue_in(merge)
        phi = b.phi(I32)
        for v, blk in incomings:
            phi.add_incoming(v, blk)
        self.pool.append(phi)

    def emit_global_rw(self) -> None:
        """Store-then-load traffic through the module's global table."""
        b = self.b
        g = self.gen.module.get_global("gtable")
        assert g is not None
        n = self.gen.profile.array_len
        idx = b.and_(self.pick(), self._c(n - 1))  # array_len is a power of 2
        p = b.gep(g, [self._c(0), idx])
        b.store(self.pick(), p)
        self.pool.append(b.load(p))

    def emit_ptr_play(self) -> None:
        """ptrtoint/inttoptr round-trip and a pointer bitcast load."""
        b = self.b
        arr, n = self._make_array(initialize=True)
        k = self._c(int(self.rng.randint(0, n)))
        p = b.gep(arr, [self._c(0), k])
        as_int = b.cast("ptrtoint", p, I64)
        back = b.cast("inttoptr", as_int, PointerType(I32))
        self.pool.append(b.load(back))
        first = b.bitcast(arr, PointerType(I32))
        self.pool.append(b.load(first))

    def emit_observe(self) -> None:
        """Externally visible calls — the oracle compares their trace."""
        b = self.b
        b.call(self.gen.observe_fn, [self.pick()])
        if self.fpool and self.rng.random_sample() < 0.7:
            b.call(self.gen.observe_f64_fn, [self.pick_fp()])
        sourced = b.call(self.gen.source_fn, [self.pick()])
        self.pool.append(sourced)


class FuzzProgramGenerator(ProgramGenerator):
    """Seeded random program generator for the differential oracle."""

    builder_cls = _FuzzBuilder
    constructs = _CONSTRUCTS + _FUZZ_CONSTRUCTS

    def __init__(self, profile: FuzzProfile):
        super().__init__(profile)
        self.observe_fn: Function = None  # type: ignore[assignment]
        self.observe_f64_fn: Function = None  # type: ignore[assignment]
        self.source_fn: Function = None  # type: ignore[assignment]

    def _emit_helpers(self) -> None:
        super()._emit_helpers()
        # External declarations: calls to these are the observable trace.
        self.observe_fn = Function(
            self.module, "observe", FunctionType(VOID, [I32]),
            linkage="external", arg_names=["x"],
        )
        self.observe_f64_fn = Function(
            self.module, "observe_f64", FunctionType(VOID, [F64]),
            linkage="external", arg_names=["x"],
        )
        self.source_fn = Function(
            self.module, "ext_source", FunctionType(I32, [I32]),
            linkage="external", arg_names=["x"],
        )

    def _emit_segments(self, builder: _Builder) -> None:
        for method in COVERAGE_SEGMENTS:
            getattr(builder, method)()
        # Guarantee at least one helper call and one loop-carried phi.
        builder.emit_call()
        builder.emit_small_loop()
        super()._emit_segments(builder)


def generate_fuzz_program(profile: FuzzProfile) -> Module:
    """Generate one deterministic fuzz module for ``profile``."""
    return FuzzProgramGenerator(profile).generate()
