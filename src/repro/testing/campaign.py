"""Fuzz campaigns: generate programs, run the oracle, reduce failures.

A campaign sweeps a seed range: for each seed it generates one fuzz
module, takes its baseline observations once, then differentially checks
every pass sequence the configured mode produces against that baseline.
Failures are (optionally) shrunk by the delta-debugging reducer and
written to a corpus directory as permanent regression cases.

Driven programmatically via :func:`run_campaign` or from the command
line via ``python -m repro.tools.fuzz``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..ir.printer import print_module
from .corpus import CorpusCase, save_case
from .generator import FuzzProfile, generate_fuzz_program
from .oracle import (
    DEFAULT_ARG_SETS,
    DEFAULT_FUEL,
    DifferentialOracle,
    make_sequences,
)
from .reduce import Reducer

#: explicit sequences may be given instead of a mode name
SequenceSpec = Union[str, Sequence[Sequence[str]]]


@dataclass
class FuzzConfig:
    """Everything one campaign needs; defaults match the CI smoke job."""

    seeds: int = 50
    start_seed: int = 0
    sequences: SequenceSpec = "odg"
    #: agent-style episodes per module (manual/odg/random modes)
    episodes: int = 1
    episode_length: int = 10
    #: stop starting new seeds once this much wall time has elapsed
    time_budget_s: Optional[float] = None
    reduce: bool = False
    corpus_dir: Optional[Path] = None
    arg_sets: Sequence[Sequence[int]] = DEFAULT_ARG_SETS
    fuel: int = DEFAULT_FUEL
    verify_each: bool = False
    #: size knob forwarded to the generator profile
    segments: int = 6
    fn_name: str = "entry"
    #: budget for the reducer, in predicate evaluations per failure
    reduce_max_checks: int = 800
    #: enable observability (per-pass metrics + traces) for the campaign
    #: and write the snapshot to this JSON file when it finishes
    snapshot_path: Optional[Union[str, Path]] = None


@dataclass
class FuzzFailure:
    """One failing (seed, pass-sequence) pair, plus its reduction."""

    seed: int
    kind: str
    detail: str
    passes: List[str]
    module_text: str
    args: Optional[Tuple] = None
    reduced_module_text: Optional[str] = None
    reduced_passes: Optional[List[str]] = None
    reduced_instructions: Optional[int] = None
    corpus_path: Optional[str] = None


@dataclass
class FuzzReport:
    """Aggregate campaign outcome."""

    seeds_run: int = 0
    checks: int = 0
    counts: Dict[str, int] = field(default_factory=dict)
    failures: List[FuzzFailure] = field(default_factory=list)
    elapsed_s: float = 0.0
    budget_exhausted: bool = False

    @property
    def miscompiles(self) -> int:
        return self.counts.get("miscompile", 0)

    @property
    def clean(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        parts = [f"{self.seeds_run} seeds", f"{self.checks} checks"]
        for kind in ("ok", "miscompile", "verifier_error", "crash", "hang",
                     "skip"):
            if self.counts.get(kind):
                parts.append(f"{kind}={self.counts[kind]}")
        parts.append(f"{self.elapsed_s:.1f}s")
        if self.budget_exhausted:
            parts.append("(time budget hit)")
        return ", ".join(parts)

    def to_dict(self) -> dict:
        return {
            "seeds_run": self.seeds_run,
            "checks": self.checks,
            "counts": dict(self.counts),
            "elapsed_s": round(self.elapsed_s, 3),
            "budget_exhausted": self.budget_exhausted,
            "failures": [
                {
                    "seed": f.seed,
                    "kind": f.kind,
                    "detail": f.detail,
                    "passes": f.passes,
                    "reduced_passes": f.reduced_passes,
                    "reduced_instructions": f.reduced_instructions,
                    "corpus_path": f.corpus_path,
                }
                for f in self.failures
            ],
        }


def _sequences_for(config: FuzzConfig, rng) -> List[List[str]]:
    if isinstance(config.sequences, str):
        return make_sequences(
            config.sequences, rng,
            episodes=config.episodes,
            episode_length=config.episode_length,
        )
    return [list(s) for s in config.sequences]


def reduce_failure(
    failure_module,
    failure: FuzzFailure,
    oracle: DifferentialOracle,
    max_checks: int = 800,
) -> None:
    """Shrink a failure in place (fills the ``reduced_*`` fields)."""
    kind = failure.kind
    if failure.args is not None:
        # Reduce against just the diverging input: one baseline run and
        # one optimized run per predicate check instead of one per
        # configured arg set (~3x fewer interpreter runs).
        oracle = DifferentialOracle(
            fn_name=oracle.fn_name,
            arg_sets=[failure.args],
            fuel=oracle.fuel,
            verify_each=oracle.verify_each,
        )
    reducer = Reducer(
        predicate=lambda m, ps: oracle.check(m, ps).kind == kind,
        max_checks=max_checks,
    )
    reduced_module, reduced_passes = reducer.reduce(
        failure_module, failure.passes
    )
    failure.reduced_module_text = print_module(reduced_module)
    failure.reduced_passes = reduced_passes
    failure.reduced_instructions = reduced_module.instruction_count


def run_campaign(
    config: FuzzConfig,
    log: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run one campaign and return its report."""
    say = log or (lambda _msg: None)
    self_enabled = False
    if config.snapshot_path is not None:
        from ..observability import enable, enabled

        # Pass managers and the oracle consult the live registry on every
        # run, so enabling here instruments the whole campaign. Restored
        # at the end if the campaign turned it on itself.
        if not enabled():
            enable()
            self_enabled = True
    report = FuzzReport()
    started = time.monotonic()
    corpus_serial = 0

    for i in range(config.seeds):
        elapsed = time.monotonic() - started
        if config.time_budget_s is not None and elapsed >= config.time_budget_s:
            report.budget_exhausted = True
            break
        seed = config.start_seed + i
        profile = FuzzProfile(
            name=f"fuzz{seed}", seed=seed, segments=config.segments
        )
        module = generate_fuzz_program(profile)
        oracle = DifferentialOracle(
            fn_name=config.fn_name,
            arg_sets=config.arg_sets,
            fuel=config.fuel,
            verify_each=config.verify_each,
        )
        baselines = oracle.baseline(module)
        # Sequence draws are seeded per module: the whole campaign is a
        # pure function of (config), reproducible anywhere.
        rng = np.random.RandomState(seed ^ 0x5EED)
        report.seeds_run += 1
        for passes in _sequences_for(config, rng):
            result = oracle.check(module, passes, baselines=baselines)
            report.checks += 1
            report.counts[result.kind] = report.counts.get(result.kind, 0) + 1
            if not result.is_failure:
                continue
            failure = FuzzFailure(
                seed=seed,
                kind=result.kind,
                detail=result.detail,
                passes=list(result.passes),
                module_text=print_module(module),
                args=result.args,
            )
            say(f"seed {seed}: {result.kind} — {result.detail}")
            if config.reduce:
                try:
                    reduce_failure(
                        module, failure, oracle,
                        max_checks=config.reduce_max_checks,
                    )
                    say(
                        f"seed {seed}: reduced to "
                        f"{failure.reduced_instructions} instructions, "
                        f"passes {failure.reduced_passes}"
                    )
                except Exception as exc:  # reduction is best-effort
                    say(f"seed {seed}: reduction failed: {exc}")
            if config.corpus_dir is not None:
                case = CorpusCase(
                    name=f"seed{seed}-{result.kind}-{corpus_serial}",
                    kind=result.kind,
                    passes=failure.reduced_passes or failure.passes,
                    module_text=(
                        failure.reduced_module_text or failure.module_text
                    ),
                    fn_name=config.fn_name,
                    arg_sets=[tuple(a) for a in config.arg_sets],
                    detail=result.detail,
                )
                path = save_case(case, Path(config.corpus_dir))
                failure.corpus_path = str(path)
                corpus_serial += 1
            report.failures.append(failure)

    report.elapsed_s = time.monotonic() - started
    say(report.summary())
    if config.snapshot_path is not None:
        from ..observability import disable, export_snapshot

        export_snapshot(str(config.snapshot_path))
        say(f"metrics snapshot -> {config.snapshot_path}")
        if self_enabled:
            disable()
    return report
