"""The differential semantic-equivalence oracle.

An :class:`Observation` is the canonical observable behaviour of one
program run: the return value plus the ordered external-call trace
(floats canonicalized to their bit patterns so NaN compares equal to
itself and ``-0.0`` differs from ``0.0``). A correct optimization must
preserve the observation exactly for every input.

:class:`DifferentialOracle` runs a module through an arbitrary pass
sequence and classifies the outcome:

``ok``
    every input produced identical observations before and after;
``miscompile``
    valid IR, wrong behaviour — a silently wrong result, the failure mode
    the structural verifier cannot see;
``verifier_error``
    a pass produced structurally invalid IR (caught at the exact pass);
``crash``
    a pass raised while running;
``hang``
    the optimized program exhausted a fuel budget the original finished
    well within (an introduced infinite loop);
``skip``
    the *baseline* run trapped or ran out of fuel — a generator bug, not
    a pass bug, and never counted against the pipeline.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.subsequences import MANUAL_SUBSEQUENCES, PAPER_ODG_SUBSEQUENCES
from ..ir.interp import Interpreter, InterpError, OutOfFuel
from ..ir.module import Function, Module
from ..ir.types import IntType
from ..ir.verifier import verify_module
from ..observability import get_registry, get_tracer
from ..passes.base import PassManager
from ..passes.pipelines import OZ_PASS_SEQUENCE
from ..passes.stats import StatsTimer

#: default interpreter budget per run
DEFAULT_FUEL = 500_000

#: default inputs the oracle drives ``@entry(i32)`` with
DEFAULT_ARG_SETS: Tuple[Tuple[int, ...], ...] = ((0,), (7,), (-3,))


def _canon(value) -> object:
    """Canonical, hashable, bit-exact form of an observed value."""
    if isinstance(value, float):
        return ("f64", struct.pack("<d", value))
    if isinstance(value, list):
        return tuple(_canon(v) for v in value)
    if isinstance(value, tuple):
        return tuple(_canon(v) for v in value)
    return value


@dataclass(frozen=True)
class Observation:
    """Observable behaviour of one run: how it ended, what it returned,
    and every external call in order."""

    kind: str  # "return" | "trap" | "fuel"
    value: object = None
    trace: Tuple = ()
    steps: int = 0
    detail: str = ""

    def __eq__(self, other) -> bool:  # steps/detail are diagnostics only
        return (
            isinstance(other, Observation)
            and self.kind == other.kind
            and self.value == other.value
            and self.trace == other.trace
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.value, self.trace))


def observe_module(
    module: Module,
    fn_name: str = "entry",
    args: Sequence = (0,),
    fuel: int = DEFAULT_FUEL,
) -> Observation:
    """Run ``fn_name`` and capture the canonical observation."""
    interp = Interpreter(module, fuel=fuel)
    try:
        result = interp.run(fn_name, list(args))
    except OutOfFuel:
        return Observation(
            "fuel", trace=_canon(interp.trace), steps=interp.steps_executed
        )
    except InterpError as exc:
        return Observation(
            "trap",
            trace=_canon(interp.trace),
            steps=interp.steps_executed,
            detail=str(exc),
        )
    return Observation(
        "return",
        value=_canon(result),
        trace=_canon(interp.trace),
        steps=interp.steps_executed,
    )


@dataclass
class CheckResult:
    """Outcome of one differential check of (module, pass sequence)."""

    kind: str  # ok | miscompile | verifier_error | crash | hang | skip
    detail: str = ""
    passes: List[str] = field(default_factory=list)
    #: input args of the first diverging run (miscompile/hang only)
    args: Optional[Tuple] = None
    before: Optional[Observation] = None
    after: Optional[Observation] = None

    @property
    def ok(self) -> bool:
        return self.kind == "ok"

    @property
    def is_failure(self) -> bool:
        return self.kind in ("miscompile", "verifier_error", "crash", "hang")


class DifferentialOracle:
    """Runs pass sequences against the reference interpreter."""

    def __init__(
        self,
        fn_name: str = "entry",
        arg_sets: Sequence[Sequence] = DEFAULT_ARG_SETS,
        fuel: int = DEFAULT_FUEL,
        verify_each: bool = False,
    ):
        self.fn_name = fn_name
        self.arg_sets = [tuple(a) for a in arg_sets]
        self.fuel = fuel
        #: verify after every pass (pinpoints the breaking pass; ~2x cost)
        self.verify_each = verify_each

    # -- baseline ------------------------------------------------------------
    def baseline(self, module: Module) -> List[Observation]:
        """One observation per configured input, on the unoptimized module."""
        return [
            observe_module(module, self.fn_name, args, self.fuel)
            for args in self.arg_sets
        ]

    # -- the differential check ---------------------------------------------
    def check(
        self,
        module: Module,
        passes: Sequence[str],
        baselines: Optional[List[Observation]] = None,
    ) -> CheckResult:
        """Apply ``passes`` to a clone of ``module`` and compare behaviour.

        ``baselines`` (from :meth:`baseline`) can be passed to amortize
        the pre-optimization runs across many sequences.
        """
        passes = list(passes)
        if baselines is None:
            baselines = self.baseline(module)
        usable = [
            (args, obs)
            for args, obs in zip(self.arg_sets, baselines)
            if obs.kind == "return"
        ]
        if not usable:
            return CheckResult(
                "skip",
                detail="baseline run trapped or ran out of fuel on every "
                "input (generator bug, not a pass bug)",
                passes=passes,
            )

        candidate = module.clone()
        try:
            managers = PassManager(passes).passes
        except Exception as exc:
            return CheckResult("crash", detail=f"pass construction: {exc}",
                               passes=passes)
        # The per-pass loop deliberately bypasses ``PassManager.run`` so a
        # crash is attributed to the exact pass (and ``verify_each`` can
        # bisect), so it mirrors that method's instrumentation here: when
        # observability is on, every invocation lands in the registry and
        # a ``sequence`` trace with per-pass child spans.
        registry = get_registry()
        tracer = get_tracer()
        observe = registry.enabled
        with tracer.span("sequence", n_passes=len(managers)):
            for p in managers:
                try:
                    if observe:
                        with tracer.span(p.name, kind="pass"), StatsTimer(
                            None, p.name, candidate, registry=registry
                        ) as timer:
                            timer.finish(bool(p.run_on_module(candidate)))
                    else:
                        p.run_on_module(candidate)
                except Exception as exc:
                    return CheckResult(
                        "crash", detail=f"pass -{p.name} raised: {exc}",
                        passes=passes,
                    )
                if self.verify_each:
                    try:
                        verify_module(candidate)
                    except Exception as exc:
                        return CheckResult(
                            "verifier_error",
                            detail=f"IR invalid after -{p.name}: {exc}",
                            passes=passes,
                        )
        if not self.verify_each:
            try:
                verify_module(candidate)
            except Exception as exc:
                return CheckResult(
                    "verifier_error",
                    detail=f"IR invalid after sequence: {exc}",
                    passes=passes,
                )

        for args, before in usable:
            after = observe_module(candidate, self.fn_name, args, self.fuel)
            if after.kind == "fuel":
                return CheckResult(
                    "hang",
                    detail=f"optimized module exhausted {self.fuel} fuel on "
                    f"args {args!r}; baseline finished in {before.steps} steps",
                    passes=passes, args=tuple(args),
                    before=before, after=after,
                )
            if after != before:
                return CheckResult(
                    "miscompile",
                    detail=_describe_mismatch(args, before, after),
                    passes=passes, args=tuple(args),
                    before=before, after=after,
                )
        return CheckResult("ok", passes=passes)


def _describe_mismatch(args, before: Observation, after: Observation) -> str:
    parts = [f"on args {tuple(args)!r}:"]
    if after.kind == "trap":
        parts.append(f"optimized module trapped ({after.detail})")
    elif before.value != after.value:
        parts.append(f"return value {before.value!r} -> {after.value!r}")
    if before.trace != after.trace:
        parts.append(
            f"external-call trace diverged "
            f"({len(before.trace)} calls -> {len(after.trace)} calls)"
            if len(before.trace) != len(after.trace)
            else "external-call trace diverged (same length, different "
            "callees or arguments)"
        )
    return " ".join(parts)


# -- pass-sequence sources ----------------------------------------------------

SEQUENCE_MODES = ("singles", "oz", "manual", "odg", "random", "all")


def make_sequences(
    mode: str,
    rng,
    episodes: int = 1,
    episode_length: int = 10,
) -> List[List[str]]:
    """Pass sequences to test one module with.

    ``singles``
        each unique ``-Oz`` pass alone;
    ``oz``
        the full ``-Oz`` pipeline plus every Table-II manual sub-sequence;
    ``manual`` / ``odg``
        ``episodes`` random agent-style orderings: ``episode_length``
        actions drawn (with replacement) from the Table-II / Table-III
        sub-sequences and flattened, exactly the shape a trained policy
        emits;
    ``random``
        random permutations of the unique ``-Oz`` passes — orderings no
        human curated;
    ``all``
        the union of the above.
    """
    unique = sorted(set(OZ_PASS_SEQUENCE))
    out: List[List[str]] = []
    if mode in ("singles", "all"):
        out.extend([p] for p in unique)
    if mode in ("oz", "all"):
        out.append(list(OZ_PASS_SEQUENCE))
        out.extend(list(s) for s in MANUAL_SUBSEQUENCES)
    if mode in ("manual", "odg", "all"):
        tables = []
        if mode in ("manual", "all"):
            tables.append(MANUAL_SUBSEQUENCES)
        if mode in ("odg", "all"):
            tables.append(PAPER_ODG_SUBSEQUENCES)
        for table in tables:
            for _ in range(episodes):
                seq: List[str] = []
                for _ in range(episode_length):
                    seq.extend(table[int(rng.randint(len(table)))])
                out.append(seq)
    if mode in ("random", "all"):
        for _ in range(max(1, episodes)):
            perm = list(unique)
            rng.shuffle(perm)
            out.append(perm)
    if not out:
        raise ValueError(f"unknown sequence mode {mode!r}")
    return out


# -- serving hook -------------------------------------------------------------

def _pick_entry(module: Module) -> Optional[Function]:
    """A function the oracle can drive: defined, int-returning, all-int
    params. Prefers ``@entry`` (the generator's convention)."""
    entry = module.get_function("entry")
    candidates = [entry] if entry is not None else []
    candidates += [f for f in module.functions if f is not entry]
    for fn in candidates:
        if fn.is_declaration or fn.is_intrinsic:
            continue
        if not isinstance(fn.return_type, IntType):
            continue
        if all(isinstance(a.type, IntType) for a in fn.args):
            return fn
    return None


def modules_equivalent(
    original: Module,
    optimized: Module,
    fn_name: Optional[str] = None,
    arg_sets: Optional[Sequence[Sequence[int]]] = None,
    fuel: int = DEFAULT_FUEL,
) -> Optional[str]:
    """Semantic post-optimization check for the serving guard.

    Returns ``None`` when the modules agree on every driveable input (or
    when nothing is driveable — no executable int entry point, or the
    baseline itself traps), and a human-readable mismatch description
    when the optimized module observably diverges.
    """
    if fn_name is None:
        fn = _pick_entry(original)
        if fn is None:
            return None
        fn_name = fn.name
    else:
        fn = original.get_function(fn_name)
        if fn is None:
            return None
    if optimized.get_function(fn_name) is None:
        return f"function @{fn_name} disappeared from the optimized module"
    if arg_sets is None:
        probe = (0, 7, -3)
        arity = len(fn.args)
        arg_sets = [tuple([p] * arity) for p in probe]
    for args in arg_sets:
        before = observe_module(original, fn_name, args, fuel)
        if before.kind != "return":
            continue  # not a driveable input; nothing to compare
        after = observe_module(optimized, fn_name, args, fuel)
        if after.kind == "fuel":
            return (
                f"optimized @{fn_name}{tuple(args)!r} exhausted {fuel} fuel; "
                f"original finished in {before.steps} steps"
            )
        if after != before:
            return _describe_mismatch(args, before, after)
    return None
