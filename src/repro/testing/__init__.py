"""Generative differential testing for the mini-LLVM pipeline.

The structural verifier proves IR *validity*; this package proves
*semantic correctness* under arbitrary phase orderings — exactly the
regime POSET-RL explores. Four pieces:

* :mod:`~repro.testing.generator` — a seeded random program generator
  (extending the workload generator) whose modules exercise every
  executable instruction kind and are interpreter-runnable with a defined
  observable output (return value + external-call trace).
* :mod:`~repro.testing.oracle` — the differential oracle: run a module
  before and after a pass sequence and compare observations, classifying
  failures as miscompiles, crashes, verifier breaks or hangs.
* :mod:`~repro.testing.reduce` — a delta-debugging reducer shrinking a
  failing (module, pass-sequence) pair to a minimal repro.
* :mod:`~repro.testing.corpus` — persisted reduced repros that the test
  suite replays forever; :mod:`~repro.testing.campaign` drives whole fuzz
  campaigns (also via ``python -m repro.tools.fuzz``).
"""

from .campaign import FuzzConfig, FuzzFailure, FuzzReport, run_campaign
from .corpus import CorpusCase, load_cases, replay_case, save_case
from .generator import FuzzProfile, FuzzProgramGenerator, generate_fuzz_program
from .oracle import (
    CheckResult,
    DifferentialOracle,
    Observation,
    make_sequences,
    modules_equivalent,
    observe_module,
)
from .reduce import Reducer

__all__ = [
    "CheckResult",
    "CorpusCase",
    "DifferentialOracle",
    "FuzzConfig",
    "FuzzFailure",
    "FuzzProfile",
    "FuzzProgramGenerator",
    "FuzzReport",
    "Observation",
    "Reducer",
    "generate_fuzz_program",
    "load_cases",
    "make_sequences",
    "modules_equivalent",
    "observe_module",
    "replay_case",
    "run_campaign",
    "save_case",
]
