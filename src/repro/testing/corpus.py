"""Persisted minimal repros that the test suite replays forever.

A corpus case is one ``.ll`` file: a comment header (``;;`` lines with
JSON values) recording what failed and how to reproduce it, followed by
the reduced module text. Cases are committed under
``tests/testing/corpus/`` — every bug the fuzzer ever found stays a
regression test, and replaying a case after the fix must come back
``ok``.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from ..ir.parser import parse_module
from .oracle import DEFAULT_ARG_SETS, DEFAULT_FUEL, CheckResult, DifferentialOracle

_HEADER_RE = re.compile(r"^;;\s*(\w+):\s*(.*)$")


@dataclass
class CorpusCase:
    """One reduced (module, pass-sequence) repro."""

    name: str
    #: failure kind when the case was found (miscompile/crash/...)
    kind: str
    passes: List[str]
    module_text: str
    fn_name: str = "entry"
    arg_sets: List[Tuple[int, ...]] = field(
        default_factory=lambda: [tuple(a) for a in DEFAULT_ARG_SETS]
    )
    detail: str = ""

    def to_text(self) -> str:
        header = [
            ";; fuzz-corpus-case",
            f";; name: {json.dumps(self.name)}",
            f";; kind: {json.dumps(self.kind)}",
            f";; fn: {json.dumps(self.fn_name)}",
            f";; args: {json.dumps([list(a) for a in self.arg_sets])}",
            f";; passes: {json.dumps(self.passes)}",
        ]
        if self.detail:
            # Keep the header single-line per key.
            header.append(f";; detail: {json.dumps(self.detail[:500])}")
        return "\n".join(header) + "\n\n" + self.module_text.rstrip() + "\n"

    @classmethod
    def from_text(cls, text: str, name: str = "") -> "CorpusCase":
        fields = {}
        body_lines = []
        for line in text.splitlines():
            m = _HEADER_RE.match(line)
            if m:
                key, raw = m.group(1), m.group(2)
                if raw:
                    fields[key] = json.loads(raw)
            else:
                body_lines.append(line)
        return cls(
            name=fields.get("name", name),
            kind=fields.get("kind", "miscompile"),
            passes=list(fields.get("passes", [])),
            module_text="\n".join(body_lines).strip() + "\n",
            fn_name=fields.get("fn", "entry"),
            arg_sets=[tuple(a) for a in fields.get("args", [[0]])],
            detail=fields.get("detail", ""),
        )


def save_case(case: CorpusCase, directory: Path) -> Path:
    """Write ``case`` to ``directory/<name>.ll`` and return the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{case.name}.ll"
    path.write_text(case.to_text())
    return path


def load_cases(directory: Path) -> List[CorpusCase]:
    """All corpus cases under ``directory``, sorted by file name."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    cases = []
    for path in sorted(directory.glob("*.ll")):
        cases.append(CorpusCase.from_text(path.read_text(), name=path.stem))
    return cases


def replay_case(case: CorpusCase, fuel: int = DEFAULT_FUEL) -> CheckResult:
    """Re-run a corpus case through the oracle.

    Returns the current classification: ``ok`` once the bug is fixed,
    the original failure kind while it is not.
    """
    module = parse_module(case.module_text)
    oracle = DifferentialOracle(
        fn_name=case.fn_name, arg_sets=case.arg_sets, fuel=fuel
    )
    return oracle.check(module, case.passes)
