"""-licm, -loop-sink, -loop-load-elim.

* ``licm``: hoists loop-invariant pure computation to the preheader, plus
  loads from invariant, dereferenceable locations that no in-loop write can
  clobber.
* ``loop-sink``: the size/pressure-motivated inverse — moves preheader
  instructions used in exactly one loop block down into it.
* ``loop-load-elim``: forwards values stored before the loop to in-loop
  loads when the loop itself cannot modify the location.
"""

from __future__ import annotations

from typing import List, Optional

from ...analysis.loops import Loop, LoopInfo
from ...analysis.memdep import may_alias, must_alias, pointer_escapes, underlying_object
from ...ir.instructions import (
    Alloca,
    Call,
    Instruction,
    Load,
    Phi,
    Store,
)
from ...ir.module import BasicBlock, Function
from ...ir.values import Argument, Constant, GlobalVariable, Value
from ..base import FunctionPass, register_pass


def is_loop_invariant(loop: Loop, value: Value) -> bool:
    if isinstance(value, (Constant, Argument)):
        return True
    if isinstance(value, Instruction):
        return value.parent is None or not loop.contains(value.parent)
    return True


def _loop_may_write(loop: Loop, pointer: Value) -> bool:
    for block in loop.blocks:
        for inst in block.instructions:
            if isinstance(inst, Store) and may_alias(inst.pointer, pointer):
                return True
            if isinstance(inst, Call) and inst.may_write_memory:
                base = underlying_object(pointer)
                if isinstance(base, Alloca) and not pointer_escapes(base):
                    continue
                return True
    return False


def _is_dereferenceable(pointer: Value) -> bool:
    """Safe to load speculatively: the object certainly exists."""
    base = underlying_object(pointer)
    return isinstance(base, (Alloca, GlobalVariable))


@register_pass
class LICM(FunctionPass):
    """Loop-invariant code motion."""

    name = "licm"

    def run_on_function(self, fn: Function) -> bool:
        info = LoopInfo(fn)
        changed = False
        for loop in info.innermost_first():
            preheader = loop.preheader()
            if preheader is None:
                continue
            progress = True
            while progress:
                progress = False
                for block in loop.blocks:
                    for inst in list(block.instructions):
                        if inst.parent is None or isinstance(inst, Phi):
                            continue
                        if not all(
                            is_loop_invariant(loop, op) for op in inst.operands
                        ):
                            continue
                        hoistable = False
                        if inst.is_speculatable and not inst.type.is_void:
                            hoistable = True
                        elif (
                            isinstance(inst, Load)
                            and _is_dereferenceable(inst.pointer)
                            and not _loop_may_write(loop, inst.pointer)
                        ):
                            hoistable = True
                        if not hoistable:
                            continue
                        block.instructions.remove(inst)
                        inst.parent = None
                        preheader.insert_before_terminator(inst)
                        progress = True
                        changed = True
        return changed


@register_pass
class LoopSink(FunctionPass):
    """Sink preheader-computed values into the single loop block that uses
    them (reduces live ranges; the -Oz counterweight to LICM)."""

    name = "loop-sink"

    def run_on_function(self, fn: Function) -> bool:
        info = LoopInfo(fn)
        changed = False
        for loop in info.loops:
            preheader = loop.preheader()
            if preheader is None:
                continue
            for inst in reversed(list(preheader.instructions)):
                if inst.is_terminator or inst.type.is_void:
                    continue
                if not inst.is_speculatable:
                    continue
                user_blocks = set()
                ok = True
                for use in inst.uses:
                    user = use.user
                    if not isinstance(user, Instruction) or user.parent is None:
                        ok = False
                        break
                    if isinstance(user, Phi):
                        ok = False
                        break
                    user_blocks.add(id(user.parent))
                if not ok or len(user_blocks) != 1:
                    continue
                (target_id,) = user_blocks
                target = next(
                    (b for b in loop.blocks if id(b) == target_id), None
                )
                if target is None or target is loop.header:
                    # Sinking into the header gains nothing (always runs).
                    continue
                # Move before its first user in the target block.
                first_user = next(
                    i
                    for i in target.instructions
                    if any(u.user is i for u in inst.uses)
                )
                preheader.instructions.remove(inst)
                inst.parent = None
                inst.insert_before(first_user)
                changed = True
        return changed


@register_pass
class LoopLoadElim(FunctionPass):
    """Forward pre-loop stores to in-loop loads of untouched locations."""

    name = "loop-load-elim"

    def run_on_function(self, fn: Function) -> bool:
        from ...analysis.memdep import clobbers_between

        info = LoopInfo(fn)
        changed = False
        for loop in info.loops:
            preheader = loop.preheader()
            if preheader is None:
                continue
            # The candidate store: last must-alias store in the preheader.
            for block in loop.blocks:
                for inst in list(block.instructions):
                    if not isinstance(inst, Load) or inst.parent is None:
                        continue
                    if not is_loop_invariant(loop, inst.pointer):
                        continue
                    if _loop_may_write(loop, inst.pointer):
                        continue
                    source: Optional[Store] = None
                    for prev in reversed(preheader.instructions):
                        if isinstance(prev, Store):
                            if must_alias(prev.pointer, inst.pointer):
                                if prev.value.type == inst.type:
                                    source = prev
                                break
                            if may_alias(prev.pointer, inst.pointer):
                                break
                        elif isinstance(prev, Call) and prev.may_write_memory:
                            base = underlying_object(inst.pointer)
                            if not (
                                isinstance(base, Alloca)
                                and not pointer_escapes(base)
                            ):
                                break
                    if source is not None:
                        inst.replace_all_uses_with(source.value)
                        inst.erase_from_parent()
                        changed = True
        return changed
