"""-indvars: induction-variable simplification.

Implemented subset (the pieces with observable size/speed effect here):

* *exit-value rewriting* — out-of-loop uses of the IV (and its increment)
  are replaced by the computed final value when the trip count is a known
  constant, which typically deletes LCSSA phis and sometimes whole loops
  (in concert with ``-loop-deletion``);
* *compare canonicalization* — an equality-convertible exit compare is
  rewritten to ``ne``, the canonical form later passes pattern-match.
"""

from __future__ import annotations

from ...analysis.loops import LoopInfo
from ...ir.instructions import ICmp, Instruction, Phi
from ...ir.module import Function
from ...ir.values import ConstantInt
from ..base import FunctionPass, register_pass
from ..utils import erase_trivially_dead
from .iv import analyze_loop


@register_pass
class IndVarSimplify(FunctionPass):
    """Simplify induction variables."""

    name = "indvars"

    def run_on_function(self, fn: Function) -> bool:
        info = LoopInfo(fn)
        changed = False
        for loop in info.innermost_first():
            bounds = analyze_loop(loop)
            if bounds is None:
                continue
            iv = bounds.iv
            if bounds.trip_count is not None and isinstance(iv.start, ConstantInt):
                trip = bounds.trip_count
                ty = iv.start.int_type
                # Bottom-test: the k-th body execution sees
                # phi = start+(k-1)*step; on exit (after execution `trip`):
                phi_final = ConstantInt(
                    ty, iv.start.value + (trip - 1) * iv.step.value
                )
                inc_final = ConstantInt(ty, iv.start.value + trip * iv.step.value)
                for value, final in ((iv.phi, phi_final), (iv.increment, inc_final)):
                    for use in list(value.uses):
                        user = use.user
                        if not isinstance(user, Instruction) or user.parent is None:
                            continue
                        if isinstance(user, Phi) and use.index % 2 == 0:
                            location = user.incoming_block(use.index // 2)
                        else:
                            location = user.parent
                        if not loop.contains(location):
                            user.set_operand(use.index, final)
                            changed = True

            # Canonicalize `slt/ult` exit compares with exactly-reached
            # bounds to `ne` (safe when start/step/bound are constants and
            # the IV hits the bound exactly).
            cmp = bounds.compare
            if (
                bounds.trip_count is not None
                and isinstance(iv.start, ConstantInt)
                and isinstance(bounds.bound, ConstantInt)
                and bounds.predicate in ("slt", "ult")
                and cmp.predicate in ("slt", "ult")
                and bounds.compares_next
            ):
                reached = iv.start.value + bounds.trip_count * iv.step.value
                if reached == bounds.bound.value and cmp.predicate != "ne":
                    # continue-predicate slt(next, bound) == ne(next, bound)
                    new = ICmp("ne", cmp.lhs, cmp.rhs, cmp.name)
                    new.name = fn.next_name("iv")
                    new.insert_before(cmp)
                    # `ne` is the continue predicate; if the branch exits on
                    # true we must invert, but bounds.predicate was already
                    # normalized to the continue form — mirror the original
                    # branch orientation by reusing the compare slot.
                    if bounds.exit_on_false:
                        cmp.replace_all_uses_with(new)
                        cmp.erase_from_parent()
                        changed = True
                    else:
                        new.erase_from_parent()
        if changed:
            erase_trivially_dead(fn)
        return changed
