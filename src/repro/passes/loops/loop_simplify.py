"""-loop-simplify and -lcssa: canonical loop form.

loop-simplify guarantees every loop a preheader, a single latch and
dedicated exit blocks; lcssa rewrites out-of-loop uses of loop-defined
values through phis in the exit blocks. The other loop passes assume (or
re-check) these shapes, exactly as in LLVM — which is why the two appear
before every loop-pass group in the ``-Oz`` sequence.
"""

from __future__ import annotations

from typing import List

from ...analysis.dominators import DominatorTree
from ...analysis.loops import Loop, LoopInfo
from ...ir.builder import IRBuilder
from ...ir.instructions import Instruction, Phi
from ...ir.module import BasicBlock, Function
from ..base import FunctionPass, register_pass


def _insert_preheader(fn: Function, loop: Loop) -> bool:
    if loop.preheader() is not None:
        return False
    header = loop.header
    outside_preds = [p for p in header.predecessors() if not loop.contains(p)]
    if not outside_preds:
        return False  # unreachable loop; leave alone
    pre = fn.add_block(fn.next_name("preheader"), before=header)
    IRBuilder(pre).br(header)
    for pred in outside_preds:
        term = pred.terminator
        assert term is not None
        for i, op in enumerate(term.operands):
            if op is header:
                term.set_operand(i, pre)
    # Split header phis: the part coming from outside moves into a phi in
    # the preheader (or a direct value if there was a single outside pred).
    for phi in header.phis():
        outside_values = [
            (phi.incoming_for_block(p), p) for p in outside_preds
        ]
        if len(outside_values) == 1:
            value = outside_values[0][0]
        else:
            merged = Phi(phi.type, fn.next_name(phi.name or "ph"))
            pre.insert(0, merged)
            for v, p in outside_values:
                assert v is not None
                merged.add_incoming(v, p)
            value = merged
        for p in outside_preds:
            phi.remove_incoming(p)
        assert value is not None
        phi.add_incoming(value, pre)
    return True


def _merge_latches(fn: Function, loop: Loop) -> bool:
    if len(loop.latches) <= 1:
        return False
    header = loop.header
    latch = fn.add_block(fn.next_name("latch"))
    IRBuilder(latch).br(header)
    loop.add_block(latch)
    for phi in header.phis():
        merged = Phi(phi.type, fn.next_name(phi.name or "lm"))
        latch.insert(0, merged)
        for old in loop.latches:
            value = phi.incoming_for_block(old)
            if value is None:
                continue
            merged.add_incoming(value, old)
            phi.remove_incoming(old)
        phi.add_incoming(merged, latch)
    for old in loop.latches:
        term = old.terminator
        assert term is not None
        for i, op in enumerate(term.operands):
            if op is header:
                term.set_operand(i, latch)
    loop.latches = [latch]
    return True


def _dedicate_exits(fn: Function, loop: Loop) -> bool:
    changed = False
    for exit_block in loop.exit_blocks():
        outside_preds = [
            p for p in exit_block.predecessors() if not loop.contains(p)
        ]
        if not outside_preds:
            continue
        inside_preds = [
            p for p in exit_block.predecessors() if loop.contains(p)
        ]
        dedicated = fn.add_block(fn.next_name("exit"), before=exit_block)
        IRBuilder(dedicated).br(exit_block)
        for pred in inside_preds:
            term = pred.terminator
            assert term is not None
            for i, op in enumerate(term.operands):
                if op is exit_block:
                    term.set_operand(i, dedicated)
        for phi in exit_block.phis():
            inside_values = [
                (phi.incoming_for_block(p), p) for p in inside_preds
            ]
            if not inside_values:
                continue
            if len(inside_values) == 1:
                value = inside_values[0][0]
            else:
                merged = Phi(phi.type, fn.next_name(phi.name or "ex"))
                dedicated.insert(0, merged)
                for v, p in inside_values:
                    assert v is not None
                    merged.add_incoming(v, p)
                value = merged
            for p in inside_preds:
                phi.remove_incoming(p)
            assert value is not None
            phi.add_incoming(value, dedicated)
        changed = True
    return changed


@register_pass
class LoopSimplify(FunctionPass):
    """Put loops in canonical preheader/latch/dedicated-exit form."""

    name = "loop-simplify"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        # Loop structures are invalidated by each fix, so recompute.
        for _ in range(8):
            info = LoopInfo(fn)
            round_changed = False
            for loop in info.loops:
                round_changed |= _insert_preheader(fn, loop)
                round_changed |= _merge_latches(fn, loop)
                round_changed |= _dedicate_exits(fn, loop)
                if round_changed:
                    break  # recompute loop info before continuing
            changed |= round_changed
            if not round_changed:
                break
        return changed


@register_pass
class LCSSA(FunctionPass):
    """Rewrite out-of-loop uses of loop values through exit-block phis."""

    name = "lcssa"

    def run_on_function(self, fn: Function) -> bool:
        info = LoopInfo(fn)
        dom = DominatorTree(fn)
        changed = False
        for loop in info.loops:
            exits = loop.exit_blocks()
            if not exits:
                continue
            for block in list(loop.blocks):
                for inst in list(block.instructions):
                    if inst.type.is_void:
                        continue
                    outside_uses = [
                        use
                        for use in inst.uses
                        if isinstance(use.user, Instruction)
                        and use.user.parent is not None
                        and not loop.contains(
                            use.user.incoming_block(use.index // 2)
                            if isinstance(use.user, Phi) and use.index % 2 == 0
                            else use.user.parent
                        )
                    ]
                    if not outside_uses:
                        continue
                    # Insert a phi in each exit block dominated by the def.
                    exit_phis = {}
                    for exit_block in exits:
                        if not all(
                            loop.contains(p) for p in exit_block.predecessors()
                        ):
                            continue
                        if not all(
                            dom.dominates_block(block, p)
                            for p in exit_block.predecessors()
                        ):
                            continue
                        phi = Phi(inst.type, fn.next_name((inst.name or "v") + ".lcssa"))
                        exit_block.insert(0, phi)
                        for pred in exit_block.predecessors():
                            phi.add_incoming(inst, pred)
                        exit_phis[id(exit_block)] = phi
                    if not exit_phis:
                        continue
                    for use in outside_uses:
                        user = use.user
                        location = (
                            user.incoming_block(use.index // 2)
                            if isinstance(user, Phi) and use.index % 2 == 0
                            else user.parent
                        )
                        replacement = None
                        for exit_id, phi in exit_phis.items():
                            if phi.parent is not None and dom.dominates_block(
                                phi.parent, location
                            ):
                                replacement = phi
                                break
                        if replacement is not None and user is not replacement:
                            user.set_operand(use.index, replacement)
                            changed = True
                    # Clean up unused phis we speculatively inserted.
                    for phi in list(exit_phis.values()):
                        if not phi.has_uses:
                            phi.erase_from_parent()
        return changed
