"""-loop-deletion: remove loops that provably terminate and whose results
are never observed (no side effects, no values used outside the loop).

After ``-indvars`` rewrites exit values to constants, counting loops whose
results were only the IV become deletable — the classic pairing in the Oz
pipeline (sub-sequence 8 of Table II).
"""

from __future__ import annotations

from ...analysis.loops import Loop, LoopInfo
from ...ir.instructions import Instruction, Phi
from ...ir.module import Function
from ..base import FunctionPass, register_pass
from ..utils import erase_trivially_dead
from .iv import analyze_loop


def _deletable(loop: Loop) -> bool:
    preheader = loop.preheader()
    if preheader is None:
        return False
    exits = loop.exit_blocks()
    if len(exits) != 1:
        return False
    exit_block = exits[0]
    if any(not loop.contains(p) for p in exit_block.predecessors()):
        return False
    # Terminates?
    bounds = analyze_loop(loop)
    if bounds is None or bounds.trip_count is None:
        return False
    # Pure?
    for block in loop.blocks:
        for inst in block.instructions:
            if inst.is_terminator:
                continue
            if inst.has_side_effects:
                return False
    # Unobserved? No loop-defined value used outside the loop (a use in an
    # exit-block phi counts as outside).
    for block in loop.blocks:
        for inst in block.instructions:
            if inst.type.is_void:
                continue
            for use in inst.uses:
                user = use.user
                if not isinstance(user, Instruction) or user.parent is None:
                    return False
                location = (
                    user.incoming_block(use.index // 2)
                    if isinstance(user, Phi) and use.index % 2 == 0
                    else user.parent
                )
                if isinstance(user, Phi) and user.parent is exit_block:
                    return False
                if not loop.contains(location):
                    return False
    return True


def _delete(fn: Function, loop: Loop) -> None:
    preheader = loop.preheader()
    exit_block = loop.exit_blocks()[0]
    assert preheader is not None
    term = preheader.terminator
    assert term is not None
    # Exit phis: all incoming are from in-loop preds with loop-invariant
    # values (checked in _deletable); re-route them through the preheader.
    exiting = [p for p in exit_block.predecessors() if loop.contains(p)]
    for phi in exit_block.phis():
        values = {id(phi.incoming_for_block(p)) for p in exiting}
        keep = phi.incoming_for_block(exiting[0])
        for p in exiting:
            phi.remove_incoming(p)
        assert keep is not None and len(values) == 1
        phi.add_incoming(keep, preheader)
    for i, op in enumerate(term.operands):
        if op is loop.header:
            term.set_operand(i, exit_block)
    for block in loop.blocks:
        for inst in list(block.instructions):
            inst.drop_all_operands()
    for block in loop.blocks:
        block.erase_from_parent()


@register_pass
class LoopDeletion(FunctionPass):
    """Delete dead, terminating loops."""

    name = "loop-deletion"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        for _ in range(4):
            info = LoopInfo(fn)
            round_changed = False
            for loop in info.innermost_first():
                if _deletable(loop):
                    # Exit phis with differing incoming values cannot be
                    # re-routed through the preheader; re-check cheaply.
                    exit_block = loop.exit_blocks()[0]
                    exiting = [
                        p
                        for p in exit_block.predecessors()
                        if loop.contains(p)
                    ]
                    distinct = {
                        id(phi.incoming_for_block(p))
                        for phi in exit_block.phis()
                        for p in exiting
                    }
                    per_phi_ok = all(
                        len(
                            {
                                id(phi.incoming_for_block(p))
                                for p in exiting
                            }
                        )
                        == 1
                        for phi in exit_block.phis()
                    )
                    if not per_phi_ok:
                        continue
                    _delete(fn, loop)
                    round_changed = True
                    break
            changed |= round_changed
            if not round_changed:
                break
        if changed:
            erase_trivially_dead(fn)
        return changed
