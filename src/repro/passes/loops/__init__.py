"""Loop optimization passes."""

from . import (  # noqa: F401 - importing registers the passes
    indvars,
    licm,
    loop_deletion,
    loop_distribute,
    loop_idiom,
    loop_rotate,
    loop_simplify,
    loop_unroll,
    loop_unswitch,
    loop_vectorize,
)
