"""-loop-unroll: full unrolling of small constant-trip-count loops.

At ``-Oz`` LLVM only unrolls when it will not grow code, so the thresholds
here are deliberately tight: single-block loops with a known trip count
whose unrolled size stays under a small budget. The loop body is cloned
trip-count times straight into the preheader and the loop block deleted.
"""

from __future__ import annotations

from typing import Dict, List

from ...analysis.loops import Loop, LoopInfo
from ...ir.instructions import Instruction, Phi
from ...ir.module import Function
from ...ir.values import Value
from ..base import FunctionPass, register_pass
from ..utils import erase_trivially_dead
from .iv import analyze_loop

#: Unrolled body may not exceed this many instructions.
UNROLL_SIZE_BUDGET = 48
#: Max trip count considered for full unrolling.
UNROLL_MAX_TRIP = 16


def _full_unroll(
    fn: Function,
    loop: Loop,
    size_budget: int = UNROLL_SIZE_BUDGET,
    max_trip: int = UNROLL_MAX_TRIP,
) -> bool:
    if len(loop.blocks) != 1:
        return False
    header = loop.header
    if loop.single_latch is not header:
        return False
    preheader = loop.preheader()
    if preheader is None:
        return False
    exits = loop.exit_blocks()
    if len(exits) != 1:
        return False
    exit_block = exits[0]
    if any(p is not header for p in exit_block.predecessors()):
        return False

    bounds = analyze_loop(loop)
    if bounds is None or bounds.trip_count is None:
        return False
    trip = bounds.trip_count
    if trip < 1 or trip > max_trip:
        return False
    body = [
        i
        for i in header.instructions
        if not isinstance(i, Phi) and not i.is_terminator
    ]
    if trip * len(body) > size_budget:
        return False

    phis = header.phis()
    # current[] maps header values to their value entering iteration k.
    current: Dict[int, Value] = {}
    for phi in phis:
        start = phi.incoming_for_block(preheader)
        assert start is not None
        current[id(phi)] = start

    pre_term = preheader.terminator
    assert pre_term is not None

    latch_values = {
        id(phi): phi.incoming_for_block(header) for phi in phis
    }

    iteration_map: Dict[int, Value] = dict(current)
    for _ in range(trip):
        iteration_map = dict(current)
        for inst in body:
            clone = inst.clone_impl(
                [iteration_map.get(id(op), op) for op in inst.operands]
            )
            clone.meta = dict(inst.meta)
            if not clone.type.is_void:
                clone.name = fn.next_name(inst.name or "u")
            clone.insert_before(pre_term)
            iteration_map[id(inst)] = clone
        for phi in phis:
            next_value = latch_values[id(phi)]
            assert next_value is not None
            current[id(phi)] = iteration_map.get(id(next_value), next_value)
        # Non-phi header values carry their latest clone forward.
        for inst in body:
            current[id(inst)] = iteration_map[id(inst)]

    # Values observed at the exit are those of the *final* iteration: a
    # header phi's exit-visible value is its value on entry to the last
    # body execution (iteration_map), not the would-be next-iteration value
    # (current).
    final_values = iteration_map

    # Retarget the preheader at the exit, bypassing the loop entirely.
    for i, op in enumerate(pre_term.operands):
        if op is header:
            pre_term.set_operand(i, exit_block)

    # Exit-block phis: their header incoming becomes the final unrolled
    # value, now arriving from the preheader.
    for phi in exit_block.phis():
        incoming = phi.incoming_for_block(header)
        if incoming is None:
            continue
        final = final_values.get(id(incoming), incoming)
        phi.remove_incoming(header)
        phi.add_incoming(final, preheader)

    # Any other out-of-loop uses of loop-defined values get final values.
    for inst in list(header.instructions):
        if inst.type.is_void:
            continue
        final = final_values.get(id(inst))
        if final is not None and inst.has_uses:
            inst.replace_all_uses_with(final)

    header.erase_from_parent()
    erase_trivially_dead(fn)
    return True


@register_pass
class LoopUnroll(FunctionPass):
    """Fully unroll tiny constant-trip-count loops."""

    name = "loop-unroll"

    def __init__(
        self,
        size_budget: int = UNROLL_SIZE_BUDGET,
        max_trip: int = UNROLL_MAX_TRIP,
    ):
        self.size_budget = size_budget
        self.max_trip = max_trip

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        for _ in range(4):
            info = LoopInfo(fn)
            round_changed = False
            for loop in info.innermost_first():
                if _full_unroll(fn, loop, self.size_budget, self.max_trip):
                    round_changed = True
                    break
            changed |= round_changed
            if not round_changed:
                break
        return changed
