"""Induction-variable analysis shared by the loop passes.

Recognizes the canonical affine IV ``i = phi(start, i + step)`` and, when
the exit compare is affine in it, computes the loop trip count. indvars,
loop-unroll, loop-deletion, loop-idiom and loop-vectorize all key off
:func:`analyze_loop`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...analysis.loops import Loop
from ...ir.instructions import BinaryOp, Branch, ICmp, Phi
from ...ir.module import BasicBlock
from ...ir.types import IntType
from ...ir.values import ConstantInt, Value


@dataclass
class BasicIV:
    """An affine induction variable ``phi(start, phi + step)``."""

    phi: Phi
    start: Value
    step: ConstantInt
    increment: BinaryOp  # the `add` producing the next value


@dataclass
class LoopBounds:
    """Exit condition ``icmp pred (iv | iv.next), bound`` controlling the
    sole exiting block, plus the trip count when it is computable."""

    iv: BasicIV
    compare: ICmp
    predicate: str
    bound: Value
    compares_next: bool  # True if the compare reads iv.next, not iv
    exit_on_false: bool  # True if the loop continues on `true`
    trip_count: Optional[int]  # constant trip count if known


def find_basic_iv(loop: Loop) -> Optional[BasicIV]:
    """Find an IV among the header phis: i = phi(start from outside,
    add(i, C) from the latch).

    The entry edge requirement is a *unique outside predecessor* — weaker
    than a canonical preheader, so analysis (trip counts, block
    frequencies) stays accurate even after simplifycfg folds empty
    preheaders away. Transformation passes impose their own, stricter
    preheader checks.
    """
    latch = loop.single_latch
    if latch is None:
        return None
    outside = [p for p in loop.header.predecessors() if not loop.contains(p)]
    if len(outside) != 1:
        return None
    entry_pred = outside[0]
    for phi in loop.header.phis():
        if phi.num_incoming != 2 or not isinstance(phi.type, IntType):
            continue
        start = phi.incoming_for_block(entry_pred)
        next_value = phi.incoming_for_block(latch)
        if start is None or next_value is None:
            continue
        if (
            isinstance(next_value, BinaryOp)
            and next_value.opcode == "add"
            and isinstance(next_value.rhs, ConstantInt)
            and next_value.lhs is phi
            and not next_value.rhs.is_zero()
            and loop.contains(next_value.parent)  # type: ignore[arg-type]
        ):
            return BasicIV(phi, start, next_value.rhs, next_value)
    return None


def _compute_trip_count(
    start: Value, step: int, predicate: str, bound: Value, compares_next: bool
) -> Optional[int]:
    """Iterations executed, for constant start/bound. The compare governs
    whether the loop *continues*; iteration k sees iv = start + k*step
    (or iv.next = start + (k+1)*step when ``compares_next``)."""
    if not (isinstance(start, ConstantInt) and isinstance(bound, ConstantInt)):
        return None
    s = start.value
    b = bound.value
    checks = {
        "slt": lambda x: x < b,
        "sle": lambda x: x <= b,
        "sgt": lambda x: x > b,
        "sge": lambda x: x >= b,
        "ne": lambda x: x != b,
        "ult": lambda x: (x & mask) < (b & mask),
        "ule": lambda x: (x & mask) <= (b & mask),
        "ugt": lambda x: (x & mask) > (b & mask),
        "uge": lambda x: (x & mask) >= (b & mask),
    }
    ty = start.int_type
    mask = ty.max_unsigned
    check = checks.get(predicate)
    if check is None:
        return None
    # Simulate up to a bound; loops we care about are modest. Wrapping
    # arithmetic is honoured via ty.wrap. Convention (bottom-test): the
    # body runs, then the check decides whether to take the back edge, so
    # the k-th body execution sees iv = start + (k-1)*step. The returned
    # count is the number of body executions, including the one whose
    # check fails.
    ty = start.int_type
    iv = s
    for k in range(1, 1 << 16):
        probe = ty.wrap(iv + step) if compares_next else iv
        if not check(probe):
            return k
        iv = ty.wrap(iv + step)
    return None


def analyze_loop(loop: Loop) -> Optional[LoopBounds]:
    """Full bounds analysis for single-exiting-block loops."""
    iv = find_basic_iv(loop)
    if iv is None:
        return None
    exiting = loop.exiting_blocks()
    if len(exiting) != 1:
        return None
    block = exiting[0]
    term = block.terminator
    if not isinstance(term, Branch) or not term.is_conditional:
        return None
    cond = term.condition
    if not isinstance(cond, ICmp):
        return None

    if cond.lhs is iv.phi:
        compares_next = False
    elif cond.lhs is iv.increment:
        compares_next = True
    else:
        return None
    bound = cond.rhs

    # Which target leaves the loop?
    true_exits = not loop.contains(term.true_target)
    false_exits = not loop.contains(term.false_target)
    if true_exits == false_exits:
        return None
    exit_on_false = false_exits

    # Normalize: we want the predicate under which the loop CONTINUES.
    predicate = cond.predicate
    if true_exits:
        from ...ir.instructions import INVERTED_PREDICATE

        predicate = INVERTED_PREDICATE[predicate]

    # The bound must be loop-invariant.
    from ...ir.instructions import Instruction

    if isinstance(bound, Instruction) and loop.contains(bound.parent):  # type: ignore[arg-type]
        return None

    # The simulated trip count uses bottom-test semantics (body runs, then
    # the check decides the back edge); it is only meaningful when the
    # exiting block is the latch.
    trip = None
    if block is loop.single_latch:
        trip = _compute_trip_count(
            iv.start, iv.step.value, predicate, bound, compares_next
        )
    return LoopBounds(
        iv=iv,
        compare=cond,
        predicate=predicate,
        bound=bound,
        compares_next=compares_next,
        exit_on_false=exit_on_false,
        trip_count=trip,
    )
