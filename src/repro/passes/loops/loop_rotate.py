"""-loop-rotate: turn top-test (while) loops into bottom-test (do-while)
form guarded by one copy of the test.

Shape required (checked, else the loop is left alone):

* preheader ``P`` (single edge into the header),
* header ``H`` is the unique exiting block, ending ``br cond, B, E``
  with ``B`` in the loop and ``E`` the unique, dedicated exit,
* single latch.

The header body (everything but phis and the terminator) is cloned into
``P`` — this is the first iteration's execution, moved, not duplicated,
because ``P`` then branches straight to ``B``/``E`` past ``H``. Values
defined in ``H`` and used elsewhere are stitched up with phis in ``B`` and
``E``. Rotation is what lets LICM hoist into a block guarded by the loop
test — its classic role, and why ``-Oz`` always pairs them.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...analysis.loops import Loop, LoopInfo
from ...ir.builder import IRBuilder
from ...ir.instructions import Branch, Instruction, Phi
from ...ir.module import BasicBlock, Function
from ...ir.values import Value
from ..base import FunctionPass, register_pass

#: Do not duplicate header bodies larger than this into the preheader.
ROTATION_SIZE_LIMIT = 16


def _rotate(fn: Function, loop: Loop) -> bool:
    header = loop.header
    preheader = loop.preheader()
    latch = loop.single_latch
    if preheader is None or latch is None or latch is header:
        return False  # already bottom-test (or not canonical)

    term = header.terminator
    if not isinstance(term, Branch) or not term.is_conditional:
        return False
    exiting = loop.exiting_blocks()
    if exiting != [header]:
        return False
    exits = loop.exit_blocks()
    if len(exits) != 1:
        return False
    exit_block = exits[0]
    if any(not loop.contains(p) for p in exit_block.predecessors()):
        return False  # needs dedicated exit (loop-simplify provides it)

    if loop.contains(term.true_target):
        body_target, exit_target = term.true_target, term.false_target
    else:
        body_target, exit_target = term.false_target, term.true_target
    if exit_target is not exit_block or body_target is header:
        return False

    body = [
        i for i in header.instructions if not isinstance(i, Phi) and i is not term
    ]
    if len(body) > ROTATION_SIZE_LIMIT:
        return False

    # A latch incoming defined in the header itself (loop-carried through
    # the header's own body, or an inter-dependent phi pair) cannot be
    # substituted for the phi in straight-line order; bail on those shapes.
    for phi in header.phis():
        latch_value = phi.incoming_for_block(latch)
        if (
            isinstance(latch_value, Instruction)
            and latch_value.parent is header
        ):
            return False

    # --- clone the header body into the preheader -------------------------
    vmap: Dict[int, Value] = {}
    for phi in header.phis():
        from_pre = phi.incoming_for_block(preheader)
        assert from_pre is not None
        vmap[id(phi)] = from_pre
    pre_term = preheader.terminator
    assert pre_term is not None
    for inst in body:
        clone = inst.clone_impl([vmap.get(id(op), op) for op in inst.operands])
        clone.meta = dict(inst.meta)
        if not clone.type.is_void:
            clone.name = fn.next_name(inst.name or "rot")
        clone.insert_before(pre_term)
        vmap[id(inst)] = clone

    # --- retarget the preheader: cond branch to body/exit ------------------
    cond = term.condition
    new_cond = vmap.get(id(cond), cond)
    pre_term.erase_from_parent()
    pre_builder = IRBuilder(preheader)
    if loop.contains(term.true_target):
        pre_builder.cond_br(new_cond, body_target, exit_block)
    else:
        pre_builder.cond_br(new_cond, exit_block, body_target)

    # --- stitch values defined in H into B and E ----------------------------
    # Collect (value-in-H, value-from-P) pairs that need merging.
    merged: List = []
    for phi in header.phis():
        latch_value = phi.incoming_for_block(latch)
        assert latch_value is not None
        merged.append((phi, vmap[id(phi)], latch_value))
    for inst in body:
        if not inst.type.is_void:
            merged.append((inst, vmap[id(inst)], inst))

    def stitch(target: BasicBlock) -> Dict[int, Phi]:
        """Create phis in `target` merging P-path and H-path values."""
        phis: Dict[int, Phi] = {}
        other_preds = [
            p for p in target.predecessors() if p is not preheader and p is not header
        ]
        for original, from_pre, in_loop in merged:
            phi = Phi(original.type, fn.next_name((original.name or "r") + ".rot"))
            target.insert(0, phi)
            phi.add_incoming(from_pre, preheader)
            phi.add_incoming(in_loop, header)
            for pred in other_preds:
                # Other in-loop edges into B do not pass H, so the value is
                # unchanged since B was last entered: the phi itself.
                phi.add_incoming(phi, pred)
            phis[id(original)] = phi
        return phis

    body_phis = stitch(body_target)
    exit_phis = stitch(exit_block)

    # Existing phis in B/E that had an incoming from H need one from P too.
    for target in (body_target, exit_block):
        for phi in target.phis():
            incoming_h = phi.incoming_for_block(header)
            if incoming_h is None or phi.incoming_for_block(preheader) is not None:
                continue
            mapped = vmap.get(id(incoming_h), incoming_h)
            phi.add_incoming(mapped, preheader)

    # --- rewrite uses -------------------------------------------------------
    header_ids = {id(i) for i in header.instructions}
    for original, from_pre, in_loop in merged:
        for use in list(original.uses):
            user = use.user
            if not isinstance(user, Instruction) or user.parent is None:
                continue
            if user.parent is header:
                continue  # stays on the H path
            if isinstance(user, Phi):
                if use.index % 2 == 1:
                    continue
                pred = user.incoming_block(use.index // 2)
                if pred is header:
                    continue  # the H-path incoming we created/kept
                location = pred
            else:
                location = user.parent
            if id(user) in {id(p) for p in body_phis.values()} or id(user) in {
                id(p) for p in exit_phis.values()
            }:
                continue
            # In-loop uses see the B phi; out-of-loop uses see the E phi.
            if loop.contains(location):
                user.set_operand(use.index, body_phis[id(original)])
            else:
                user.set_operand(use.index, exit_phis[id(original)])

    # --- header phis now have a single pred (the latch) ----------------------
    for phi in list(header.phis()):
        phi.remove_incoming(preheader)
        latch_value = phi.incoming_for_block(latch)
        assert latch_value is not None
        phi.replace_all_uses_with(latch_value)
        phi.erase_from_parent()

    # Drop unused stitch phis.
    for phis in (body_phis, exit_phis):
        for phi in phis.values():
            if phi.parent is not None and not phi.has_uses:
                phi.erase_from_parent()
    return True


@register_pass
class LoopRotate(FunctionPass):
    """Rotate while-loops into guarded do-while form."""

    name = "loop-rotate"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        for _ in range(4):
            info = LoopInfo(fn)
            round_changed = False
            for loop in info.innermost_first():
                if _rotate(fn, loop):
                    round_changed = True
                    break  # loop structures invalidated; recompute
            changed |= round_changed
            if not round_changed:
                break
        return changed
