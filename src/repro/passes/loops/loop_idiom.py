"""-loop-idiom: recognize memset/memcpy loops.

A single-block counting loop that only fills ``base[i]`` with a splat
constant becomes one ``llvm.memset`` call; one that only copies
``dst[i] = src[i]`` between provably distinct objects becomes
``llvm.memcpy``. Both huge code-size wins — this is among the most
valuable passes the RL agent can schedule for the size reward.
"""

from __future__ import annotations

from typing import List, Optional

from ...analysis.loops import Loop, LoopInfo
from ...analysis.memdep import underlying_object
from ...ir.instructions import (
    Alloca,
    Call,
    Cast,
    GetElementPtr,
    Instruction,
    Load,
    Phi,
    Store,
)
from ...ir.module import Function, Module
from ...ir.types import FunctionType, IntType, PointerType, I8, I64, VOID
from ...ir.values import ConstantInt, GlobalVariable, Value
from ..base import FunctionPass, register_pass
from ..utils import erase_trivially_dead
from .iv import BasicIV, LoopBounds, analyze_loop
from .licm import is_loop_invariant


def _get_intrinsic(module: Module, name: str, params) -> "Function":
    from ...ir.module import Function as Fn

    fn = module.get_or_insert_function(name, FunctionType(VOID, params))
    fn.attributes.add("nounwind")
    return fn


def _splat_byte(value: Value) -> Optional[int]:
    if not isinstance(value, ConstantInt):
        return None
    raw = value.unsigned.to_bytes(value.type.size, "little")
    return raw[0] if all(b == raw[0] for b in raw) else None


def _unit_stride_gep(
    loop: Loop, pointer: Value, iv: BasicIV
) -> Optional[Value]:
    """If ``pointer`` is a unit-stride access ``gep base, iv`` (pointer
    form) or ``gep base, 0, iv`` (array form) with an invariant base,
    return the base."""
    if not isinstance(pointer, GetElementPtr):
        return None
    indices = pointer.indices
    if len(indices) == 1 and indices[0] is iv.phi:
        pass
    elif (
        len(indices) == 2
        and isinstance(indices[0], ConstantInt)
        and indices[0].is_zero()
        and indices[1] is iv.phi
    ):
        pass
    else:
        return None
    base = pointer.pointer
    if not is_loop_invariant(loop, base):
        return None
    return base


def _replace_loop_with(fn: Function, loop: Loop, replacement_insts) -> None:
    """Route the preheader straight to the exit, inserting ``replacement``
    instructions before the preheader terminator, then delete the loop."""
    preheader = loop.preheader()
    exit_block = loop.exit_blocks()[0]
    assert preheader is not None
    term = preheader.terminator
    assert term is not None
    for inst in replacement_insts:
        inst.insert_before(term)
    exiting = [p for p in exit_block.predecessors() if loop.contains(p)]
    for phi in exit_block.phis():
        keep = phi.incoming_for_block(exiting[0])
        for p in exiting:
            phi.remove_incoming(p)
        assert keep is not None
        phi.add_incoming(keep, preheader)
    for i, op in enumerate(term.operands):
        if op is loop.header:
            term.set_operand(i, exit_block)
    for block in loop.blocks:
        for inst in list(block.instructions):
            inst.drop_all_operands()
    for block in loop.blocks:
        block.erase_from_parent()


def _check_structure(fn: Function, loop: Loop) -> Optional[LoopBounds]:
    if len(loop.blocks) != 1:
        return None
    if loop.preheader() is None:
        return None
    exits = loop.exit_blocks()
    if len(exits) != 1:
        return None
    if any(not loop.contains(p) for p in exits[0].predecessors()):
        return None
    bounds = analyze_loop(loop)
    if bounds is None or bounds.trip_count is None:
        return None
    if bounds.iv.step.value != 1 or not isinstance(bounds.iv.start, ConstantInt):
        return None
    # No loop value may be observed outside (exit phis must be invariant),
    # mirroring loop-deletion's check.
    exit_block = exits[0]
    for block in loop.blocks:
        for inst in block.instructions:
            if inst.type.is_void:
                continue
            for use in inst.uses:
                user = use.user
                if not isinstance(user, Instruction) or user.parent is None:
                    return None
                if user.parent is exit_block and isinstance(user, Phi):
                    return None
                location = (
                    user.incoming_block(use.index // 2)
                    if isinstance(user, Phi) and use.index % 2 == 0
                    else user.parent
                )
                if not loop.contains(location):
                    return None
    return bounds


def _try_idiom(fn: Function, loop: Loop) -> bool:
    bounds = _check_structure(fn, loop)
    if bounds is None:
        return False
    iv = bounds.iv
    header = loop.header

    stores = [i for i in header.instructions if isinstance(i, Store)]
    loads = [i for i in header.instructions if isinstance(i, Load)]
    impure = [
        i
        for i in header.instructions
        if i.has_side_effects and not i.is_terminator and not isinstance(i, Store)
    ]
    if impure or len(stores) != 1:
        return False
    store = stores[0]
    dst_base = _unit_stride_gep(loop, store.pointer, iv)
    if dst_base is None:
        return False
    elem_ty = store.value.type
    if not isinstance(elem_ty, IntType):
        return False
    size = elem_ty.size
    trip = bounds.trip_count
    assert trip is not None and isinstance(iv.start, ConstantInt)
    start = iv.start.value
    total = trip * size
    if total < 8:
        return False
    module = fn.module
    assert module is not None

    def dst_pointer(base: Value, insts: List[Instruction]) -> Value:
        cast = Cast("bitcast", base, PointerType(I8), fn.next_name("li"))
        insts.append(cast)
        if start == 0:
            return cast
        gep = GetElementPtr(cast, [ConstantInt(I64, start * size)], fn.next_name("li"))
        insts.append(gep)
        return gep

    # memset: the stored value is a splat constant.
    byte = _splat_byte(store.value)
    if byte is not None and not loads:
        memset = _get_intrinsic(
            module, "llvm.memset.p0i8.i64", [PointerType(I8), I8, I64]
        )
        insts: List[Instruction] = []
        dst = dst_pointer(dst_base, insts)
        insts.append(
            Call(memset, [dst, ConstantInt(I8, byte), ConstantInt(I64, total)])
        )
        _replace_loop_with(fn, loop, insts)
        return True

    # memcpy: the stored value is a load of src[i] from a distinct object.
    if len(loads) == 1 and store.value is loads[0]:
        load = loads[0]
        src_base = _unit_stride_gep(loop, load.pointer, iv)
        if src_base is None or load.type != elem_ty:
            return False
        a = underlying_object(src_base)
        b = underlying_object(dst_base)
        identified = (Alloca, GlobalVariable)
        if not (
            isinstance(a, identified) and isinstance(b, identified) and a is not b
        ):
            return False
        memcpy = _get_intrinsic(
            module,
            "llvm.memcpy.p0i8.p0i8.i64",
            [PointerType(I8), PointerType(I8), I64],
        )
        insts = []
        dst = dst_pointer(dst_base, insts)
        src_cast = Cast("bitcast", src_base, PointerType(I8), fn.next_name("li"))
        insts.append(src_cast)
        src: Value = src_cast
        if start:
            src_gep = GetElementPtr(
                src_cast, [ConstantInt(I64, start * size)], fn.next_name("li")
            )
            insts.append(src_gep)
            src = src_gep
        insts.append(Call(memcpy, [dst, src, ConstantInt(I64, total)]))
        _replace_loop_with(fn, loop, insts)
        return True
    return False


@register_pass
class LoopIdiom(FunctionPass):
    """Collapse memset/memcpy-shaped loops into intrinsic calls."""

    name = "loop-idiom"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        for _ in range(4):
            info = LoopInfo(fn)
            round_changed = False
            for loop in info.innermost_first():
                if _try_idiom(fn, loop):
                    round_changed = True
                    break
            changed |= round_changed
            if not round_changed:
                break
        if changed:
            erase_trivially_dead(fn)
        return changed
