"""-loop-vectorize: innermost-loop auto-vectorization (VF = 4).

Handles the canonical profile produced by ``-loop-rotate`` +
``-loop-distribute``: a single-block counting loop with unit-stride
``gep(base, i)`` accesses and elementwise arithmetic. The trip count must
be a known constant divisible by the vector factor, so no scalar epilogue
is needed and the transformation is exactly semantics-preserving.

Vectorization usually *grows* code slightly (splat setup) while cutting
cycles ~VF-fold — the mirror image of the unswitch tradeoff, giving the RL
agent a genuine scheduling decision under the combined reward.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...analysis.loops import Loop, LoopInfo
from ...ir.builder import IRBuilder
from ...ir.instructions import (
    BinaryOp,
    Branch,
    Cast,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Store,
)
from ...ir.module import BasicBlock, Function
from ...ir.types import IntType, PointerType, VectorType
from ...ir.values import Constant, ConstantInt, ConstantVector, Value
from ..base import FunctionPass, register_pass
from ..utils import erase_trivially_dead
from .iv import analyze_loop
from .licm import is_loop_invariant

VF = 4  # vector factor


def _vectorize(fn: Function, loop: Loop) -> bool:
    if len(loop.blocks) != 1:
        return False
    header = loop.header
    preheader = loop.preheader()
    if preheader is None:
        return False
    exits = loop.exit_blocks()
    if len(exits) != 1:
        return False
    exit_block = exits[0]
    if any(not loop.contains(p) for p in exit_block.predecessors()):
        return False
    bounds = analyze_loop(loop)
    if (
        bounds is None
        or bounds.trip_count is None
        or bounds.trip_count < VF * 2
        or bounds.trip_count % VF != 0
        or bounds.iv.step.value != 1
        or not isinstance(bounds.iv.start, ConstantInt)
    ):
        return False
    iv = bounds.iv

    # No loop value observed outside.
    for inst in header.instructions:
        if inst.type.is_void:
            continue
        for use in inst.uses:
            user = use.user
            if not isinstance(user, Instruction) or user.parent is not header:
                return False

    # Classify the body. Every instruction must fit a known role.
    geps: List[GetElementPtr] = []
    body: List[Instruction] = []
    for inst in header.instructions:
        if inst is iv.phi or inst is iv.increment or inst is bounds.compare:
            continue
        if inst.is_terminator:
            continue
        if isinstance(inst, Phi):
            return False  # reductions/recurrences not handled
        if isinstance(inst, GetElementPtr):
            indices = inst.indices
            unit_stride = (
                len(indices) == 1 and indices[0] is iv.phi
            ) or (
                len(indices) == 2
                and isinstance(indices[0], ConstantInt)
                and indices[0].is_zero()
                and indices[1] is iv.phi
            )
            if unit_stride and is_loop_invariant(loop, inst.pointer):
                geps.append(inst)
                continue
            return False
        if isinstance(inst, Load):
            if not isinstance(inst.pointer, GetElementPtr):
                return False
            body.append(inst)
            continue
        if isinstance(inst, Store):
            if not isinstance(inst.pointer, GetElementPtr):
                return False
            body.append(inst)
            continue
        if isinstance(inst, BinaryOp) and not inst.is_division:
            if not (isinstance(inst.type, IntType) or inst.type.is_float):
                return False
            body.append(inst)
            continue
        return False
    gep_ids = {id(g) for g in geps}
    body_ids = {id(b) for b in body}

    def defined_value_ok(value: Value) -> bool:
        if isinstance(value, Constant) or is_loop_invariant(loop, value):
            return True
        return id(value) in body_ids or value is iv.phi

    for inst in body:
        pointer = inst.pointer if isinstance(inst, (Load, Store)) else None
        if pointer is not None and id(pointer) not in gep_ids:
            return False
        for op in inst.operands:
            if op is pointer:
                continue  # the unit-stride gep, handled structurally
            if isinstance(op, GetElementPtr) and id(op) in gep_ids:
                return False  # loop geps may only be memory addresses
            if not defined_value_ok(op):
                return False

    # Same-index accesses mean no cross-lane dependences; distinct lanes of
    # the same vector iteration touch distinct addresses.

    # --- emit the vector loop ---------------------------------------------
    start = iv.start
    trip = bounds.trip_count
    elem_splats: Dict[int, Value] = {}

    vheader = fn.add_block(fn.next_name("vec.body"))
    vb = IRBuilder(vheader)

    def splat(value: Value, ty: VectorType) -> Value:
        from ...ir.values import ConstantFloat, UndefValue
        from ...ir.instructions import InsertElement

        if isinstance(value, (ConstantInt, ConstantFloat)):
            return ConstantVector.splat(ty, value)
        key = (id(value), ty._key())
        cached = elem_splats.get(key)  # type: ignore[arg-type]
        if cached is not None:
            return cached
        # Build the splat in the preheader with insertelements.
        pre_term = preheader.terminator
        vec: Value = UndefValue(ty)
        for lane in range(ty.count):
            node = InsertElement(vec, value, ConstantInt(IntType(32), lane))
            node.name = fn.next_name("splat")
            node.insert_before(pre_term)
            vec = node
        elem_splats[key] = vec  # type: ignore[index]
        return vec

    viv = Phi(iv.phi.type, fn.next_name("viv"))
    vheader.append(viv)
    vmap: Dict[int, Value] = {}

    for inst in header.instructions:
        if inst is iv.phi or inst is iv.increment or inst is bounds.compare:
            continue
        if inst.is_terminator or isinstance(inst, GetElementPtr):
            continue
        if isinstance(inst, Load):
            gep = inst.pointer
            assert isinstance(gep, GetElementPtr)
            vty = VectorType(inst.type, VF)
            addr = vb.gep(gep.pointer, _vec_indices(gep, iv, viv), fn.next_name("vg"))
            vptr = vb.bitcast(addr, PointerType(vty), fn.next_name("vp"))
            vmap[id(inst)] = vb.load(vptr, fn.next_name("vl"))
        elif isinstance(inst, Store):
            gep = inst.pointer
            assert isinstance(gep, GetElementPtr)
            elem_ty = inst.value.type
            vty = VectorType(elem_ty, VF)
            value = vmap.get(id(inst.value))
            if value is None:
                if inst.value is iv.phi:
                    value = _iv_vector(vb, fn, viv, vty)
                else:
                    value = splat(inst.value, vty)
            addr = vb.gep(gep.pointer, _vec_indices(gep, iv, viv), fn.next_name("vg"))
            vptr = vb.bitcast(addr, PointerType(vty), fn.next_name("vp"))
            vb.store(value, vptr)
        elif isinstance(inst, BinaryOp):
            vty = VectorType(inst.type, VF)  # type: ignore[arg-type]

            def vec_operand(op: Value) -> Value:
                mapped = vmap.get(id(op))
                if mapped is not None:
                    return mapped
                if op is iv.phi:
                    return _iv_vector(vb, fn, viv, vty)
                return splat(op, vty)

            vmap[id(inst)] = vb.binary(
                inst.opcode,
                vec_operand(inst.lhs),
                vec_operand(inst.rhs),
                fn.next_name("vo"),
            )

    next_viv = vb.add(viv, ConstantInt(iv.phi.type, VF), fn.next_name("viv.next"))  # type: ignore[arg-type]
    end = ConstantInt(iv.phi.type, start.value + trip)  # type: ignore[arg-type]
    vcond = vb.icmp("ne", next_viv, end, fn.next_name("vc"))
    vb.cond_br(vcond, vheader, exit_block)
    viv.add_incoming(start, preheader)
    viv.add_incoming(next_viv, vheader)

    # Rewire preheader to the vector loop and retire the scalar loop.
    pre_term = preheader.terminator
    assert pre_term is not None
    for i, op in enumerate(pre_term.operands):
        if op is header:
            pre_term.set_operand(i, vheader)
    for phi in exit_block.phis():
        for i in range(phi.num_incoming):
            if phi.incoming_block(i) is header:
                phi.set_operand(2 * i + 1, vheader)
    for inst in list(header.instructions):
        inst.drop_all_operands()
    header.erase_from_parent()
    erase_trivially_dead(fn)
    return True


def _vec_indices(gep: GetElementPtr, iv, viv: Value):
    """The original gep's indices with the IV replaced by the vector IV."""
    return [viv if idx is iv.phi else idx for idx in gep.indices]


def _iv_vector(vb: IRBuilder, fn: Function, viv: Value, vty: VectorType) -> Value:
    """<viv, viv+1, viv+2, viv+3> built as splat(viv) + <0,1,2,3> once per
    vector-loop iteration (cheap: one splat chain + one vector add)."""
    from ...ir.values import UndefValue
    from ...ir.instructions import InsertElement

    cached = getattr(vb, "_iv_vector_cache", None)
    if cached is not None and cached[0] is viv and cached[1] == vty:
        return cached[2]
    vec: Value = UndefValue(vty)
    for lane in range(vty.count):
        node = InsertElement(vec, viv, ConstantInt(IntType(32), lane))
        node.name = fn.next_name("ivv")
        vb.block.append(node)
        vec = node
    steps = ConstantVector(
        vty, [ConstantInt(vty.element, lane) for lane in range(vty.count)]  # type: ignore[arg-type]
    )
    out = BinaryOp("add", vec, steps)
    out.name = fn.next_name("ivv")
    vb.block.append(out)
    vb._iv_vector_cache = (viv, vty, out)  # type: ignore[attr-defined]
    return out


@register_pass
class LoopVectorize(FunctionPass):
    """Vectorize canonical unit-stride innermost loops (VF=4)."""

    name = "loop-vectorize"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        info = LoopInfo(fn)
        for loop in info.innermost_first():
            if _vectorize(fn, loop):
                changed = True
                break
        return changed
