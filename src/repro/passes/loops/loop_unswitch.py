"""-loop-unswitch: hoist loop-invariant conditions out of loops by
duplicating the loop body.

The loop is cloned; the preheader branches on the invariant condition to
the original (condition pinned ``true``) or the clone (pinned ``false``).
Execution gets a branch-free body; code size pays for the copy — the
sharpest size/speed tradeoff in the pipeline, and a pass the RL agent must
learn to schedule (or avoid) depending on the reward weights.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...analysis.loops import Loop, LoopInfo
from ...ir.builder import IRBuilder
from ...ir.clone import clone_blocks_into
from ...ir.instructions import Branch, Instruction, Phi
from ...ir.module import BasicBlock, Function
from ...ir.types import I1
from ...ir.values import ConstantInt, Value
from ..base import FunctionPass, register_pass
from .licm import is_loop_invariant

#: Loops larger than this are not duplicated.
UNSWITCH_SIZE_LIMIT = 40


def _find_invariant_branch(loop: Loop) -> Optional[Branch]:
    for block in loop.blocks:
        term = block.terminator
        if (
            isinstance(term, Branch)
            and term.is_conditional
            and not isinstance(term.condition, ConstantInt)
            and is_loop_invariant(loop, term.condition)
            # Both sides must stay in the loop: unswitching exit conditions
            # changes trip semantics and is not attempted.
            and loop.contains(term.true_target)
            and loop.contains(term.false_target)
            and term.true_target is not term.false_target
        ):
            return term
    return None


def _loop_values_used_outside(loop: Loop) -> bool:
    exit_ids = {id(b) for b in loop.exit_blocks()}
    for block in loop.blocks:
        for inst in block.instructions:
            if inst.type.is_void:
                continue
            for use in inst.uses:
                user = use.user
                if not isinstance(user, Instruction) or user.parent is None:
                    return True
                if isinstance(user, Phi) and id(user.parent) in exit_ids:
                    continue  # LCSSA phi: fixable during cloning
                location = (
                    user.incoming_block(use.index // 2)
                    if isinstance(user, Phi) and use.index % 2 == 0
                    else user.parent
                )
                if not loop.contains(location):
                    return True
    return False


def _unswitch(fn: Function, loop: Loop) -> bool:
    preheader = loop.preheader()
    if preheader is None:
        return False
    if sum(len(b.instructions) for b in loop.blocks) > UNSWITCH_SIZE_LIMIT:
        return False
    branch = _find_invariant_branch(loop)
    if branch is None:
        return False
    exits = loop.exit_blocks()
    if any(
        any(not loop.contains(p) for p in e.predecessors()) for e in exits
    ):
        return False  # need dedicated exits for phi fix-up
    if _loop_values_used_outside(loop):
        return False  # out-of-loop uses must go through exit phis

    cond = branch.condition

    # Clone the loop body. Values defined outside map to themselves.
    vmap: Dict[int, Value] = {}
    blocks = list(loop.blocks)
    clone_blocks_into(fn, blocks, vmap, name_suffix=".us")

    # Exit phis gain incoming edges from the cloned exiting blocks.
    for exit_block in exits:
        for phi in exit_block.phis():
            for i in range(phi.num_incoming):
                pred = phi.incoming_block(i)
                mapped_pred = vmap.get(id(pred))
                if mapped_pred is None:
                    continue
                value = phi.incoming_value(i)
                phi.add_incoming(
                    vmap.get(id(value), value), mapped_pred  # type: ignore[arg-type]
                )

    # Preheader now dispatches on the invariant condition.
    term = preheader.terminator
    assert term is not None
    cloned_header = vmap[id(loop.header)]
    term.erase_from_parent()
    IRBuilder(preheader).cond_br(cond, loop.header, cloned_header)  # type: ignore[arg-type]

    # Cloned header phis: their preheader incoming survives the clone (it
    # mapped to itself); nothing further needed. Pin the condition.
    branch.set_operand(0, ConstantInt(I1, 1))
    cloned_branch = vmap[id(branch)]
    cloned_branch.set_operand(0, ConstantInt(I1, 0))  # type: ignore[union-attr]
    return True


@register_pass
class LoopUnswitch(FunctionPass):
    """Duplicate loops to remove invariant in-loop branches."""

    name = "loop-unswitch"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        for _ in range(2):
            info = LoopInfo(fn)
            round_changed = False
            for loop in info.innermost_first():
                if _unswitch(fn, loop):
                    round_changed = True
                    break
            changed |= round_changed
            if not round_changed:
                break
        return changed
