"""-loop-distribute: split independent statement groups of a loop into two
sequential loops.

Fission is what lets ``-loop-vectorize`` handle a loop where only one of
two store streams is vectorizable — the exact pairing of ODG sub-sequence
18 (``-loop-rotate -loop-distribute -loop-vectorize``). The implementation
handles the canonical case: a single-block counting loop with exactly two
stores to provably distinct objects.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ...analysis.loops import Loop, LoopInfo
from ...analysis.memdep import underlying_object
from ...ir.builder import IRBuilder
from ...ir.clone import clone_blocks_into
from ...ir.instructions import (
    Alloca,
    Call,
    Instruction,
    Load,
    Phi,
    Store,
)
from ...ir.module import BasicBlock, Function
from ...ir.values import GlobalVariable, Value
from ..base import FunctionPass, register_pass
from ..utils import erase_trivially_dead
from .iv import analyze_loop

_IDENTIFIED = (Alloca, GlobalVariable)


def _slice_of(store: Store, block: BasicBlock) -> Set[int]:
    """Backward slice of a store within its block (instruction ids)."""
    result: Set[int] = {id(store)}
    worklist: List[Instruction] = [store]
    while worklist:
        inst = worklist.pop()
        for op in inst.operands:
            if (
                isinstance(op, Instruction)
                and op.parent is block
                and id(op) not in result
            ):
                result.add(id(op))
                worklist.append(op)
    return result


def _distinct_objects(a: Value, b: Value) -> bool:
    oa, ob = underlying_object(a), underlying_object(b)
    return (
        isinstance(oa, _IDENTIFIED) and isinstance(ob, _IDENTIFIED) and oa is not ob
    )


def _distribute(fn: Function, loop: Loop) -> bool:
    if len(loop.blocks) != 1:
        return False
    header = loop.header
    preheader = loop.preheader()
    if preheader is None:
        return False
    exits = loop.exit_blocks()
    if len(exits) != 1:
        return False
    exit_block = exits[0]
    if any(not loop.contains(p) for p in exit_block.predecessors()):
        return False
    if analyze_loop(loop) is None:
        return False

    stores = [i for i in header.instructions if isinstance(i, Store)]
    if len(stores) != 2:
        return False
    if any(isinstance(i, Call) for i in header.instructions):
        return False
    s1, s2 = stores
    if not _distinct_objects(s1.pointer, s2.pointer):
        return False

    slice1 = _slice_of(s1, header)
    slice2 = _slice_of(s2, header)
    loads = [i for i in header.instructions if isinstance(i, Load)]
    # Loads in one group must not read memory the other group writes.
    for load in loads:
        if id(load) in slice1 and not _distinct_objects(load.pointer, s2.pointer):
            return False
        if id(load) in slice2 and not _distinct_objects(load.pointer, s1.pointer):
            return False

    # No loop-defined value may be observed outside the loop.
    for inst in header.instructions:
        if inst.type.is_void:
            continue
        for use in inst.uses:
            user = use.user
            if not isinstance(user, Instruction) or user.parent is None:
                return False
            if user.parent is not header:
                if not (isinstance(user, Phi) and user.parent is exit_block):
                    return False
                # Exit phi: only invariant incoming values survive rewiring.
                return False

    # --- clone the loop block --------------------------------------------
    vmap: Dict[int, Value] = {}
    (clone,) = clone_blocks_into(fn, [header], vmap, name_suffix=".dist")

    # Sequence: preheader -> header(loop1) -> mid -> clone(loop2) -> exit.
    mid = fn.add_block(fn.next_name("dist.mid"))
    IRBuilder(mid).br(clone)

    term = header.terminator
    assert term is not None
    for i, op in enumerate(term.operands):
        if op is exit_block:
            term.set_operand(i, mid)

    # Clone: redirect its phi starts from preheader->mid, exits stay.
    for phi in clone.phis():
        for i in range(phi.num_incoming):
            if phi.incoming_block(i) is preheader:
                phi.set_operand(2 * i + 1, mid)

    # Exit phis: they referenced header as pred; now the pred is the clone.
    for phi in exit_block.phis():
        for i in range(phi.num_incoming):
            if phi.incoming_block(i) is header:
                phi.set_operand(2 * i + 1, clone)

    # Drop group-2 work from loop 1 and group-1 work from loop 2.
    mapped_s1 = vmap[id(s1)]
    s2.erase_from_parent()
    mapped_s1.erase_from_parent()  # type: ignore[union-attr]
    erase_trivially_dead(fn)
    return True


@register_pass
class LoopDistribute(FunctionPass):
    """Fission loops with independent store streams."""

    name = "loop-distribute"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        info = LoopInfo(fn)
        for loop in info.innermost_first():
            if _distribute(fn, loop):
                changed = True
                break  # structures invalidated; one fission per run
        return changed
