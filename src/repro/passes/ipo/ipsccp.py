"""-ipsccp: interprocedural sparse conditional constant propagation.

Extends the per-function SCCP solver with two interprocedural facts:

* an internal, non-address-taken function whose every call site passes the
  same constant for an argument is solved with that argument pinned;
* a function whose solver concludes a constant return value has its call
  sites' results replaced by that constant.

Iterated to a (small, bounded) fixpoint, then each function's solution is
applied.
"""

from __future__ import annotations

from typing import Dict, Optional

from ...analysis.callgraph import CallGraph
from ...ir.instructions import Call
from ...ir.module import Function, Module
from ...ir.values import Constant, ConstantFloat, ConstantInt
from ..base import ModulePass, register_pass
from ..scalar.sccp import BOTTOM, TOP, LatticeValue, SCCPSolver, _same_constant


def _call_site_arg_constants(
    fn: Function, graph: CallGraph
) -> Optional[Dict[int, LatticeValue]]:
    """Per-argument meet over all call sites, or None if unanalyzable."""
    if not fn.is_internal or fn.name in graph.address_taken:
        return None
    sites = [c for c in graph.call_sites.get(fn.name, []) if c.parent is not None]
    if not sites:
        return None
    values: Dict[int, LatticeValue] = {}
    for i, arg in enumerate(fn.args):
        meet: LatticeValue = TOP
        for call in sites:
            if i >= len(call.args):
                meet = BOTTOM
                break
            actual = call.arg(i)
            if isinstance(actual, Constant):
                if meet == TOP:
                    meet = actual
                elif isinstance(meet, Constant) and _same_constant(meet, actual):
                    pass
                else:
                    meet = BOTTOM
            else:
                meet = BOTTOM
        values[id(arg)] = meet if meet != TOP else BOTTOM
    return values


@register_pass
class IPSCCP(ModulePass):
    """Interprocedural SCCP."""

    name = "ipsccp"

    MAX_ROUNDS = 3

    def run_on_module(self, module: Module) -> bool:
        graph = CallGraph(module)
        return_values: Dict[str, LatticeValue] = {}
        solvers: Dict[str, SCCPSolver] = {}

        class _IPSolver(SCCPSolver):
            def _call_value(self, inst: Call) -> LatticeValue:
                callee = inst.called_function
                if callee is None:
                    return BOTTOM
                known = return_values.get(callee.name, BOTTOM)
                return known if isinstance(known, Constant) else BOTTOM

        for _ in range(self.MAX_ROUNDS):
            stable = True
            for fn in module.functions:
                if fn.is_declaration:
                    continue
                args = _call_site_arg_constants(fn, graph)
                solver = _IPSolver(fn, args)
                solver.solve()
                solvers[fn.name] = solver
                new_ret = solver.return_value
                old_ret = return_values.get(fn.name, TOP)
                if not (
                    old_ret == new_ret
                    or (
                        isinstance(old_ret, Constant)
                        and isinstance(new_ret, Constant)
                        and _same_constant(old_ret, new_ret)
                    )
                ):
                    return_values[fn.name] = new_ret
                    stable = False
            if stable:
                break

        changed = False
        for fn in module.functions:
            solver = solvers.get(fn.name)
            if solver is not None:
                changed |= solver.apply()

        # Replace call results with known constant returns.
        for fn in module.functions:
            if fn.is_declaration:
                continue
            for call in list(fn.calls()):
                if call.parent is None or call.type.is_void:
                    continue
                callee = call.called_function
                if callee is None or callee.is_declaration:
                    continue
                if not callee.is_internal or callee.name in graph.address_taken:
                    continue
                ret = return_values.get(callee.name)
                if isinstance(ret, Constant) and call.has_uses:
                    call.replace_all_uses_with(ret)
                    changed = True
        return changed
