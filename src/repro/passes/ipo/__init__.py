"""Interprocedural (module-level) optimization passes."""

from . import (  # noqa: F401 - importing registers the passes
    attrs,
    deadargelim,
    globals,
    inline,
    ipsccp,
    prune_eh,
)
