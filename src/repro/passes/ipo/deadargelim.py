"""-deadargelim: remove unused formal arguments of internal functions.

Every call site is rewritten to drop the corresponding actuals — both an
instruction-count saving (argument setup) and an enabler for further
shrinking of the callee.
"""

from __future__ import annotations

from typing import List

from ...analysis.callgraph import CallGraph
from ...ir.instructions import Call
from ...ir.module import Function, Module
from ...ir.types import FunctionType, PointerType
from ..base import ModulePass, register_pass


@register_pass
class DeadArgElim(ModulePass):
    """Drop dead arguments from internal, non-address-taken functions."""

    name = "deadargelim"

    def run_on_module(self, module: Module) -> bool:
        graph = CallGraph(module)
        changed = False
        for fn in list(module.functions):
            if fn.is_declaration or not fn.is_internal:
                continue
            if fn.name in graph.address_taken:
                continue
            if fn.ftype.vararg:
                continue
            dead = [i for i, arg in enumerate(fn.args) if not arg.has_uses]
            if not dead:
                continue
            call_sites = graph.call_sites.get(fn.name, [])
            if any(cs.parent is None for cs in call_sites):
                continue
            dead_set = set(dead)

            # Rewrite the signature.
            keep_params = [
                p for i, p in enumerate(fn.ftype.params) if i not in dead_set
            ]
            fn.ftype = FunctionType(fn.return_type, keep_params)
            fn.type = PointerType(fn.ftype)
            kept_args = [a for i, a in enumerate(fn.args) if i not in dead_set]
            for new_index, arg in enumerate(kept_args):
                arg.index = new_index
            fn.args = kept_args

            # Rewrite every call site (operand 0 is the callee).
            for call in call_sites:
                for i in sorted(dead, reverse=True):
                    call.remove_operand(i + 1)
            changed = True
        return changed
