"""Function-attribute inference: -functionattrs, -rpo-functionattrs,
-attributor, -inferattrs, -forceattrs.

Inferred attributes (``readnone``, ``readonly``, ``nounwind``,
``willreturn``, ``norecurse``) are what unlock call CSE in early-cse/GVN
and dead-call elimination in DCE — the attribute passes look like no-ops
but materially change what later passes may do, which is why they pepper
the ``-Oz`` sequence.
"""

from __future__ import annotations

from typing import Set

from ...analysis.callgraph import CallGraph
from ...analysis.loops import LoopInfo
from ...analysis.memdep import pointer_escapes
from ...ir.instructions import Alloca, Call, Instruction, Load, Store
from ...ir.module import Function, Module
from ..base import ModulePass, register_pass


def _callee_attrs(call: Call) -> Set[str]:
    callee = call.called_function
    return set(callee.attributes) if callee is not None else set()


def infer_attributes(module: Module) -> bool:
    """Shared bottom-up inference engine."""
    graph = CallGraph(module)
    changed = False
    for fn in graph.bottom_up_order():
        changed |= _infer_for(fn, graph)
    return changed


def _infer_for(fn: Function, graph: CallGraph) -> bool:
    changed = False
    reads = False
    writes = False
    calls_ok_nounwind = True
    calls_ok_willreturn = True

    for inst in fn.instructions():
        if isinstance(inst, Load):
            # Loads from local non-escaping allocas are invisible outside.
            from ...analysis.memdep import underlying_object

            base = underlying_object(inst.pointer)
            if not (isinstance(base, Alloca) and not pointer_escapes(base)):
                reads = True
        elif isinstance(inst, Store):
            from ...analysis.memdep import underlying_object

            base = underlying_object(inst.pointer)
            if not (isinstance(base, Alloca) and not pointer_escapes(base)):
                writes = True
        elif isinstance(inst, Call):
            attrs = _callee_attrs(inst)
            callee = inst.called_function
            if callee is fn:
                continue  # self-recursion: handled by the SCC ordering
            if callee is None or callee.is_declaration and not callee.is_intrinsic:
                if callee is None or not attrs & {"readnone", "readonly"}:
                    reads = writes = True
            if "readnone" not in attrs:
                reads = True
                if "readonly" not in attrs:
                    writes = True
            if "nounwind" not in attrs:
                calls_ok_nounwind = False
            if "willreturn" not in attrs:
                calls_ok_willreturn = False

    def add(attr: str, condition: bool) -> None:
        nonlocal changed
        if condition and attr not in fn.attributes:
            fn.attributes.add(attr)
            changed = True

    add("readnone", not reads and not writes)
    add("readonly", not writes)
    add("nounwind", calls_ok_nounwind)
    recursive = graph.is_recursive(fn)
    add("norecurse", not recursive)
    if not fn.is_declaration:
        has_loops = bool(LoopInfo(fn).loops)
        add("willreturn", calls_ok_willreturn and not has_loops and not recursive)
    return changed


@register_pass
class FunctionAttrs(ModulePass):
    """Infer memory/termination attributes bottom-up."""

    name = "functionattrs"

    def run_on_module(self, module: Module) -> bool:
        return infer_attributes(module)


@register_pass
class RPOFunctionAttrs(ModulePass):
    """The RPO flavour reuses the same fixpoint inference."""

    name = "rpo-functionattrs"

    def run_on_module(self, module: Module) -> bool:
        return infer_attributes(module)


@register_pass
class Attributor(ModulePass):
    """Iterated attribute inference (LLVM's Attributor, restricted to the
    same attribute set — iterating catches SCC-crossing facts)."""

    name = "attributor"

    def run_on_module(self, module: Module) -> bool:
        changed = False
        for _ in range(3):
            if not infer_attributes(module):
                break
            changed = True
        return changed


#: Known external library routines and their attributes.
KNOWN_LIBRARY_ATTRS = {
    "abs": {"readnone", "willreturn", "nounwind"},
    "labs": {"readnone", "willreturn", "nounwind"},
    "sqrt": {"readnone", "willreturn", "nounwind"},
    "sin": {"readnone", "willreturn", "nounwind"},
    "cos": {"readnone", "willreturn", "nounwind"},
    "floor": {"readnone", "willreturn", "nounwind"},
    "ceil": {"readnone", "willreturn", "nounwind"},
    "strlen": {"readonly", "willreturn", "nounwind"},
    "memcmp": {"readonly", "willreturn", "nounwind"},
    "printf": {"nounwind"},
    "puts": {"nounwind"},
    "putchar": {"nounwind"},
}


@register_pass
class InferAttrs(ModulePass):
    """Attach known attributes to recognized library declarations."""

    name = "inferattrs"

    def run_on_module(self, module: Module) -> bool:
        changed = False
        for fn in module.functions:
            known = KNOWN_LIBRARY_ATTRS.get(fn.name)
            if fn.is_intrinsic:
                known = {"nounwind", "willreturn"}
                if fn.name.startswith(("llvm.expect", "llvm.is.constant", "llvm.objectsize", "llvm.abs")):
                    known = known | {"readnone"}
            if known and not known <= fn.attributes:
                fn.attributes |= known
                changed = True
        return changed


@register_pass
class ForceAttrs(ModulePass):
    """-forceattrs applies attributes from the command line; with none
    given (our configuration) it is an intentional no-op."""

    name = "forceattrs"

    def run_on_module(self, module: Module) -> bool:
        return False
