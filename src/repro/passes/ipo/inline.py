"""-inline: bottom-up function inlining.

Call sites are visited callees-before-callers. A call is inlined when the
callee is defined, non-recursive, and either small (≤ threshold) or
internal with a single call site (in which case inlining is a pure size
win because globaldce then deletes the body). These are the same levers
``-Oz`` pulls, with deliberately size-conscious thresholds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...analysis.callgraph import CallGraph
from ...ir.builder import IRBuilder
from ...ir.clone import clone_blocks_into
from ...ir.instructions import Branch, Call, Instruction, Phi, Ret
from ...ir.module import BasicBlock, Function, Module
from ...ir.values import Value
from ..base import ModulePass, register_pass

#: Callees at or below this size always inline (Oz-style small threshold).
INLINE_THRESHOLD = 24
#: Hard cap so pathological cases cannot blow up the module.
CALLER_SIZE_LIMIT = 3000


def should_inline(call: Call, graph: CallGraph, threshold: int = INLINE_THRESHOLD) -> bool:
    callee = call.called_function
    caller = call.function
    if callee is None or caller is None:
        return False
    if callee.is_declaration or callee.is_intrinsic or callee is caller:
        return False
    if callee.has_attribute("noinline"):
        return False
    if graph.is_recursive(callee):
        return False
    if caller.instruction_count > CALLER_SIZE_LIMIT:
        return False
    if callee.has_attribute("alwaysinline"):
        return True
    if callee.instruction_count <= threshold:
        return True
    if (
        callee.is_internal
        and len(graph.call_sites.get(callee.name, [])) == 1
        and callee.name not in graph.address_taken
    ):
        return True
    return False


def inline_call(call: Call) -> bool:
    """Inline one call site. Returns False if the site is not inlinable."""
    callee = call.called_function
    caller = call.function
    block = call.parent
    if callee is None or caller is None or block is None or callee.is_declaration:
        return False

    # --- split the caller block at the call -------------------------------
    insts = block.instructions
    index = insts.index(call)
    after = caller.add_block(caller.next_name(block.name + ".split"))
    caller.blocks.remove(after)
    caller.blocks.insert(caller.blocks.index(block) + 1, after)
    for inst in insts[index + 1 :]:
        inst.parent = after
        after.instructions.append(inst)
    del insts[index + 1 :]
    # Successor phis now see `after` as the predecessor.
    for succ in after.successors():
        for phi in succ.phis():
            for i in range(phi.num_incoming):
                if phi.incoming_block(i) is block:
                    phi.set_operand(2 * i + 1, after)

    # --- clone the callee body ---------------------------------------------
    vmap: Dict[int, Value] = {}
    for arg, actual in zip(callee.args, call.args):
        vmap[id(arg)] = actual
    new_blocks = clone_blocks_into(
        caller, callee.blocks, vmap, name_suffix=".i"
    )
    # Keep layout readable: splice the clones between block and after.
    for nb in new_blocks:
        caller.blocks.remove(nb)
    at = caller.blocks.index(after)
    caller.blocks[at:at] = new_blocks

    entry_clone = vmap[id(callee.entry)]

    # --- rewire control flow ------------------------------------------------
    call.erase_from_parent()  # detaches from block (it stayed in `block`)
    IRBuilder(block).br(entry_clone)  # type: ignore[arg-type]

    returns: List[Tuple[BasicBlock, Optional[Value]]] = []
    for nb in new_blocks:
        term = nb.terminator
        if isinstance(term, Ret):
            returns.append((nb, term.value))
            term.erase_from_parent()
            IRBuilder(nb).br(after)

    if not call.type.is_void:
        if len(returns) == 1:
            result: Value = returns[0][1]  # type: ignore[assignment]
            call.replace_all_uses_with(result)
        elif returns:
            phi = Phi(call.type, caller.next_name(call.name or "inl"))
            after.insert(0, phi)
            for nb, value in returns:
                assert value is not None
                phi.add_incoming(value, nb)
            call.replace_all_uses_with(phi)
        else:
            from ...ir.values import UndefValue

            call.replace_all_uses_with(UndefValue(call.type))
    return True


@register_pass
class Inliner(ModulePass):
    """Bottom-up size-aware inliner."""

    name = "inline"

    def __init__(self, threshold: int = INLINE_THRESHOLD):
        self.threshold = threshold

    def run_on_module(self, module: Module) -> bool:
        changed = False
        for _ in range(3):  # inlining exposes more inlining
            graph = CallGraph(module)
            round_changed = False
            for fn in graph.bottom_up_order():
                for call in list(fn.calls()):
                    if call.parent is None:
                        continue
                    if should_inline(call, graph, self.threshold):
                        if inline_call(call):
                            round_changed = True
                # Recompute per function is overkill; one graph per round.
            changed |= round_changed
            if not round_changed:
                break
        return changed


@register_pass
class AlwaysInliner(ModulePass):
    """-always-inline: honour only the ``alwaysinline`` attribute."""

    name = "always-inline"

    def run_on_module(self, module: Module) -> bool:
        graph = CallGraph(module)
        changed = False
        for fn in graph.bottom_up_order():
            for call in list(fn.calls()):
                callee = call.called_function
                if (
                    callee is not None
                    and callee.has_attribute("alwaysinline")
                    and not callee.is_declaration
                    and callee is not fn
                    and not graph.is_recursive(callee)
                ):
                    changed |= inline_call(call)
        return changed
