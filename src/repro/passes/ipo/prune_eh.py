"""-prune-eh: remove unused exception-handling constructs.

This IR has no EH edges, so the pass's surviving responsibilities are the
ones LLVM's PruneEH also performs on EH-free code: infer ``nounwind``
bottom-up and delete unreachable blocks that EH removal would have
stranded.
"""

from __future__ import annotations

from ...analysis.callgraph import CallGraph
from ...analysis.cfg import remove_unreachable_blocks
from ...ir.instructions import Call
from ...ir.module import Module
from ..base import ModulePass, register_pass


@register_pass
class PruneEH(ModulePass):
    """Infer nounwind and prune unreachable blocks."""

    name = "prune-eh"

    def run_on_module(self, module: Module) -> bool:
        graph = CallGraph(module)
        changed = False
        for fn in graph.bottom_up_order():
            if "nounwind" not in fn.attributes:
                calls = list(fn.calls())
                if all(
                    c.called_function is not None
                    and (
                        c.called_function is fn
                        or "nounwind" in c.called_function.attributes
                    )
                    for c in calls
                ):
                    fn.attributes.add("nounwind")
                    changed = True
            changed |= remove_unreachable_blocks(fn)
        return changed
