"""Global-level IPO: -globalopt, -globaldce, -constmerge,
-called-value-propagation, -elim-avail-extern, -strip-dead-prototypes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...analysis.callgraph import CallGraph
from ...ir.instructions import Call, Cast, GetElementPtr, Instruction, Load, Store
from ...ir.module import Function, Module
from ...ir.values import (
    Constant,
    ConstantArray,
    ConstantFloat,
    ConstantInt,
    GlobalVariable,
    UndefValue,
)
from ..base import ModulePass, register_pass


def _direct_accesses(gv: GlobalVariable):
    """Classify uses of a global: (loads, stores, other-uses)."""
    loads: List[Load] = []
    stores: List[Store] = []
    other: List[Instruction] = []
    for use in gv.uses:
        user = use.user
        if isinstance(user, Load) and user.pointer is gv:
            loads.append(user)
        elif isinstance(user, Store) and user.pointer is gv and user.value is not gv:
            stores.append(user)
        else:
            other.append(user)  # geps, casts, calls, stores of the address
    return loads, stores, other


@register_pass
class GlobalOpt(ModulePass):
    """Optimize module-level variables.

    * internal globals that are never loaded: delete their stores (and, once
      unreferenced, globaldce removes the variable);
    * internal globals that are never stored: mark constant and fold direct
      loads of a scalar initializer.
    """

    name = "globalopt"

    def run_on_module(self, module: Module) -> bool:
        changed = False
        for gv in list(module.globals):
            if not gv.is_internal:
                continue
            loads, stores, other = _direct_accesses(gv)
            if other:
                continue  # address escapes or aggregate accesses: leave it
            if not loads and stores:
                for store in stores:
                    if store.parent is not None:
                        store.erase_from_parent()
                        changed = True
                continue
            if not stores:
                if not gv.is_constant:
                    gv.is_constant = True
                    changed = True
                init = gv.initializer
                if isinstance(init, (ConstantInt, ConstantFloat)):
                    for load in loads:
                        if load.parent is not None and load.type == init.type:
                            load.replace_all_uses_with(init)
                            load.erase_from_parent()
                            changed = True
        return changed


@register_pass
class GlobalDCE(ModulePass):
    """Delete unreferenced internal globals and functions."""

    name = "globaldce"

    def run_on_module(self, module: Module) -> bool:
        changed = False
        progress = True
        while progress:
            progress = False
            for fn in list(module.functions):
                if not fn.is_internal or fn.has_uses:
                    continue
                for block in list(fn.blocks):
                    for inst in list(block.instructions):
                        inst.drop_all_operands()
                    block.erase_from_parent()
                module.remove_function(fn)
                progress = True
                changed = True
            for gv in list(module.globals):
                if gv.is_internal and not gv.has_uses:
                    gv.drop_all_operands()  # release initializer references
                    module.remove_global(gv)
                    progress = True
                    changed = True
        return changed


def _initializer_key(gv: GlobalVariable) -> Optional[str]:
    init = gv.initializer
    if init is None:
        return f"zero:{gv.value_type}"
    try:
        return f"{gv.value_type}:{init.ref()}"
    except NotImplementedError:  # pragma: no cover - all constants have ref
        return None


@register_pass
class ConstMerge(ModulePass):
    """Merge duplicate constant globals."""

    name = "constmerge"

    def run_on_module(self, module: Module) -> bool:
        changed = False
        canonical: Dict[str, GlobalVariable] = {}
        for gv in list(module.globals):
            if not gv.is_constant:
                continue
            key = _initializer_key(gv)
            if key is None:
                continue
            leader = canonical.get(key)
            if leader is None:
                canonical[key] = gv
            elif gv.is_internal:
                gv.replace_all_uses_with(leader)
                gv.drop_all_operands()
                module.remove_global(gv)
                changed = True
        return changed


@register_pass
class CalledValuePropagation(ModulePass):
    """Devirtualize indirect calls through never-rewritten function-pointer
    globals: a load from such a global *is* the initializer function."""

    name = "called-value-propagation"

    def run_on_module(self, module: Module) -> bool:
        changed = False
        for gv in list(module.globals):
            init = gv.initializer
            if not isinstance(init, Function):
                continue
            loads, stores, other = _direct_accesses(gv)
            if stores or other:
                continue
            if not (gv.is_constant or gv.is_internal):
                continue
            for load in loads:
                if load.parent is not None:
                    load.replace_all_uses_with(init)
                    load.erase_from_parent()
                    changed = True
        return changed


@register_pass
class ElimAvailExtern(ModulePass):
    """Drop ``available_externally`` bodies: the definitive copy lives in
    another TU, so carrying the body only costs size once inlining ran."""

    name = "elim-avail-extern"

    def run_on_module(self, module: Module) -> bool:
        changed = False
        for fn in module.functions:
            if fn.linkage == "available_externally" and not fn.is_declaration:
                for block in list(fn.blocks):
                    for inst in list(block.instructions):
                        inst.drop_all_operands()
                    block.erase_from_parent()
                fn.linkage = "external"
                changed = True
        return changed


@register_pass
class StripDeadPrototypes(ModulePass):
    """Remove unused function declarations."""

    name = "strip-dead-prototypes"

    def run_on_module(self, module: Module) -> bool:
        changed = False
        for fn in list(module.functions):
            if fn.is_declaration and not fn.has_uses:
                module.remove_function(fn)
                changed = True
        return changed


@register_pass
class Barrier(ModulePass):
    """-barrier: a pipeline sequencing marker; performs no transformation."""

    name = "barrier"

    def run_on_module(self, module: Module) -> bool:
        return False
