"""Pass framework: base classes, registry and the pass manager.

Every optimization pass registers under its LLVM flag name (for example
``-simplifycfg`` registers as ``"simplifycfg"``), so the Oz sequence from
the paper's Table I can be executed verbatim:

>>> from repro.passes import run_passes
>>> run_passes(module, ["simplifycfg", "sroa", "early-cse"])  # doctest: +SKIP
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Type, Union

from ..ir.module import Function, Module
from ..ir.verifier import verify_module

#: flag-name -> pass factory
PASS_REGISTRY: Dict[str, Callable[[], "Pass"]] = {}


def register_pass(cls: Type["Pass"]) -> Type["Pass"]:
    """Class decorator: register a pass under its ``name`` attribute."""
    if not getattr(cls, "name", None):
        raise ValueError(f"{cls.__name__} has no pass name")
    PASS_REGISTRY[cls.name] = cls
    return cls


def create_pass(name: str) -> "Pass":
    """Instantiate a registered pass by flag name (leading ``-`` optional)."""
    key = name.lstrip("-")
    factory = PASS_REGISTRY.get(key)
    if factory is None:
        raise KeyError(f"unknown pass: {name!r}")
    return factory()


def available_passes() -> List[str]:
    return sorted(PASS_REGISTRY)


class Pass:
    """Base class for all passes."""

    #: LLVM-style flag name, e.g. ``"simplifycfg"``.
    name: str = ""

    def run_on_module(self, module: Module) -> bool:
        """Run and return whether anything changed."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<pass -{self.name}>"


class ModulePass(Pass):
    """A pass operating on the whole module at once."""


class FunctionPass(Pass):
    """A pass run independently on every defined function."""

    def run_on_function(self, fn: Function) -> bool:
        raise NotImplementedError

    def run_on_module(self, module: Module) -> bool:
        changed = False
        for fn in list(module.functions):
            if not fn.is_declaration:
                changed |= bool(self.run_on_function(fn))
        return changed


class PassManager:
    """Runs a sequence of passes, optionally verifying after each one.

    ``verify=True`` is used throughout the test-suite so that a pass that
    breaks an IR invariant is caught at the exact pass that broke it.
    """

    def __init__(
        self,
        passes: Sequence[Union[str, Pass]] = (),
        verify: bool = False,
        collect_stats: bool = False,
    ):
        self.passes: List[Pass] = [
            p if isinstance(p, Pass) else create_pass(p) for p in passes
        ]
        self.verify = verify
        self.collect_stats = collect_stats
        #: names of passes that reported changes during the last run
        self.changed_passes: List[str] = []
        #: per-invocation statistics of the last run (collect_stats=True)
        self.stats = None

    def add(self, pass_or_name: Union[str, Pass]) -> "PassManager":
        self.passes.append(
            pass_or_name
            if isinstance(pass_or_name, Pass)
            else create_pass(pass_or_name)
        )
        return self

    def run(self, module: Module) -> bool:
        import time

        from ..observability import get_registry, get_tracer
        from ..observability.tracing import Span
        from .stats import PipelineStats, StatsTimer

        registry = get_registry()
        tracer = get_tracer()
        changed = False
        self.changed_passes = []
        self.stats = PipelineStats() if self.collect_stats else None
        instrument = self.stats is not None or registry.enabled
        pipeline_ctx = (
            tracer.span("pipeline", n_passes=str(len(self.passes)))
            if tracer.enabled
            else None
        )
        # Per-pass child spans are synthesized from the StatsTimer's
        # measurement instead of opening a context manager per pass —
        # the thread-local stack push/pop and duplicate clock reads cost
        # too much on pipelines whose passes run in tens of microseconds.
        pipeline_span = (
            pipeline_ctx.__enter__() if pipeline_ctx is not None else None
        )
        running_count = module.instruction_count if instrument else None
        try:
            for p in self.passes:
                if instrument:
                    timer = StatsTimer(
                        self.stats, p.name, module, registry=registry,
                        before=running_count,
                    )
                    timer.__enter__()
                    pass_start = timer.start
                else:
                    timer = None
                    if pipeline_span is not None:
                        pass_start = time.perf_counter()
                try:
                    this_changed = bool(p.run_on_module(module))
                except Exception as exc:
                    if timer is not None:
                        # Files the terminal record: the crashing pass
                        # must appear in the stats meant to debug it.
                        timer.__exit__(type(exc), exc, exc.__traceback__)
                    if pipeline_span is not None:
                        seconds = (
                            timer.seconds if timer is not None
                            else time.perf_counter() - pass_start
                        )
                        pipeline_span.children.append(
                            Span(p.name, duration_s=seconds)
                        )
                    raise RuntimeError(
                        f"pass -{p.name} failed: {exc}"
                    ) from exc
                if timer is not None:
                    timer.finish(this_changed)
                    running_count = timer.after
                if pipeline_span is not None:
                    seconds = (
                        timer.seconds if timer is not None
                        else time.perf_counter() - pass_start
                    )
                    pipeline_span.children.append(
                        Span(p.name, duration_s=seconds)
                    )
                if this_changed:
                    self.changed_passes.append(p.name)
                    changed = True
                if self.verify:
                    try:
                        verify_module(module)
                    except Exception as exc:
                        raise RuntimeError(
                            f"IR invalid after pass -{p.name}: {exc}"
                        ) from exc
        finally:
            if pipeline_ctx is not None:
                pipeline_ctx.__exit__(None, None, None)
        return changed


def parse_pass_list(text: str) -> List[str]:
    """Split a flag string like ``"-simplifycfg -sroa"`` into pass names."""
    return [tok.lstrip("-") for tok in text.split() if tok.strip("-")]


def run_passes(
    module: Module,
    passes: Union[str, Sequence[Union[str, Pass]]],
    verify: bool = False,
) -> bool:
    """One-shot convenience wrapper around :class:`PassManager`."""
    if isinstance(passes, str):
        passes = parse_pass_list(passes)
    return PassManager(passes, verify=verify).run(module)
