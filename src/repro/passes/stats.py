"""Pass-execution statistics.

``PassManager(..., collect_stats=True)`` records, per pass invocation, the
wall time, whether the module changed, and the instruction-count delta —
the data an engineer reaches for when a pipeline misbehaves, and the raw
material for the repo's pipeline-composition analyses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class PassRecord:
    """One pass invocation."""

    name: str
    changed: bool
    seconds: float
    instructions_before: int
    instructions_after: int

    @property
    def instruction_delta(self) -> int:
        return self.instructions_after - self.instructions_before


@dataclass
class PipelineStats:
    """All invocations of one pipeline run."""

    records: List[PassRecord] = field(default_factory=list)

    def add(self, record: PassRecord) -> None:
        self.records.append(record)

    @property
    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.records)

    @property
    def changed_passes(self) -> List[str]:
        return [r.name for r in self.records if r.changed]

    def by_pass(self) -> Dict[str, Dict[str, float]]:
        """Aggregate time/changes/instruction-delta per pass name."""
        out: Dict[str, Dict[str, float]] = {}
        for r in self.records:
            agg = out.setdefault(
                r.name,
                {"runs": 0, "changed": 0, "seconds": 0.0, "delta": 0},
            )
            agg["runs"] += 1
            agg["changed"] += int(r.changed)
            agg["seconds"] += r.seconds
            agg["delta"] += r.instruction_delta
        return out

    def report(self) -> str:
        """Human-readable summary, hottest passes first."""
        rows = sorted(
            self.by_pass().items(), key=lambda kv: -kv[1]["seconds"]
        )
        lines = [
            f"{'pass':<28} {'runs':>5} {'changed':>8} {'Δinsts':>8} {'time':>9}"
        ]
        for name, agg in rows:
            lines.append(
                f"{name:<28} {agg['runs']:>5.0f} {agg['changed']:>8.0f} "
                f"{agg['delta']:>8.0f} {agg['seconds']:>8.3f}s"
            )
        lines.append(f"{'TOTAL':<28} {'':>5} {'':>8} {'':>8} "
                     f"{self.total_seconds:>8.3f}s")
        return "\n".join(lines)


class StatsTimer:
    """Context manager measuring one pass invocation."""

    def __init__(self, stats: PipelineStats, name: str, module):
        self.stats = stats
        self.name = name
        self.module = module

    def __enter__(self) -> "StatsTimer":
        self.before = self.module.instruction_count
        self.start = time.perf_counter()
        return self

    def finish(self, changed: bool) -> None:
        self.stats.add(
            PassRecord(
                name=self.name,
                changed=changed,
                seconds=time.perf_counter() - self.start,
                instructions_before=self.before,
                instructions_after=self.module.instruction_count,
            )
        )

    def __exit__(self, *exc) -> None:
        pass
