"""Pass-execution statistics.

``PassManager(..., collect_stats=True)`` records, per pass invocation, the
wall time, whether the module changed, and the instruction-count delta —
the data an engineer reaches for when a pipeline misbehaves, and the raw
material for the repo's pipeline-composition analyses.

A pass that *raises* is recorded too: :meth:`StatsTimer.__exit__` files a
terminal :class:`PassRecord` carrying the exception text, so the crashing
invocation shows up (with its wall time up to the crash) in exactly the
report meant to debug it instead of silently vanishing.

When the process-wide metric registry (:mod:`repro.observability`) is
enabled, every record is also published as ``repro_pass_*`` series —
per-pass run/changed/error counters, accumulated wall seconds and
instruction delta — independent of whether the caller kept a
:class:`PipelineStats`.
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class PassRecord:
    """One pass invocation."""

    name: str
    changed: bool
    seconds: float
    instructions_before: int
    instructions_after: int
    #: Exception text when the pass raised mid-run; ``None`` on success.
    error: Optional[str] = None

    @property
    def instruction_delta(self) -> int:
        return self.instructions_after - self.instructions_before


@dataclass
class PipelineStats:
    """All invocations of one pipeline run."""

    records: List[PassRecord] = field(default_factory=list)

    def add(self, record: PassRecord) -> None:
        self.records.append(record)

    @property
    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.records)

    @property
    def changed_passes(self) -> List[str]:
        return [r.name for r in self.records if r.changed]

    @property
    def errors(self) -> List[PassRecord]:
        return [r for r in self.records if r.error is not None]

    def by_pass(self) -> Dict[str, Dict[str, float]]:
        """Aggregate time/changes/instruction-delta per pass name."""
        out: Dict[str, Dict[str, float]] = {}
        for r in self.records:
            agg = out.setdefault(
                r.name,
                {"runs": 0, "changed": 0, "seconds": 0.0, "delta": 0,
                 "errors": 0},
            )
            agg["runs"] += 1
            agg["changed"] += int(r.changed)
            agg["seconds"] += r.seconds
            agg["delta"] += r.instruction_delta
            agg["errors"] += int(r.error is not None)
        return out

    def report(self) -> str:
        """Human-readable summary, hottest passes first."""
        rows = sorted(
            self.by_pass().items(), key=lambda kv: -kv[1]["seconds"]
        )
        lines = [
            f"{'pass':<28} {'runs':>5} {'changed':>8} {'Δinsts':>8} "
            f"{'errors':>7} {'time':>9}"
        ]
        for name, agg in rows:
            lines.append(
                f"{name:<28} {agg['runs']:>5.0f} {agg['changed']:>8.0f} "
                f"{agg['delta']:>8.0f} {agg['errors']:>7.0f} "
                f"{agg['seconds']:>8.3f}s"
            )
        lines.append(f"{'TOTAL':<28} {'':>5} {'':>8} {'':>8} {'':>7} "
                     f"{self.total_seconds:>8.3f}s")
        for r in self.errors:
            lines.append(f"ERROR -{r.name}: {r.error}")
        return "\n".join(lines)


class _PassInstruments:
    """Pre-resolved registry handles for one pass name.

    Resolving an instrument (label-key sort, family lookup, two lock
    acquisitions) costs microseconds — too much to repeat on every pass
    invocation of a hot pipeline, so handles are memoized per
    (registry, pass name) below.
    """

    __slots__ = ("runs", "seconds", "changed", "delta", "errors")

    def __init__(self, registry, name: str):
        labels = {"pass": name}
        self.runs = registry.counter(
            "repro_pass_runs_total", "pass invocations", labels=labels
        )
        self.seconds = registry.counter(
            "repro_pass_seconds_total", "pass wall seconds", labels=labels
        )
        self.changed = registry.counter(
            "repro_pass_changed_total",
            "invocations that changed the module", labels=labels,
        )
        self.delta = registry.gauge(
            "repro_pass_instruction_delta_sum",
            "accumulated instruction-count delta (negative = shrank)",
            labels=labels,
        )
        self.errors = registry.counter(
            "repro_pass_errors_total", "invocations that raised",
            labels=labels,
        )


#: registry -> {pass name -> _PassInstruments}; weak keys so a disabled
#: registry's handles die with it.
_INSTRUMENTS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _pass_instruments(registry, name: str) -> _PassInstruments:
    per_registry = _INSTRUMENTS.get(registry)
    if per_registry is None:
        per_registry = {}
        _INSTRUMENTS[registry] = per_registry
    instruments = per_registry.get(name)
    if instruments is None:
        # A racing thread may build a duplicate; both share the same
        # underlying registry children, so last-write-wins is harmless.
        instruments = _PassInstruments(registry, name)
        per_registry[name] = instruments
    return instruments


def _publish(
    registry, name: str, changed: bool, seconds: float, delta: int,
    error: Optional[str],
) -> None:
    instruments = _pass_instruments(registry, name)
    instruments.runs.inc()
    instruments.seconds.inc(seconds)
    if changed:
        instruments.changed.inc()
    if delta:
        instruments.delta.inc(delta)
    if error is not None:
        instruments.errors.inc()


def publish_record(registry, record: PassRecord) -> None:
    """Mirror one record into the metric registry (enabled callers only)."""
    _publish(
        registry, record.name, record.changed, record.seconds,
        record.instruction_delta, record.error,
    )


class StatsTimer:
    """Context manager measuring one pass invocation.

    The caller invokes :meth:`finish` on success; if the pass raises
    instead, :meth:`__exit__` records a terminal :class:`PassRecord` with
    the exception text so the crashing invocation is not lost. ``stats``
    may be ``None`` (registry-only publication — then no
    :class:`PassRecord` is even constructed, the values go straight to
    the memoized instruments). After recording, :attr:`seconds` holds the
    measured wall time for callers that also trace.
    """

    def __init__(self, stats: Optional[PipelineStats], name: str, module,
                 registry=None, before: Optional[int] = None):
        self.stats = stats
        self.name = name
        self.module = module
        self.registry = registry
        self.seconds = 0.0
        #: Pre-counted instruction count, for pipeline drivers that chain
        #: timers (pass i's ``after`` is pass i+1's ``before``) to avoid
        #: re-walking the module twice per pass.
        self._before_override = before
        self._finished = False

    def __enter__(self) -> "StatsTimer":
        self.before = (
            self.module.instruction_count
            if self._before_override is None
            else self._before_override
        )
        self.start = time.perf_counter()
        return self

    def _record(self, changed: bool, error: Optional[str] = None) -> None:
        self.seconds = seconds = time.perf_counter() - self.start
        self._finished = True
        # A pass that reports "unchanged" left the module alone — skip
        # the O(module) recount. A crashed pass may have mutated the
        # module partially, so count defensively.
        if changed or error is not None:
            after = self.module.instruction_count
        else:
            after = self.before
        self.after = after
        if self.stats is not None:
            record = PassRecord(
                name=self.name,
                changed=changed,
                seconds=seconds,
                instructions_before=self.before,
                instructions_after=after,
                error=error,
            )
            self.stats.add(record)
            if self.registry is not None and self.registry.enabled:
                publish_record(self.registry, record)
        elif self.registry is not None and self.registry.enabled:
            _publish(
                self.registry, self.name, changed, seconds,
                after - self.before, error,
            )

    def finish(self, changed: bool) -> None:
        self._record(changed)

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._finished:
            return
        if exc_type is not None:
            self._record(changed=False, error=f"{exc_type.__name__}: {exc}")
