"""Small IR-surgery helpers shared across passes."""

from __future__ import annotations

from typing import List, Optional

from ..ir.instructions import Branch, Instruction, Phi
from ..ir.module import BasicBlock, Function
from ..ir.values import UndefValue, Value


def replace_and_erase(inst: Instruction, replacement: Value) -> None:
    """RAUW + erase: the standard way a pass retires an instruction."""
    inst.replace_all_uses_with(replacement)
    inst.erase_from_parent()


def erase_trivially_dead(fn: Function) -> bool:
    """Iteratively remove instructions with no uses and no side effects."""
    changed = False
    progress = True
    while progress:
        progress = False
        for block in fn.blocks:
            for inst in reversed(list(block.instructions)):
                if inst.is_trivially_dead:
                    inst.erase_from_parent()
                    progress = True
                    changed = True
    return changed


def simplify_single_incoming_phis(block: BasicBlock) -> bool:
    """Replace phis that have one incoming value (or all-same) with it."""
    changed = False
    for phi in list(block.phis()):
        unique = phi.unique_value()
        if unique is not None:
            replace_and_erase(phi, unique)
            changed = True
        elif phi.num_incoming == 0:
            replace_and_erase(phi, UndefValue(phi.type))
            changed = True
    return changed


def merge_block_into_predecessor(block: BasicBlock) -> bool:
    """Fold ``block`` into its unique predecessor when the predecessor's
    only successor is ``block`` (and no phi complications remain)."""
    pred = block.single_predecessor
    if pred is None or pred is block:
        return False
    if pred.successors() != [block]:
        return False
    # Phis in `block` are trivially single-incoming; fold them first.
    simplify_single_incoming_phis(block)
    if block.phis():
        return False
    term = pred.terminator
    assert term is not None
    term.erase_from_parent()
    for inst in list(block.instructions):
        inst.parent = None
        pred.append(inst)
    block.instructions.clear()
    # Anyone referring to `block` (phis in successors) now sees `pred`.
    block.replace_all_uses_with(pred)
    block.erase_from_parent()
    return True


def redirect_branch(
    block: BasicBlock, old_target: BasicBlock, new_target: BasicBlock
) -> None:
    """Point every edge block->old_target at new_target, updating phis."""
    term = block.terminator
    assert term is not None
    for i, op in enumerate(term.operands):
        if op is old_target:
            term.set_operand(i, new_target)
    for phi in new_target.phis():
        incoming = phi.incoming_for_block(old_target)
        if incoming is not None and phi.incoming_for_block(block) is None:
            phi.add_incoming(incoming, block)
    old_target.remove_phi_incoming_for(block)


def split_edge(pred: BasicBlock, succ: BasicBlock, name: str = "") -> BasicBlock:
    """Insert a fresh block on the edge pred->succ; returns the new block."""
    fn = pred.parent
    assert fn is not None
    from ..ir.builder import IRBuilder

    mid = fn.add_block(name or fn.next_name("split"))
    term = pred.terminator
    assert term is not None
    for i, op in enumerate(term.operands):
        if op is succ:
            term.set_operand(i, mid)
    IRBuilder(mid).br(succ)
    for phi in succ.phis():
        for i in range(phi.num_incoming):
            if phi.incoming_block(i) is pred:
                phi.set_operand(2 * i + 1, mid)
    return mid


def constant_fold_terminator(block: BasicBlock) -> bool:
    """Turn a conditional branch on a constant into an unconditional one,
    and fold switches over constants."""
    from ..ir.instructions import Switch
    from ..ir.values import ConstantInt

    term = block.terminator
    if isinstance(term, Branch) and term.is_conditional:
        cond = term.condition
        if isinstance(cond, ConstantInt):
            taken = term.true_target if cond.value else term.false_target
            dead = term.false_target if cond.value else term.true_target
            term.erase_from_parent()
            from ..ir.builder import IRBuilder

            IRBuilder(block).br(taken)
            if dead is not taken:
                dead.remove_phi_incoming_for(block)
            return True
        if term.true_target is term.false_target:
            target = term.true_target
            term.erase_from_parent()
            from ..ir.builder import IRBuilder

            IRBuilder(block).br(target)
            return True
    if isinstance(term, Switch):
        value = term.value
        if isinstance(value, ConstantInt):
            taken = term.default
            for cv, target in term.cases():
                if cv.value == value.value:
                    taken = target
                    break
            others = {id(b) for b in term.targets if b is not taken}
            all_targets = term.targets
            term.erase_from_parent()
            from ..ir.builder import IRBuilder

            IRBuilder(block).br(taken)
            for target in all_targets:
                if id(target) in others:
                    target.remove_phi_incoming_for(block)
            return True
        if term.num_cases == 0:
            target = term.default
            term.erase_from_parent()
            from ..ir.builder import IRBuilder

            IRBuilder(block).br(target)
            return True
    return False
