"""Compile-time constant folding shared by several passes.

``instsimplify``, ``instcombine``, ``sccp``/``ipsccp`` and ``gvn`` all fold
through these helpers so the semantics live in exactly one place (and match
the interpreter's).
"""

from __future__ import annotations

import struct
from typing import Optional

from ..ir.instructions import Cast, FCmp, ICmp, Instruction, Select
from ..ir.interp import _fcmp, _float_binop, _icmp, _int_binop, InterpError
from ..ir.types import FloatType, IntType, PointerType, Type
from ..ir.values import (
    Constant,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    UndefValue,
    Value,
)


def fold_binary(opcode: str, lhs: Value, rhs: Value) -> Optional[Constant]:
    """Fold a binary op over constants; ``None`` if not foldable."""
    if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
        ty = lhs.int_type
        try:
            return ConstantInt(ty, _int_binop(opcode, ty, lhs.value, rhs.value))
        except InterpError:
            return None  # division by zero: leave the trap in place
    if isinstance(lhs, ConstantFloat) and isinstance(rhs, ConstantFloat):
        assert isinstance(lhs.type, FloatType)
        try:
            result = _float_binop(opcode, lhs.value, rhs.value)
        except InterpError:
            return None
        if result != result or result in (float("inf"), float("-inf")):
            return None  # keep NaN/Inf production visible
        return ConstantFloat(lhs.type, result)
    return None


def fold_icmp(predicate: str, lhs: Value, rhs: Value) -> Optional[ConstantInt]:
    from ..ir.types import I1

    if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
        return ConstantInt(I1, _icmp(predicate, lhs.int_type, lhs.value, rhs.value))
    if isinstance(lhs, ConstantNull) and isinstance(rhs, ConstantNull):
        return ConstantInt(I1, 1 if predicate in ("eq", "ule", "uge", "sle", "sge") else 0)
    return None


def fold_fcmp(predicate: str, lhs: Value, rhs: Value) -> Optional[ConstantInt]:
    from ..ir.types import I1

    if isinstance(lhs, ConstantFloat) and isinstance(rhs, ConstantFloat):
        return ConstantInt(I1, _fcmp(predicate, lhs.value, rhs.value))
    return None


def _round_to(ty: FloatType, value: float) -> float:
    """Round to the target float width, matching the interpreter's casts."""
    if ty.bits == 32:
        return struct.unpack("<f", struct.pack("<f", value))[0]
    return value


def fold_cast(opcode: str, value: Value, to_type: Type) -> Optional[Constant]:
    if isinstance(value, UndefValue):
        return UndefValue(to_type)
    if isinstance(value, ConstantInt):
        src = value.int_type
        if opcode == "trunc" and isinstance(to_type, IntType):
            return ConstantInt(to_type, value.value)
        if opcode == "zext" and isinstance(to_type, IntType):
            return ConstantInt(to_type, value.unsigned)
        if opcode == "sext" and isinstance(to_type, IntType):
            return ConstantInt(to_type, value.value)
        if opcode in ("sitofp", "uitofp") and isinstance(to_type, FloatType):
            raw = value.unsigned if opcode == "uitofp" else value.value
            return ConstantFloat(to_type, _round_to(to_type, float(raw)))
        if opcode == "bitcast" and to_type == value.type:
            return value
        if opcode == "inttoptr" and isinstance(to_type, PointerType):
            if value.value == 0:
                return ConstantNull(to_type)
            return None
    if isinstance(value, ConstantFloat):
        if opcode == "fptosi" and isinstance(to_type, IntType):
            v = value.value
            if v != v or abs(v) > 2**62:
                return None
            return ConstantInt(to_type, int(v))
        if opcode in ("fptrunc", "fpext") and isinstance(to_type, FloatType):
            return ConstantFloat(to_type, _round_to(to_type, value.value))
    if isinstance(value, ConstantNull):
        if opcode == "bitcast" and isinstance(to_type, PointerType):
            return ConstantNull(to_type)
        if opcode == "ptrtoint" and isinstance(to_type, IntType):
            return ConstantInt(to_type, 0)
    return None


def fold_select(cond: Value, tval: Value, fval: Value) -> Optional[Value]:
    if isinstance(cond, ConstantInt):
        return tval if cond.value else fval
    if tval is fval:
        return tval
    return None


def fold_instruction(inst: Instruction) -> Optional[Value]:
    """Fold any fully-constant instruction. Returns replacement or ``None``."""
    from ..ir.instructions import BinaryOp

    if isinstance(inst, BinaryOp):
        return fold_binary(inst.opcode, inst.lhs, inst.rhs)
    if isinstance(inst, ICmp):
        return fold_icmp(inst.predicate, inst.lhs, inst.rhs)
    if isinstance(inst, FCmp):
        return fold_fcmp(inst.predicate, inst.lhs, inst.rhs)
    if isinstance(inst, Cast):
        return fold_cast(inst.opcode, inst.value, inst.type)
    if isinstance(inst, Select):
        return fold_select(inst.condition, inst.true_value, inst.false_value)
    return None
