"""Standard optimization pipelines: O0, O1, O2, O3, Os, Oz.

``OZ_PASS_SEQUENCE`` is the LLVM-10 ``-Oz`` transformation-pass order from
the paper's Table I (OCR slips in the published table — the elided
``-loop-rotate -licm``, ``-indvars -loop-idiom`` and ``-tailcallelim
-simplifycfg -reassociate`` runs — restored from the LLVM 10 pipeline,
consistent with the paper's own Table II decomposition and its "90
transformation passes, 54 unique" count, which this list reproduces
exactly).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

from ..ir.module import Module
from .base import Pass, PassManager, create_pass

# The -Oz sequence (Table I), 90 entries, 54 unique.
OZ_PASS_SEQUENCE: List[str] = [
    "ee-instrument",
    "simplifycfg",
    "sroa",
    "early-cse",
    "lower-expect",
    "forceattrs",
    "inferattrs",
    "ipsccp",
    "called-value-propagation",
    "attributor",
    "globalopt",
    "mem2reg",
    "deadargelim",
    "instcombine",
    "simplifycfg",
    "prune-eh",
    "inline",
    "functionattrs",
    "sroa",
    "early-cse-memssa",
    "speculative-execution",
    "jump-threading",
    "correlated-propagation",
    "simplifycfg",
    "instcombine",
    "tailcallelim",
    "simplifycfg",
    "reassociate",
    "loop-simplify",
    "lcssa",
    "loop-rotate",
    "licm",
    "loop-unswitch",
    "simplifycfg",
    "instcombine",
    "loop-simplify",
    "lcssa",
    "indvars",
    "loop-idiom",
    "loop-deletion",
    "loop-unroll",
    "mldst-motion",
    "gvn",
    "memcpyopt",
    "sccp",
    "bdce",
    "instcombine",
    "jump-threading",
    "correlated-propagation",
    "dse",
    "loop-simplify",
    "lcssa",
    "licm",
    "adce",
    "simplifycfg",
    "instcombine",
    "barrier",
    "elim-avail-extern",
    "rpo-functionattrs",
    "globalopt",
    "globaldce",
    "float2int",
    "lower-constant-intrinsics",
    "loop-simplify",
    "lcssa",
    "loop-rotate",
    "loop-distribute",
    "loop-vectorize",
    "loop-simplify",
    "loop-load-elim",
    "instcombine",
    "simplifycfg",
    "instcombine",
    "loop-simplify",
    "lcssa",
    "loop-unroll",
    "instcombine",
    "loop-simplify",
    "lcssa",
    "licm",
    "alignment-from-assumptions",
    "strip-dead-prototypes",
    "globaldce",
    "constmerge",
    "loop-simplify",
    "lcssa",
    "loop-sink",
    "instsimplify",
    "div-rem-pairs",
    "simplifycfg",
]


def _oz_passes() -> List[Pass]:
    from .ipo.inline import Inliner
    from .loops.loop_unroll import LoopUnroll

    passes: List[Pass] = []
    for name in OZ_PASS_SEQUENCE:
        if name == "inline":
            passes.append(Inliner(threshold=24))  # size-conscious
        elif name == "loop-unroll":
            # -Oz only unrolls when it cannot grow code (LLVM's
            # OptForSize unroller): tiny budget, tiny trips. Standalone
            # -loop-unroll (the RL action space) uses the default, more
            # aggressive thresholds — exactly as with `opt` on real LLVM.
            passes.append(LoopUnroll(size_budget=16, max_trip=4))
        else:
            passes.append(create_pass(name))
    return passes


def _os_passes() -> List[Pass]:
    """-Os: the Oz skeleton with slightly less strict size thresholds."""
    from .ipo.inline import Inliner
    from .loops.loop_unroll import LoopUnroll

    passes: List[Pass] = []
    for name in OZ_PASS_SEQUENCE:
        if name == "inline":
            passes.append(Inliner(threshold=40))
        elif name == "loop-unroll":
            passes.append(LoopUnroll(size_budget=32, max_trip=8))
        else:
            passes.append(create_pass(name))
    return passes


_O1_SEQUENCE: List[str] = [
    "ee-instrument",
    "simplifycfg",
    "sroa",
    "early-cse",
    "lower-expect",
    "forceattrs",
    "inferattrs",
    "ipsccp",
    "globalopt",
    "mem2reg",
    "deadargelim",
    "instcombine",
    "simplifycfg",
    "prune-eh",
    "always-inline",
    "functionattrs",
    "sroa",
    "early-cse",
    "simplifycfg",
    "instcombine",
    "loop-simplify",
    "lcssa",
    "loop-rotate",
    "licm",
    "loop-unroll",
    "sccp",
    "instcombine",
    "dse",
    "adce",
    "simplifycfg",
    "instcombine",
    "globaldce",
    "constmerge",
]


def _o23_passes(speed_level: int) -> List[Pass]:
    """O2/O3 share the Oz skeleton with speed-oriented thresholds and
    without the size-only clamps (bigger inlining, wider unrolling)."""
    from .ipo.inline import Inliner
    from .loops.loop_unroll import LoopUnroll

    inline_threshold = 80 if speed_level == 2 else 160
    unroll_budget = 128 if speed_level == 2 else 256
    passes: List[Pass] = []
    for name in OZ_PASS_SEQUENCE:
        if name == "inline":
            passes.append(Inliner(threshold=inline_threshold))
        elif name == "loop-unroll":
            passes.append(LoopUnroll(size_budget=unroll_budget, max_trip=16))
        elif name == "loop-sink":
            continue  # size-motivated; not part of the speed pipelines
        else:
            passes.append(create_pass(name))
    return passes


def build_pipeline(level: str) -> PassManager:
    """Create a PassManager for ``"O0".."O3"``, ``"Os"`` or ``"Oz"``."""
    if level == "O0":
        return PassManager([])
    if level == "O1":
        return PassManager(list(_O1_SEQUENCE))
    if level == "O2":
        return PassManager(_o23_passes(2))
    if level == "O3":
        return PassManager(_o23_passes(3))
    if level == "Os":
        return PassManager(_os_passes())
    if level == "Oz":
        return PassManager(_oz_passes())
    raise ValueError(f"unknown optimization level {level!r}")


def optimize(module: Module, level: str = "Oz") -> Module:
    """Run a standard pipeline in place and return the module."""
    build_pipeline(level).run(module)
    return module


OPT_LEVELS = ("O0", "O1", "O2", "O3", "Os", "Oz")
