"""Optimization pass framework and the full -Oz pass set."""

from .base import (
    Pass,
    FunctionPass,
    ModulePass,
    PassManager,
    PASS_REGISTRY,
    available_passes,
    create_pass,
    parse_pass_list,
    register_pass,
    run_passes,
)
from . import scalar, ipo, loops  # noqa: F401 - registration side effects
from .pipelines import (
    OPT_LEVELS,
    OZ_PASS_SEQUENCE,
    build_pipeline,
    optimize,
)

__all__ = [
    "FunctionPass",
    "ModulePass",
    "OPT_LEVELS",
    "OZ_PASS_SEQUENCE",
    "PASS_REGISTRY",
    "Pass",
    "PassManager",
    "available_passes",
    "build_pipeline",
    "create_pass",
    "optimize",
    "parse_pass_list",
    "register_pass",
    "run_passes",
]
