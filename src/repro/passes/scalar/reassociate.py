"""-reassociate: canonicalize associative expression trees.

Linearizes chains of a single associative/commutative opcode, ranks the
leaves (constants last, then by definition order), folds the constants
together, and rebuilds a left-leaning chain. The canonical form is what
exposes folds to instcombine/CSE — exactly its role inside ``-Oz``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...ir.instructions import BinaryOp, Instruction
from ...ir.module import BasicBlock, Function
from ...ir.types import IntType
from ...ir.values import Argument, ConstantInt, Value
from ..base import FunctionPass, register_pass
from ..fold import fold_binary
from ..utils import erase_trivially_dead, replace_and_erase

_REASSOC_OPS = ("add", "mul", "and", "or", "xor")


def _collect_leaves(root: BinaryOp) -> Optional[List[Value]]:
    """Flatten a single-use tree of ``root.opcode`` into its leaves."""
    leaves: List[Value] = []
    op = root.opcode
    stack: List[Value] = [root.lhs, root.rhs]
    count = 0
    while stack:
        value = stack.pop()
        count += 1
        if count > 32:
            return None
        if (
            isinstance(value, BinaryOp)
            and value.opcode == op
            and value.num_uses == 1
            and value.parent is root.parent
        ):
            stack.append(value.lhs)
            stack.append(value.rhs)
        else:
            leaves.append(value)
    return leaves


def _rank(fn: Function, value: Value) -> Tuple[int, int]:
    """Ranking: arguments first, then instructions in program order,
    constants last (so they cluster and fold)."""
    if isinstance(value, ConstantInt):
        return (2, 0)
    if isinstance(value, Argument):
        return (0, value.index)
    if isinstance(value, Instruction) and value.parent is not None:
        block_index = value.parent.parent.blocks.index(value.parent)
        return (1, block_index * 10_000 + value.parent.instructions.index(value))
    return (1, 0)


@register_pass
class Reassociate(FunctionPass):
    """Reassociate commutative expressions into canonical ranked form."""

    name = "reassociate"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        for block in fn.blocks:
            for inst in list(block.instructions):
                if inst.parent is None or not isinstance(inst, BinaryOp):
                    continue
                if inst.opcode not in _REASSOC_OPS or not isinstance(
                    inst.type, IntType
                ):
                    continue
                # Only rewrite tree roots (users are not the same opcode).
                if any(
                    isinstance(u, BinaryOp)
                    and u.opcode == inst.opcode
                    and u.parent is block
                    for u in inst.users()
                ):
                    continue
                leaves = _collect_leaves(inst)
                if leaves is None or len(leaves) < 3:
                    continue

                constants = [l for l in leaves if isinstance(l, ConstantInt)]
                others = [l for l in leaves if not isinstance(l, ConstantInt)]
                if len(constants) < 2 and len(others) == len(leaves):
                    continue  # nothing to gain

                folded: Optional[Value] = None
                if constants:
                    acc = constants[0]
                    for c in constants[1:]:
                        result = fold_binary(inst.opcode, acc, c)
                        assert result is not None
                        acc = result  # type: ignore[assignment]
                    folded = acc

                others.sort(key=lambda v: _rank(fn, v))
                ordered = others + ([folded] if folded is not None else [])
                if len(ordered) == len(leaves):
                    # Skip no-op rebuilds that match the existing shape.
                    if constants and len(constants) < 2:
                        continue

                # Rebuild a left-leaning chain before `inst`.
                if len(ordered) == 1:
                    replace_and_erase(inst, ordered[0])
                    changed = True
                    continue
                current = ordered[0]
                for value in ordered[1:]:
                    node = BinaryOp(inst.opcode, current, value)
                    node.name = fn.next_name("ra")
                    node.insert_before(inst)
                    current = node
                replace_and_erase(inst, current)
                changed = True
        changed |= erase_trivially_dead(fn)
        return changed
