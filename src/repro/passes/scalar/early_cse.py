"""-early-cse / -early-cse-memssa: dominator-scoped common subexpression
elimination with store-to-load forwarding.

Pure expressions are hashed in a scoped table along a dominator-tree walk.
Memory values are tracked with a generation counter bumped at every
may-write instruction: the plain variant only forwards within a basic
block, while the ``-memssa`` variant keeps memory facts across dominated
blocks (mirroring LLVM's MemorySSA-backed EarlyCSE).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...analysis.dominators import DominatorTree
from ...ir.instructions import (
    BinaryOp,
    Call,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Select,
    Store,
    COMMUTATIVE_OPS,
)
from ...ir.module import BasicBlock, Function
from ...ir.values import Value
from ..base import FunctionPass, register_pass
from .instsimplify import simplify_instruction
from ..utils import erase_trivially_dead, replace_and_erase


def _operand_key(value: Value):
    """Identity for SSA values; by-value identity for scalar constants
    (constants are not interned, so two ``i32 5`` objects must key equal)."""
    from ...ir.values import ConstantFloat, ConstantInt, ConstantNull, UndefValue

    if isinstance(value, ConstantInt):
        return ("ci", value.type, value.value)
    if isinstance(value, ConstantFloat):
        return ("cf", value.type, value.value)
    if isinstance(value, ConstantNull):
        return ("cn", value.type)
    if isinstance(value, UndefValue):
        return ("cu", id(value))  # undefs never CSE with each other
    return id(value)


def expression_key(inst: Instruction) -> Optional[Tuple]:
    """Hashable structural key for pure, CSE-able instructions."""
    k = _operand_key
    if isinstance(inst, BinaryOp):
        ops = (k(inst.lhs), k(inst.rhs))
        if inst.opcode in COMMUTATIVE_OPS:
            ops = tuple(sorted(ops, key=repr))
        return ("bin", inst.opcode, inst.type, ops)
    if isinstance(inst, ICmp):
        return ("icmp", inst.predicate, k(inst.lhs), k(inst.rhs))
    if isinstance(inst, FCmp):
        return ("fcmp", inst.predicate, k(inst.lhs), k(inst.rhs))
    if isinstance(inst, Cast):
        return ("cast", inst.opcode, inst.type, k(inst.value))
    if isinstance(inst, GetElementPtr):
        return ("gep", inst.type, tuple(k(op) for op in inst.operands))
    if isinstance(inst, Select):
        return ("select", tuple(k(op) for op in inst.operands))
    if isinstance(inst, Call):
        fn = inst.called_function
        if fn is not None and "readnone" in fn.attributes and "willreturn" in fn.attributes:
            return ("call", fn.name, tuple(k(a) for a in inst.args))
    return None


class _ScopedTable:
    """A stack of dicts giving dominator-scoped name lookup."""

    def __init__(self) -> None:
        self.scopes: List[Dict] = [{}]

    def push(self) -> None:
        self.scopes.append({})

    def pop(self) -> None:
        self.scopes.pop()

    def lookup(self, key):
        for scope in reversed(self.scopes):
            if key in scope:
                return scope[key]
        return None

    def insert(self, key, value) -> None:
        self.scopes[-1][key] = value


class _EarlyCSE:
    def __init__(self, fn: Function, cross_block_memory: bool):
        self.fn = fn
        self.cross_block_memory = cross_block_memory
        self.changed = False

    def run(self) -> bool:
        dom = DominatorTree(self.fn)
        expressions = _ScopedTable()
        memory = _ScopedTable()  # id(pointer) -> (value, generation)
        generation = [0]

        def process_block(block: BasicBlock) -> None:
            if not self.cross_block_memory:
                generation[0] += 1  # forget all memory facts between blocks
                local_gen_floor = generation[0]
            elif block is not self.fn.entry and block.single_predecessor is None:
                # Memory facts only flow along single-pred chains: a merge
                # point may be reached via a path (a dominator-tree sibling)
                # whose stores have not been seen yet on this DFS walk.
                generation[0] += 1
            for inst in list(block.instructions):
                if inst.parent is None:
                    continue
                simplified = simplify_instruction(inst)
                if simplified is not None and simplified is not inst:
                    replace_and_erase(inst, simplified)
                    self.changed = True
                    continue

                if isinstance(inst, Load):
                    fact = memory.lookup(id(inst.pointer))
                    if fact is not None:
                        value, gen = fact
                        valid = gen == generation[0]
                        if not self.cross_block_memory:
                            valid = valid and gen >= local_gen_floor
                        if valid and value.type == inst.type:
                            replace_and_erase(inst, value)
                            self.changed = True
                            continue
                    memory.insert(id(inst.pointer), (inst, generation[0]))
                    continue

                if isinstance(inst, Store):
                    # Idempotent store elimination: storing back the value
                    # that is already known to be in the location.
                    fact = memory.lookup(id(inst.pointer))
                    if (
                        fact is not None
                        and fact[0] is inst.value
                        and fact[1] == generation[0]
                    ):
                        inst.erase_from_parent()
                        self.changed = True
                        continue
                    generation[0] += 1
                    memory.insert(id(inst.pointer), (inst.value, generation[0]))
                    continue

                if inst.may_write_memory:
                    generation[0] += 1
                    continue

                key = expression_key(inst)
                if key is None:
                    continue
                if isinstance(inst, Call):
                    pass  # readnone+willreturn calls are safe to CSE
                available = expressions.lookup(key)
                if available is not None and available.type == inst.type:
                    replace_and_erase(inst, available)
                    self.changed = True
                else:
                    expressions.insert(key, inst)

        def walk(block: BasicBlock) -> None:
            expressions.push()
            memory.push()
            process_block(block)
            for child in dom.children(block):
                walk(child)
            expressions.pop()
            memory.pop()

        import sys

        old = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old, 4 * len(self.fn.blocks) + 1000))
        try:
            walk(self.fn.entry)
        finally:
            sys.setrecursionlimit(old)
        self.changed |= erase_trivially_dead(self.fn)
        return self.changed


@register_pass
class EarlyCSE(FunctionPass):
    """Fast dominator-scoped CSE; memory facts are block-local."""

    name = "early-cse"

    def run_on_function(self, fn: Function) -> bool:
        return _EarlyCSE(fn, cross_block_memory=False).run()


@register_pass
class EarlyCSEMemSSA(FunctionPass):
    """EarlyCSE with cross-block (dominator-scoped) memory forwarding."""

    name = "early-cse-memssa"

    def run_on_function(self, fn: Function) -> bool:
        return _EarlyCSE(fn, cross_block_memory=True).run()
