"""-mem2reg: promote memory to SSA registers.

The classic Cytron et al. algorithm: place phis at the iterated dominance
frontier of each promotable alloca's stores, then rename along a dominator-
tree walk. ``promote_allocas`` is exported for reuse by SROA.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ...analysis.dominators import DominatorTree
from ...ir.instructions import Alloca, Instruction, Load, Phi, Store
from ...ir.module import BasicBlock, Function
from ...ir.values import UndefValue, Value
from ..base import FunctionPass, register_pass


def is_promotable(alloca: Alloca) -> bool:
    """Only whole-object loads and stores of the value (no GEP, no escape,
    no volatile/aggregate trickery) allow promotion."""
    if alloca.allocated_type.is_aggregate:
        return False
    for use in alloca.uses:
        user = use.user
        if isinstance(user, Load):
            continue
        if isinstance(user, Store) and user.pointer is alloca and user.value is not alloca:
            continue
        return False
    return True


def promote_allocas(fn: Function, allocas: List[Alloca]) -> bool:
    """Promote the given (verified-promotable) allocas of ``fn``."""
    if not allocas:
        return False
    dom = DominatorTree(fn)
    frontiers = dom.dominance_frontiers()
    blocks_by_id = {id(b): b for b in fn.blocks}

    phi_for: Dict[int, Dict[int, Phi]] = {id(a): {} for a in allocas}
    alloca_of_phi: Dict[int, Alloca] = {}

    for alloca in allocas:
        def_blocks: List[BasicBlock] = []
        seen: Set[int] = set()
        for use in alloca.uses:
            user = use.user
            if isinstance(user, Store) and user.parent is not None:
                if id(user.parent) not in seen:
                    seen.add(id(user.parent))
                    def_blocks.append(user.parent)
        # Iterated dominance frontier.
        worklist = list(def_blocks)
        placed: Set[int] = set()
        while worklist:
            block = worklist.pop()
            for fid in frontiers.get(id(block), ()):
                if fid in placed:
                    continue
                placed.add(fid)
                target = blocks_by_id[fid]
                phi = Phi(alloca.allocated_type, fn.next_name(alloca.name or "mem"))
                target.insert(0, phi)
                phi_for[id(alloca)][fid] = phi
                alloca_of_phi[id(phi)] = alloca
                worklist.append(target)

    # Rename along the dominator tree.
    stacks: Dict[int, List[Value]] = {id(a): [] for a in allocas}
    alloca_ids = set(stacks)

    def current(alloca: Alloca) -> Value:
        stack = stacks[id(alloca)]
        return stack[-1] if stack else UndefValue(alloca.allocated_type)

    def rename(block: BasicBlock) -> None:
        pushes: Dict[int, int] = {}
        for inst in list(block.instructions):
            if isinstance(inst, Phi):
                alloca = alloca_of_phi.get(id(inst))
                if alloca is not None:
                    stacks[id(alloca)].append(inst)
                    pushes[id(alloca)] = pushes.get(id(alloca), 0) + 1
                continue
            if isinstance(inst, Load) and id(inst.pointer) in alloca_ids:
                alloca = inst.pointer
                inst.replace_all_uses_with(current(alloca))  # type: ignore[arg-type]
                inst.erase_from_parent()
            elif isinstance(inst, Store) and id(inst.pointer) in alloca_ids:
                alloca = inst.pointer
                stacks[id(alloca)].append(inst.value)
                pushes[id(alloca)] = pushes.get(id(alloca), 0) + 1
                inst.erase_from_parent()
        for succ in block.successors():
            for alloca in allocas:
                phi = phi_for[id(alloca)].get(id(succ))
                if phi is not None and phi.incoming_for_block(block) is None:
                    phi.add_incoming(current(alloca), block)
        for child in dom.children(block):
            rename(child)
        for aid, count in pushes.items():
            del stacks[aid][len(stacks[aid]) - count :]

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 4 * len(fn.blocks) + 1000))
    try:
        rename(fn.entry)
    finally:
        sys.setrecursionlimit(old_limit)

    # Phis in unreachable blocks never got incoming values; and the allocas
    # themselves are now dead.
    for alloca in allocas:
        for use in list(alloca.uses):
            user = use.user
            if isinstance(user, (Load, Store)):
                # Unreachable-code stragglers.
                if isinstance(user, Load):
                    user.replace_all_uses_with(UndefValue(user.type))
                user.erase_from_parent()
        alloca.erase_from_parent()

    # Prune phis that ended up trivial (single unique incoming).
    progress = True
    while progress:
        progress = False
        for phis in phi_for.values():
            for phi in list(phis.values()):
                if phi.parent is None:
                    continue
                unique = phi.unique_value()
                if unique is not None and not phi.has_uses:
                    phi.erase_from_parent()
                    progress = True
                elif unique is not None:
                    phi.replace_all_uses_with(unique)
                    phi.erase_from_parent()
                    progress = True
    return True


@register_pass
class Mem2Reg(FunctionPass):
    """Promote promotable allocas to SSA values."""

    name = "mem2reg"

    def run_on_function(self, fn: Function) -> bool:
        allocas = [
            inst
            for inst in fn.instructions()
            if isinstance(inst, Alloca) and is_promotable(inst)
        ]
        return promote_allocas(fn, allocas)
