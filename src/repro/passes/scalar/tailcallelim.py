"""-tailcallelim: turn self-recursive tail calls into loops.

``ret f(...)`` at the end of ``f`` becomes a back edge to the entry block
with the arguments rewritten through phis. Only applied when the function
has no allocas (so reusing the frame is trivially safe).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...ir.builder import IRBuilder
from ...ir.instructions import Alloca, Branch, Call, Instruction, Phi, Ret
from ...ir.module import BasicBlock, Function
from ..base import FunctionPass, register_pass


def _find_tail_recursions(fn: Function) -> List[Tuple[Call, Ret]]:
    sites: List[Tuple[Call, Ret]] = []
    for block in fn.blocks:
        term = block.terminator
        if not isinstance(term, Ret):
            continue
        insts = block.instructions
        if len(insts) < 2:
            continue
        call = insts[-2]
        if not isinstance(call, Call) or call.called_function is not fn:
            continue
        if term.value is None:
            if not call.type.is_void:
                continue
        elif term.value is not call:
            continue
        # The call result must have no other users.
        if not call.type.is_void and call.num_uses > 1:
            continue
        sites.append((call, term))
    return sites


@register_pass
class TailCallElim(FunctionPass):
    """Eliminate self-recursive tail calls."""

    name = "tailcallelim"

    def run_on_function(self, fn: Function) -> bool:
        if any(isinstance(i, Alloca) for i in fn.instructions()):
            return False
        sites = _find_tail_recursions(fn)
        if not sites:
            return False

        old_entry = fn.entry
        # Fresh entry block that jumps to the old entry; old entry becomes
        # the loop header.
        new_entry = BasicBlock(fn.next_name("tailentry"), fn)
        fn.blocks.insert(0, new_entry)
        IRBuilder(new_entry).br(old_entry)

        # One phi per argument in the loop header.
        phis: List[Phi] = []
        for arg in fn.args:
            phi = Phi(arg.type, fn.next_name(arg.name or "targ"))
            old_entry.insert(0, phi)
            # Replace argument uses *except* the incoming we are about to add.
            arg.replace_all_uses_with(phi)
            phi.add_incoming(arg, new_entry)
            phis.append(phi)

        for call, ret in sites:
            block = call.parent
            assert block is not None
            args = call.args
            ret.erase_from_parent()
            call.erase_from_parent()
            for phi, value in zip(phis, args):
                phi.add_incoming(value, block)
            IRBuilder(block).br(old_entry)
        return True
