"""-sccp: sparse conditional constant propagation.

Classic Wegman–Zadeck three-level lattice (top / constant / overdefined)
with executable-edge tracking, so constants are propagated *through*
branches that are themselves decided by constants. The solver core is
shared with the interprocedural ``-ipsccp`` pass.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union

from ...analysis.cfg import remove_unreachable_blocks
from ...ir.instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    FCmp,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Switch,
)
from ...ir.module import BasicBlock, Function
from ...ir.values import (
    Argument,
    Constant,
    ConstantFloat,
    ConstantInt,
    UndefValue,
    Value,
)
from ..base import FunctionPass, register_pass
from ..fold import fold_binary, fold_cast, fold_fcmp, fold_icmp
from ..utils import constant_fold_terminator, erase_trivially_dead

TOP = "top"
BOTTOM = "bottom"
LatticeValue = Union[str, Constant]


def _meet(a: LatticeValue, b: LatticeValue) -> LatticeValue:
    if a == TOP:
        return b
    if b == TOP:
        return a
    if a == BOTTOM or b == BOTTOM:
        return BOTTOM
    assert isinstance(a, Constant) and isinstance(b, Constant)
    if _same_constant(a, b):
        return a
    return BOTTOM


def _same_constant(a: Constant, b: Constant) -> bool:
    if isinstance(a, ConstantInt) and isinstance(b, ConstantInt):
        return a.type == b.type and a.value == b.value
    if isinstance(a, ConstantFloat) and isinstance(b, ConstantFloat):
        return a.type == b.type and a.value == b.value
    return a is b


class SCCPSolver:
    """The dataflow engine; usable per-function or interprocedurally."""

    def __init__(self, fn: Function, arg_values: Optional[Dict[int, LatticeValue]] = None):
        self.fn = fn
        self.lattice: Dict[int, LatticeValue] = {}
        self.executable_edges: Set[Tuple[int, int]] = set()
        self.executable_blocks: Set[int] = set()
        self.ssa_worklist: List[Instruction] = []
        self.block_worklist: List[BasicBlock] = []
        for arg in fn.args:
            self.lattice[id(arg)] = (
                arg_values.get(id(arg), BOTTOM) if arg_values else BOTTOM
            )
        #: meet of all returned values, for interprocedural use
        self.return_value: LatticeValue = TOP

    # -- lattice access ------------------------------------------------------
    def value_of(self, value: Value) -> LatticeValue:
        if isinstance(value, Constant) and not isinstance(value, UndefValue):
            return value
        if isinstance(value, UndefValue):
            return BOTTOM  # do not exploit undef (keeps interp-equivalence)
        return self.lattice.get(id(value), TOP)

    def _set(self, inst: Instruction, value: LatticeValue) -> None:
        old = self.lattice.get(id(inst), TOP)
        new = _meet(old, value) if old != TOP else value
        # Monotonic: once bottom, stays bottom.
        if old == BOTTOM:
            return
        if old == TOP and new == TOP:
            return
        if old != TOP and isinstance(old, Constant) and isinstance(new, Constant):
            if _same_constant(old, new):
                return
            new = BOTTOM
        self.lattice[id(inst)] = new
        for use in inst.uses:
            user = use.user
            if isinstance(user, Instruction) and user.parent is not None:
                if id(user.parent) in self.executable_blocks:
                    self.ssa_worklist.append(user)

    def _mark_edge(self, src: BasicBlock, dst: BasicBlock) -> None:
        edge = (id(src), id(dst))
        if edge in self.executable_edges:
            return
        self.executable_edges.add(edge)
        if id(dst) not in self.executable_blocks:
            self.executable_blocks.add(id(dst))
            self.block_worklist.append(dst)
        else:
            # Only the phis need revisiting for a newly executable edge.
            for phi in dst.phis():
                self.ssa_worklist.append(phi)

    # -- transfer functions -----------------------------------------------------
    def _visit(self, inst: Instruction) -> None:
        if isinstance(inst, Phi):
            result: LatticeValue = TOP
            for value, pred in inst.incoming():
                if (id(pred), id(inst.parent)) in self.executable_edges:
                    result = _meet(result, self.value_of(value))
            self._set(inst, result)
            return

        if isinstance(inst, (Branch, Switch)):
            self._visit_terminator(inst)
            return

        if isinstance(inst, Ret):
            if inst.value is not None:
                self.return_value = _meet(self.return_value, self.value_of(inst.value))
            else:
                self.return_value = BOTTOM
            return

        if isinstance(inst, Call):
            if not inst.type.is_void:
                self._set(inst, self._call_value(inst))
            return
        if not inst.type.is_void and isinstance(inst, (Load, Alloca)):
            # Memory contents and addresses are not modelled: overdefined.
            self._set(inst, BOTTOM)
            return
        if inst.type.is_void:
            return

        operand_values = [self.value_of(op) for op in inst.operands]
        if any(v == BOTTOM for v in operand_values):
            self._set(inst, BOTTOM)
            return
        if any(v == TOP for v in operand_values):
            return  # wait for more information

        consts: List[Constant] = operand_values  # type: ignore[assignment]
        folded: Optional[Constant] = None
        if isinstance(inst, BinaryOp):
            folded = fold_binary(inst.opcode, consts[0], consts[1])
        elif isinstance(inst, ICmp):
            folded = fold_icmp(inst.predicate, consts[0], consts[1])
        elif isinstance(inst, FCmp):
            folded = fold_fcmp(inst.predicate, consts[0], consts[1])
        elif isinstance(inst, Cast):
            folded = fold_cast(inst.opcode, consts[0], inst.type)
        elif isinstance(inst, Select):
            cond = consts[0]
            if isinstance(cond, ConstantInt):
                folded = consts[1] if cond.value else consts[2]
        self._set(inst, folded if folded is not None else BOTTOM)

    def _call_value(self, inst: Call) -> LatticeValue:
        """Overridden by ipsccp to consult callee summaries."""
        return BOTTOM

    def _visit_terminator(self, inst: Instruction) -> None:
        block = inst.parent
        assert block is not None
        if isinstance(inst, Branch):
            if not inst.is_conditional:
                self._mark_edge(block, inst.targets[0])
                return
            cond = self.value_of(inst.condition)
            if isinstance(cond, ConstantInt):
                target = inst.true_target if cond.value else inst.false_target
                self._mark_edge(block, target)
            elif cond == BOTTOM:
                self._mark_edge(block, inst.true_target)
                self._mark_edge(block, inst.false_target)
            return
        if isinstance(inst, Switch):
            value = self.value_of(inst.value)
            if isinstance(value, ConstantInt):
                taken = inst.default
                for cv, target in inst.cases():
                    if cv.value == value.value:
                        taken = target
                        break
                self._mark_edge(block, taken)
            elif value == BOTTOM:
                for target in inst.targets:
                    self._mark_edge(block, target)

    # -- driver -------------------------------------------------------------------
    def solve(self) -> None:
        entry = self.fn.entry
        self.executable_blocks.add(id(entry))
        self.block_worklist.append(entry)
        while self.block_worklist or self.ssa_worklist:
            while self.ssa_worklist:
                inst = self.ssa_worklist.pop()
                if inst.parent is not None and id(inst.parent) in self.executable_blocks:
                    self._visit(inst)
            while self.block_worklist:
                block = self.block_worklist.pop()
                for inst in block.instructions:
                    self._visit(inst)

    # -- applying the solution ----------------------------------------------------
    def apply(self) -> bool:
        changed = False
        for block in list(self.fn.blocks):
            if id(block) not in self.executable_blocks:
                continue
            for inst in list(block.instructions):
                if inst.type.is_void or inst.parent is None:
                    continue
                value = self.lattice.get(id(inst))
                if isinstance(value, Constant) and inst.has_uses:
                    inst.replace_all_uses_with(value)
                    changed = True
            changed |= constant_fold_terminator(block)
        changed |= remove_unreachable_blocks(self.fn)
        changed |= erase_trivially_dead(self.fn)
        return changed


@register_pass
class SCCP(FunctionPass):
    """Sparse conditional constant propagation."""

    name = "sccp"

    def run_on_function(self, fn: Function) -> bool:
        solver = SCCPSolver(fn)
        solver.solve()
        return solver.apply()
