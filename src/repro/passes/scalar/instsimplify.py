"""-instsimplify: fold instructions to *existing* values.

Simplifications here never create new instructions — they return a constant
or an already-available value (that restriction is what distinguishes this
pass from ``instcombine``). The :func:`simplify_instruction` helper is also
called by instcombine, GVN and SCCP.
"""

from __future__ import annotations

from typing import Optional

from ...ir.instructions import (
    BinaryOp,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Phi,
    Select,
)
from ...ir.module import Function
from ...ir.types import IntType
from ...ir.values import ConstantFloat, ConstantInt, UndefValue, Value
from ..base import FunctionPass, register_pass
from ..fold import fold_instruction
from ..utils import erase_trivially_dead, replace_and_erase


def _simplify_binary(inst: BinaryOp) -> Optional[Value]:
    op, lhs, rhs = inst.opcode, inst.lhs, inst.rhs
    lc = lhs if isinstance(lhs, ConstantInt) else None
    rc = rhs if isinstance(rhs, ConstantInt) else None

    if op == "add":
        if rc is not None and rc.is_zero():
            return lhs
        if lc is not None and lc.is_zero():
            return rhs
    elif op == "sub":
        if rc is not None and rc.is_zero():
            return lhs
        if lhs is rhs:
            return ConstantInt(inst.type, 0)  # type: ignore[arg-type]
    elif op == "mul":
        if rc is not None:
            if rc.is_zero():
                return rc
            if rc.is_one():
                return lhs
        if lc is not None:
            if lc.is_zero():
                return lc
            if lc.is_one():
                return rhs
    elif op in ("sdiv", "udiv"):
        if rc is not None and rc.is_one():
            return lhs
        if lhs is rhs and rc is None and lc is None:
            return None  # x/x == 1 only if x != 0; not provable
    elif op in ("srem", "urem"):
        if rc is not None and rc.is_one():
            return ConstantInt(inst.type, 0)  # type: ignore[arg-type]
    elif op == "and":
        if lhs is rhs:
            return lhs
        if rc is not None:
            if rc.is_zero():
                return rc
            if rc.is_all_ones():
                return lhs
        if lc is not None:
            if lc.is_zero():
                return lc
            if lc.is_all_ones():
                return rhs
    elif op == "or":
        if lhs is rhs:
            return lhs
        if rc is not None:
            if rc.is_zero():
                return lhs
            if rc.is_all_ones():
                return rc
        if lc is not None:
            if lc.is_zero():
                return rhs
            if lc.is_all_ones():
                return lc
    elif op == "xor":
        if lhs is rhs:
            return ConstantInt(inst.type, 0)  # type: ignore[arg-type]
        if rc is not None and rc.is_zero():
            return lhs
        if lc is not None and lc.is_zero():
            return rhs
    elif op in ("shl", "lshr", "ashr"):
        if rc is not None and rc.is_zero():
            return lhs
        if lc is not None and lc.is_zero():
            return lc
    elif op in ("fadd", "fsub"):
        if isinstance(rhs, ConstantFloat) and rhs.value == 0.0:
            return lhs
        if op == "fadd" and isinstance(lhs, ConstantFloat) and lhs.value == 0.0:
            return rhs
    elif op in ("fmul", "fdiv"):
        if isinstance(rhs, ConstantFloat) and rhs.value == 1.0:
            return lhs
        if op == "fmul" and isinstance(lhs, ConstantFloat) and lhs.value == 1.0:
            return rhs
    return None


_ALWAYS_TRUE = frozenset({"eq", "sle", "sge", "ule", "uge"})


def _simplify_icmp(inst: ICmp) -> Optional[Value]:
    from ...ir.types import I1

    if inst.lhs is inst.rhs:
        return ConstantInt(I1, 1 if inst.predicate in _ALWAYS_TRUE else 0)
    return None


def simplify_instruction(inst: Instruction) -> Optional[Value]:
    """Return an existing value equivalent to ``inst``, or ``None``."""
    folded = fold_instruction(inst)
    if folded is not None:
        return folded
    if isinstance(inst, BinaryOp):
        return _simplify_binary(inst)
    if isinstance(inst, ICmp):
        return _simplify_icmp(inst)
    if isinstance(inst, FCmp):
        return None
    if isinstance(inst, Select):
        if inst.true_value is inst.false_value:
            return inst.true_value
    if isinstance(inst, Phi):
        return inst.unique_value()
    if isinstance(inst, GetElementPtr):
        if all(
            isinstance(i, ConstantInt) and i.is_zero() for i in inst.indices
        ) and inst.type == inst.pointer.type:
            return inst.pointer
    if isinstance(inst, Cast):
        if inst.opcode == "bitcast" and inst.type == inst.value.type:
            return inst.value
    return None


@register_pass
class InstSimplify(FunctionPass):
    """Fold instructions to existing values, then sweep dead code."""

    name = "instsimplify"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        progress = True
        while progress:
            progress = False
            for block in fn.blocks:
                for inst in list(block.instructions):
                    if inst.parent is None:
                        continue
                    replacement = simplify_instruction(inst)
                    if replacement is not None and replacement is not inst:
                        replace_and_erase(inst, replacement)
                        progress = True
            changed |= progress
        changed |= erase_trivially_dead(fn)
        return changed
