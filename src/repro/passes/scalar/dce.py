"""Dead-code elimination family: -dce, -adce, -bdce.

* ``dce``: sweep trivially dead instructions (no uses, no side effects).
* ``adce``: aggressive DCE — liveness is seeded from side-effecting roots
  and propagated through operands, so mutually-referential dead phi webs
  die too.
* ``bdce``: bit-tracking DCE — computes demanded bits per integer value and
  deletes computations none of whose bits are demanded (plus everything
  plain DCE removes).
"""

from __future__ import annotations

from typing import Dict, List, Set

from ...ir.instructions import (
    BinaryOp,
    Cast,
    Instruction,
    Phi,
)
from ...ir.module import Function
from ...ir.types import IntType
from ...ir.values import ConstantInt, Value
from ..base import FunctionPass, register_pass
from ..utils import erase_trivially_dead


@register_pass
class DCE(FunctionPass):
    """Remove trivially dead instructions."""

    name = "dce"

    def run_on_function(self, fn: Function) -> bool:
        return erase_trivially_dead(fn)


@register_pass
class ADCE(FunctionPass):
    """Aggressive DCE via root-set liveness propagation."""

    name = "adce"

    def run_on_function(self, fn: Function) -> bool:
        live: Set[int] = set()
        worklist: List[Instruction] = []

        for inst in fn.instructions():
            if inst.has_side_effects or inst.is_terminator:
                live.add(id(inst))
                worklist.append(inst)

        while worklist:
            inst = worklist.pop()
            for op in inst.operands:
                if isinstance(op, Instruction) and id(op) not in live:
                    live.add(id(op))
                    worklist.append(op)

        changed = False
        for block in fn.blocks:
            for inst in reversed(list(block.instructions)):
                if id(inst) not in live:
                    from ...ir.values import UndefValue

                    if inst.has_uses:  # uses are all dead too; break cycles
                        inst.replace_all_uses_with(UndefValue(inst.type))
                    inst.erase_from_parent()
                    changed = True
        return changed


_ALL_BITS = (1 << 64) - 1


def _demanded_through(user: Instruction, operand_index: int, demanded_of_user: int) -> int:
    """Bits of the operand demanded, given the bits demanded of the user."""
    if isinstance(user, BinaryOp):
        op = user.opcode
        if op in ("and", "or", "xor", "add", "sub"):
            # add/sub: bit i of an input affects only bits >= i of the output.
            if op in ("add", "sub"):
                if demanded_of_user == 0:
                    return 0
                high = demanded_of_user.bit_length()
                return (1 << high) - 1
            return demanded_of_user
        if op == "shl" and operand_index == 0:
            if isinstance(user.rhs, ConstantInt):
                return demanded_of_user >> user.rhs.value if user.rhs.value >= 0 else _ALL_BITS
        if op in ("lshr", "ashr") and operand_index == 0:
            if isinstance(user.rhs, ConstantInt) and user.rhs.value >= 0:
                return (demanded_of_user << user.rhs.value) & _ALL_BITS
        return _ALL_BITS
    if isinstance(user, Cast):
        if user.opcode == "trunc" and isinstance(user.type, IntType):
            return demanded_of_user & user.type.max_unsigned
        if user.opcode in ("zext", "sext"):
            return demanded_of_user
        return _ALL_BITS
    if isinstance(user, Phi):
        return demanded_of_user
    return _ALL_BITS


def _known_zero_bits(inst: Instruction, known: Dict[int, int]) -> int:
    """Forward known-zero mask for integer instructions (constants and
    earlier instructions consulted through ``known``)."""

    def zeros_of(value) -> int:
        if isinstance(value, ConstantInt):
            return ~value.unsigned & _ALL_BITS
        if isinstance(value, Instruction):
            return known.get(id(value), 0)
        return 0

    if not isinstance(inst.type, IntType):
        return 0
    width_mask = inst.type.max_unsigned
    high_zero = _ALL_BITS & ~width_mask  # bits above the type width

    if isinstance(inst, BinaryOp):
        op = inst.opcode
        lz, rz = zeros_of(inst.lhs), zeros_of(inst.rhs)
        if op == "and":
            return (lz | rz) | high_zero
        if op in ("or", "xor"):
            return (lz & rz) | high_zero
        if op == "shl" and isinstance(inst.rhs, ConstantInt):
            shift = inst.rhs.value % inst.type.bits
            return (((lz << shift) | ((1 << shift) - 1)) & width_mask) | high_zero
        if op == "lshr" and isinstance(inst.rhs, ConstantInt):
            shift = inst.rhs.value % inst.type.bits
            shifted = (lz & width_mask) >> shift
            top = width_mask & ~(width_mask >> shift)
            return shifted | top | high_zero
        return high_zero
    if isinstance(inst, Cast):
        vz = zeros_of(inst.value)
        if inst.opcode == "zext":
            src_mask = inst.value.type.max_unsigned  # type: ignore[union-attr]
            return (vz & src_mask) | (width_mask & ~src_mask) | high_zero
        if inst.opcode == "trunc":
            return (vz & width_mask) | high_zero
        return high_zero
    return 0


@register_pass
class BDCE(FunctionPass):
    """Bit-tracking DCE."""

    name = "bdce"

    def run_on_function(self, fn: Function) -> bool:
        # Backwards propagation of demanded bits to a fixpoint.
        demanded: Dict[int, int] = {}
        insts = [
            i
            for i in fn.instructions()
            if isinstance(i.type, IntType) and not i.has_side_effects
        ]
        int_insts = {id(i) for i in insts}

        def demanded_of(inst: Instruction) -> int:
            mask = inst.type.max_unsigned if isinstance(inst.type, IntType) else _ALL_BITS
            total = 0
            for use in inst.uses:
                user = use.user
                if not isinstance(user, Instruction):
                    return mask
                if id(user) in int_insts:
                    user_demand = demanded.get(id(user), mask)
                else:
                    user_demand = _ALL_BITS
                total |= _demanded_through(user, use.index, user_demand)
                if total == mask:
                    break
            return total & mask

        changed_fixpoint = True
        iterations = 0
        while changed_fixpoint and iterations < 16:
            changed_fixpoint = False
            iterations += 1
            for inst in insts:
                new = demanded_of(inst)
                if demanded.get(id(inst)) != new:
                    demanded[id(inst)] = new
                    changed_fixpoint = True

        # Forward known-zero bits, in program order (defs precede uses
        # except via phis, which we leave unknown).
        known_zero: Dict[int, int] = {}
        for block in fn.blocks:
            for inst in block.instructions:
                if id(inst) in int_insts:
                    known_zero[id(inst)] = _known_zero_bits(inst, known_zero)

        changed = False
        for inst in insts:
            if inst.parent is None or not inst.has_uses:
                continue
            if not isinstance(inst.type, IntType):
                continue
            mask = inst.type.max_unsigned
            wanted = demanded.get(id(inst), mask) & mask
            provably_zero = known_zero.get(id(inst), 0)
            if wanted == 0 or wanted & ~provably_zero == 0:
                inst.replace_all_uses_with(ConstantInt(inst.type, 0))
                changed = True
        changed |= erase_trivially_dead(fn)
        return changed
