"""-simplifycfg: CFG cleanup.

Iterates to a fixpoint over: unreachable-block removal, constant-branch
folding, straight-line block merging, empty-block forwarding, phi
simplification, and if-conversion of small diamonds/triangles into
``select`` (the speculation part of LLVM's SimplifyCFG).
"""

from __future__ import annotations

from typing import List, Optional

from ...ir.builder import IRBuilder
from ...ir.instructions import Branch, Instruction, Phi, Select
from ...ir.module import BasicBlock, Function
from ..base import FunctionPass, register_pass
from ...analysis.cfg import remove_unreachable_blocks
from ..utils import (
    constant_fold_terminator,
    merge_block_into_predecessor,
    simplify_single_incoming_phis,
)

#: Max speculatable instructions hoisted out of one side of a diamond.
SPECULATION_BUDGET = 3


def _is_empty_forwarder(block: BasicBlock) -> bool:
    """Only an unconditional branch, no phis, not the entry block."""
    term = block.terminator
    return (
        len(block.instructions) == 1
        and isinstance(term, Branch)
        and not term.is_conditional
        and block.parent is not None
        and block is not block.parent.entry
    )


def _forward_empty_block(block: BasicBlock) -> bool:
    """Redirect predecessors of an empty block straight to its successor."""
    succ = block.successors()[0]
    if succ is block:
        return False
    preds = block.predecessors()
    if not preds:
        return False
    # If the successor has phis we must be able to attribute a value to each
    # redirected predecessor; bail out if a pred already reaches succ with a
    # conflicting value.
    for phi in succ.phis():
        via_block = phi.incoming_for_block(block)
        for pred in preds:
            existing = phi.incoming_for_block(pred)
            if existing is not None and existing is not via_block:
                return False
    changed = False
    for pred in preds:
        term = pred.terminator
        assert term is not None
        already_pred_of_succ = any(s is succ for s in pred.successors())
        for i, op in enumerate(term.operands):
            if op is block:
                term.set_operand(i, succ)
        for phi in succ.phis():
            via_block = phi.incoming_for_block(block)
            assert via_block is not None
            if phi.incoming_for_block(pred) is None:
                phi.add_incoming(via_block, pred)
        changed = True
        del already_pred_of_succ
    for phi in succ.phis():
        phi.remove_incoming(block)
    block.erase_from_parent()
    return changed


def _hoistable_body(block: BasicBlock, merge: BasicBlock) -> Optional[List[Instruction]]:
    """Instructions of a side block if the whole body is speculatable."""
    term = block.terminator
    if not isinstance(term, Branch) or term.is_conditional:
        return None
    if term.targets[0] is not merge:
        return None
    if block.phis():
        return None
    body = block.instructions[:-1]
    if len(body) > SPECULATION_BUDGET:
        return None
    if not all(inst.is_speculatable for inst in body):
        return None
    return body


def _try_if_conversion(block: BasicBlock) -> bool:
    """Convert diamonds/triangles hanging off ``block`` into selects."""
    term = block.terminator
    if not isinstance(term, Branch) or not term.is_conditional:
        return False
    then_b, else_b = term.true_target, term.false_target
    if then_b is else_b:
        return False

    # Diamond: block -> {then, else} -> merge
    then_body = _diamond_side(block, then_b)
    else_body = _diamond_side(block, else_b)

    merge: Optional[BasicBlock] = None
    if then_body is not None and else_body is not None:
        m1 = then_b.successors()[0]
        m2 = else_b.successors()[0]
        if m1 is m2:
            merge = m1
            sides = [(then_b, then_body), (else_b, else_body)]
        else:
            return False
    elif then_body is not None and then_b.successors()[0] is else_b:
        merge = else_b  # triangle: block -> then -> else, block -> else
        sides = [(then_b, then_body)]
    elif else_body is not None and else_b.successors()[0] is then_b:
        merge = then_b
        sides = [(else_b, else_body)]
    else:
        return False

    if merge is block:
        return False
    # Each side must be used only on this path.
    for side, _ in sides:
        if side.predecessors() != [block]:
            return False

    cond = term.condition

    # Hoist side bodies before the terminator.
    for side, body in sides:
        for inst in body:
            side.instructions.remove(inst)
            inst.parent = None
            block.insert_before_terminator(inst)

    # Rewrite merge phis into selects.
    for phi in list(merge.phis()):
        # Determine per-path values.
        if len(sides) == 2:
            then_value = phi.incoming_for_block(then_b)
            else_value = phi.incoming_for_block(else_b)
        else:
            side_block = sides[0][0]
            side_value = phi.incoming_for_block(side_block)
            direct_value = phi.incoming_for_block(block)
            if side_block is then_b:
                then_value, else_value = side_value, direct_value
            else:
                then_value, else_value = direct_value, side_value
        if then_value is None or else_value is None:
            continue
        if then_value is else_value:
            replacement = then_value
        else:
            select = Select(cond, then_value, else_value, phi.name)
            select.name = block.parent.next_name(phi.name or "sel")
            block.insert_before_terminator(select)
            replacement = select
        # Remove the collapsed incomings and add the one from `block`.
        for side_block, _ in sides:
            phi.remove_incoming(side_block)
        phi.remove_incoming(block)
        if phi.num_incoming == 0:
            phi.replace_all_uses_with(replacement)
            phi.erase_from_parent()
        else:
            phi.add_incoming(replacement, block)

    # Retarget block directly at merge.
    term.erase_from_parent()
    IRBuilder(block).br(merge)
    for side, _ in sides:
        side.erase_from_parent()
    return True


def _diamond_side(block: BasicBlock, side: BasicBlock) -> Optional[List[Instruction]]:
    if side.single_predecessor is not block:
        return None
    succs = side.successors()
    if len(succs) != 1:
        return None
    return _hoistable_body(side, succs[0])


@register_pass
class SimplifyCFG(FunctionPass):
    """Canonicalize and shrink the control-flow graph."""

    name = "simplifycfg"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        progress = True
        while progress:
            progress = False
            progress |= remove_unreachable_blocks(fn)
            for block in list(fn.blocks):
                if block.parent is None:
                    continue
                progress |= constant_fold_terminator(block)
                progress |= simplify_single_incoming_phis(block)
            for block in list(fn.blocks):
                if block.parent is None:
                    continue
                if _is_empty_forwarder(block):
                    progress |= _forward_empty_block(block)
            for block in list(fn.blocks):
                if block.parent is None:
                    continue
                progress |= merge_block_into_predecessor(block)
            for block in list(fn.blocks):
                if block.parent is None:
                    continue
                progress |= _try_if_conversion(block)
            changed |= progress
        return changed
