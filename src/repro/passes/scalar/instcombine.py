"""-instcombine: peephole combining.

Runs :func:`~repro.passes.scalar.instsimplify.simplify_instruction` plus a
library of combines that are allowed to *create* instructions:
canonicalization (constants to the RHS), constant reassociation,
strength reduction, cast and GEP chain collapsing, not-of-compare
inversion, and branch-on-not target swapping. Everything is semantics
preserving for all inputs (no poison/nsw-style assumptions).
"""

from __future__ import annotations

from typing import Optional

from ...ir.instructions import (
    BinaryOp,
    Branch,
    Cast,
    GetElementPtr,
    ICmp,
    Instruction,
    Select,
    INVERTED_PREDICATE,
    SWAPPED_PREDICATE,
)
from ...ir.module import BasicBlock, Function
from ...ir.types import IntType
from ...ir.values import ConstantInt, Value
from ..base import FunctionPass, register_pass
from ..fold import fold_binary
from .instsimplify import simplify_instruction
from ..utils import erase_trivially_dead, replace_and_erase


def _is_not(value: Value) -> Optional[Value]:
    """Match ``xor x, -1``; returns x."""
    if (
        isinstance(value, BinaryOp)
        and value.opcode == "xor"
        and isinstance(value.rhs, ConstantInt)
        and value.rhs.is_all_ones()
    ):
        return value.lhs
    return None


class _Combiner:
    def __init__(self, fn: Function):
        self.fn = fn
        self.changed = False

    def _replace(self, inst: Instruction, value: Value) -> None:
        replace_and_erase(inst, value)
        self.changed = True

    def _insert_new(self, new: Instruction, at: Instruction) -> Instruction:
        new.name = self.fn.next_name(at.name or "c")
        new.insert_before(at)
        return new

    def _replace_with_new(self, inst: Instruction, new: Instruction) -> None:
        self._insert_new(new, inst)
        self._replace(inst, new)

    # -- per-instruction dispatch -----------------------------------------
    def combine(self, inst: Instruction) -> None:
        simplified = simplify_instruction(inst)
        if simplified is not None and simplified is not inst:
            self._replace(inst, simplified)
            return
        if isinstance(inst, BinaryOp):
            self._combine_binary(inst)
        elif isinstance(inst, ICmp):
            self._combine_icmp(inst)
        elif isinstance(inst, Cast):
            self._combine_cast(inst)
        elif isinstance(inst, GetElementPtr):
            self._combine_gep(inst)
        elif isinstance(inst, Select):
            self._combine_select(inst)
        elif isinstance(inst, Branch):
            self._combine_branch(inst)

    def _combine_binary(self, inst: BinaryOp) -> None:
        # Canonicalize: constant operand to the right for commutative ops.
        if (
            inst.is_commutative
            and isinstance(inst.lhs, ConstantInt)
            and not isinstance(inst.rhs, ConstantInt)
        ):
            lhs, rhs = inst.lhs, inst.rhs
            inst.set_operand(0, rhs)
            inst.set_operand(1, lhs)
            self.changed = True

        op = inst.opcode
        lhs, rhs = inst.lhs, inst.rhs

        # sub x, C  ->  add x, -C  (canonical form feeds reassociation)
        if op == "sub" and isinstance(rhs, ConstantInt) and isinstance(inst.type, IntType):
            self._replace_with_new(
                inst, BinaryOp("add", lhs, ConstantInt(inst.type, -rhs.value))
            )
            return

        # (x op C1) op C2 -> x op (C1 op C2) for associative ops.
        if (
            op in ("add", "mul", "and", "or", "xor")
            and isinstance(rhs, ConstantInt)
            and isinstance(lhs, BinaryOp)
            and lhs.opcode == op
            and isinstance(lhs.rhs, ConstantInt)
        ):
            folded = fold_binary(op, lhs.rhs, rhs)
            if folded is not None:
                self._replace_with_new(inst, BinaryOp(op, lhs.lhs, folded))
                return

        # add x, x -> shl x, 1
        if op == "add" and lhs is rhs and isinstance(inst.type, IntType):
            self._replace_with_new(
                inst, BinaryOp("shl", lhs, ConstantInt(inst.type, 1))
            )
            return

        # Strength reduction by powers of two (exact transformations only).
        if isinstance(rhs, ConstantInt) and rhs.is_power_of_two():
            shift = ConstantInt(inst.type, rhs.log2())  # type: ignore[arg-type]
            if op == "mul":
                self._replace_with_new(inst, BinaryOp("shl", lhs, shift))
                return
            if op == "udiv":
                self._replace_with_new(inst, BinaryOp("lshr", lhs, shift))
                return
            if op == "urem":
                mask = ConstantInt(inst.type, rhs.value - 1)  # type: ignore[arg-type]
                self._replace_with_new(inst, BinaryOp("and", lhs, mask))
                return

        # not(not x) -> x
        if op == "xor":
            inner = _is_not(inst)
            if inner is not None:
                inner2 = _is_not(inner)
                if inner2 is not None:
                    self._replace(inst, inner2)
                    return
                # not(icmp) -> inverted icmp when that is the only use.
                if (
                    isinstance(inner, ICmp)
                    and inner.num_uses == 1
                    and inner.parent is not None
                ):
                    inverted = ICmp(
                        INVERTED_PREDICATE[inner.predicate], inner.lhs, inner.rhs
                    )
                    self._replace_with_new(inst, inverted)
                    return

    def _combine_icmp(self, inst: ICmp) -> None:
        # Constant to the RHS.
        if isinstance(inst.lhs, ConstantInt) and not isinstance(inst.rhs, ConstantInt):
            lhs, rhs = inst.lhs, inst.rhs
            inst.predicate = SWAPPED_PREDICATE[inst.predicate]
            inst.set_operand(0, rhs)
            inst.set_operand(1, lhs)
            self.changed = True

        # icmp eq/ne (add x, C1), C2  ->  icmp eq/ne x, C2-C1 (wrap-safe).
        if (
            inst.predicate in ("eq", "ne")
            and isinstance(inst.rhs, ConstantInt)
            and isinstance(inst.lhs, BinaryOp)
            and inst.lhs.opcode == "add"
            and isinstance(inst.lhs.rhs, ConstantInt)
        ):
            add = inst.lhs
            new_rhs = fold_binary("sub", inst.rhs, add.rhs)
            if new_rhs is not None:
                self._replace_with_new(
                    inst, ICmp(inst.predicate, add.lhs, new_rhs)
                )

    def _combine_cast(self, inst: Cast) -> None:
        value = inst.value
        if not isinstance(value, Cast):
            return
        # zext(zext x) -> zext x ; sext(sext x) -> sext x
        if inst.opcode == value.opcode and inst.opcode in ("zext", "sext"):
            self._replace_with_new(inst, Cast(inst.opcode, value.value, inst.type))
            return
        # trunc(zext/sext x) where sizes round-trip.
        if inst.opcode == "trunc" and value.opcode in ("zext", "sext"):
            src_ty = value.value.type
            if src_ty == inst.type:
                self._replace(inst, value.value)
                return
            if (
                isinstance(src_ty, IntType)
                and isinstance(inst.type, IntType)
                and inst.type.bits < src_ty.bits
            ):
                self._replace_with_new(inst, Cast("trunc", value.value, inst.type))
                return

    def _combine_gep(self, inst: GetElementPtr) -> None:
        base = inst.pointer
        # gep(gep p, C1), C2 -> gep p, C1+C2 for single-index chains of the
        # same element type.
        if (
            isinstance(base, GetElementPtr)
            and len(inst.indices) == 1
            and len(base.indices) == 1
            and base.pointer.type == inst.pointer.type
            and inst.type == inst.pointer.type
        ):
            a, b = base.indices[0], inst.indices[0]
            if isinstance(a, ConstantInt) and isinstance(b, ConstantInt) and a.type == b.type:
                merged = ConstantInt(a.int_type, a.value + b.value)
                self._replace_with_new(inst, GetElementPtr(base.pointer, [merged]))

    def _combine_select(self, inst: Select) -> None:
        inner = _is_not(inst.condition)
        if inner is not None:
            self._replace_with_new(
                inst, Select(inner, inst.false_value, inst.true_value)
            )

    def _combine_branch(self, inst: Branch) -> None:
        if not inst.is_conditional:
            return
        inner = _is_not(inst.condition)
        if inner is not None:
            then, els = inst.true_target, inst.false_target
            inst.set_operand(0, inner)
            inst.set_operand(1, els)
            inst.set_operand(2, then)
            self.changed = True


@register_pass
class InstCombine(FunctionPass):
    """Peephole instruction combining to a fixpoint (bounded)."""

    name = "instcombine"

    MAX_ITERATIONS = 8

    def run_on_function(self, fn: Function) -> bool:
        combiner = _Combiner(fn)
        total_changed = False
        for _ in range(self.MAX_ITERATIONS):
            combiner.changed = False
            for block in fn.blocks:
                for inst in list(block.instructions):
                    if inst.parent is not None:
                        combiner.combine(inst)
            if erase_trivially_dead(fn):
                combiner.changed = True
            if not combiner.changed:
                break
            total_changed = True
        return total_changed
