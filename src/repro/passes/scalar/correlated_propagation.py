"""-correlated-propagation: exploit dominating branch conditions.

Inside the region dominated by a branch side that is entered only through
that branch, the branch condition is a known boolean, and an ``icmp eq x, C``
condition additionally pins ``x`` to ``C``. Both facts are propagated into
dominated uses — LLVM's CorrelatedValuePropagation, minus the range
analysis.
"""

from __future__ import annotations

from typing import List, Tuple

from ...analysis.dominators import DominatorTree
from ...ir.instructions import Branch, ICmp, Instruction, Phi
from ...ir.module import BasicBlock, Function
from ...ir.types import I1
from ...ir.values import Constant, ConstantInt, Value
from ..base import FunctionPass, register_pass
from ..utils import erase_trivially_dead


def _replace_dominated_uses(
    dom: DominatorTree, value: Value, replacement: Value, region_root: BasicBlock
) -> bool:
    """Replace uses of ``value`` whose use-point lies in blocks dominated by
    ``region_root`` (phi uses count at the incoming block)."""
    changed = False
    for use in list(value.uses):
        user = use.user
        if not isinstance(user, Instruction) or user.parent is None:
            continue
        if isinstance(user, Phi):
            if use.index % 2 != 0:
                continue  # a block operand, never replaced here
            pred = user.operand(use.index + 1)
            location = pred
        else:
            location = user.parent
        if location is None:
            continue
        if dom.dominates_block(region_root, location):  # type: ignore[arg-type]
            user.set_operand(use.index, replacement)
            changed = True
    return changed


@register_pass
class CorrelatedPropagation(FunctionPass):
    """Propagate branch-implied equalities into dominated code."""

    name = "correlated-propagation"

    def run_on_function(self, fn: Function) -> bool:
        dom = DominatorTree(fn)
        changed = False
        for block in list(fn.blocks):
            term = block.terminator
            if not isinstance(term, Branch) or not term.is_conditional:
                continue
            cond = term.condition
            if isinstance(cond, Constant):
                continue
            for taken, edge_value in ((term.true_target, 1), (term.false_target, 0)):
                other = term.false_target if edge_value else term.true_target
                if taken is other:
                    continue
                # The fact only holds if `taken` is entered exclusively via
                # this edge.
                if taken.predecessors() != [block]:
                    continue
                if not dom.is_reachable(taken):
                    continue
                # Fact 1: the condition itself is a known boolean.
                changed |= _replace_dominated_uses(
                    dom, cond, ConstantInt(I1, edge_value), taken
                )
                # Fact 2: `icmp eq x, C` pins x to C on the true side
                # (and `icmp ne x, C` pins it on the false side).
                if isinstance(cond, ICmp) and isinstance(cond.rhs, Constant):
                    pins = (cond.predicate == "eq" and edge_value == 1) or (
                        cond.predicate == "ne" and edge_value == 0
                    )
                    if pins and not isinstance(cond.lhs, Constant):
                        changed |= _replace_dominated_uses(
                            dom, cond.lhs, cond.rhs, taken
                        )
        if changed:
            erase_trivially_dead(fn)
        return changed
