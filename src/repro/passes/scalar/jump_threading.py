"""-jump-threading: thread edges through blocks whose branch outcome is
known per-predecessor.

The implemented (sound, restricted) form: a block consisting of phis plus
an optional comparison feeding its conditional branch can be bypassed by
any predecessor whose incoming values decide the branch — the predecessor
is retargeted straight at the taken successor.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...ir.instructions import Branch, ICmp, Instruction, Phi
from ...ir.module import BasicBlock, Function
from ...ir.values import ConstantInt, Value
from ..base import FunctionPass, register_pass
from ..fold import fold_icmp
from ..utils import erase_trivially_dead, simplify_single_incoming_phis


class _NotThreadable(Exception):
    pass


def _threadable_shape(block: BasicBlock) -> Optional[ICmp]:
    """Check block is phis + [icmp] + cond-br. Returns the icmp, or None
    when the branch condition is itself a phi of the block; raises
    :class:`_NotThreadable` for any other shape."""
    term = block.terminator
    if not isinstance(term, Branch) or not term.is_conditional:
        raise _NotThreadable
    body = [i for i in block.instructions if not isinstance(i, Phi)][:-1]
    cond = term.condition
    if len(body) == 0:
        if isinstance(cond, Phi) and cond.parent is block:
            return None  # condition is a phi of this block
        raise _NotThreadable
    if len(body) == 1 and body[0] is cond and isinstance(cond, ICmp):
        return cond
    raise _NotThreadable


def _known_condition_for_pred(
    block: BasicBlock, pred: BasicBlock, cond: Value, icmp: Optional[ICmp]
) -> Optional[int]:
    """Value of the branch condition when entered from ``pred``, if known."""

    def incoming(value: Value) -> Value:
        if isinstance(value, Phi) and value.parent is block:
            got = value.incoming_for_block(pred)
            return got if got is not None else value
        return value

    if icmp is None:
        value = incoming(cond)
        return value.value if isinstance(value, ConstantInt) else None
    lhs = incoming(icmp.lhs)
    rhs = incoming(icmp.rhs)
    folded = fold_icmp(icmp.predicate, lhs, rhs)
    return folded.value if folded is not None else None


def _values_escape(block: BasicBlock) -> bool:
    """True if a phi (or the compare) of ``block`` is used anywhere beyond
    the block itself or as a phi incoming in a direct successor — in which
    case bypassing the block would leave those uses undominated."""
    successors = {id(s) for s in block.successors()}
    for inst in block.instructions:
        if inst.type.is_void:
            continue
        for use in inst.uses:
            user = use.user
            if not isinstance(user, Instruction) or user.parent is None:
                return True
            if user.parent is block:
                continue
            if (
                isinstance(user, Phi)
                and id(user.parent) in successors
                and use.index % 2 == 0
                and user.incoming_block(use.index // 2) is block
            ):
                continue
            return True
    return False


def _thread_one(block: BasicBlock) -> bool:
    try:
        icmp = _threadable_shape(block)
    except _NotThreadable:
        return False
    if _values_escape(block):
        return False
    term = block.terminator
    assert isinstance(term, Branch)
    cond = term.condition

    changed = False
    for pred in list(block.predecessors()):
        # Threading through a self-loop or a switch-pred is not handled.
        pterm = pred.terminator
        if not isinstance(pterm, Branch) or pred is block:
            continue
        # Both edge slots pointing here (degenerate cond br) — skip.
        if sum(1 for t in pterm.targets if t is block) != 1:
            continue
        known = _known_condition_for_pred(block, pred, cond, icmp)
        if known is None:
            continue
        target = term.true_target if known else term.false_target
        if target is block:
            continue
        # If pred already branches to target, phi entries would conflict.
        if any(s is target for s in pred.successors()):
            continue

        # Map values that flow from `block` into `target`'s phis. Values
        # defined above `block` dominate `pred` too (every path to `pred`
        # extends to one reaching `block`), so only block-local producers
        # (its phis and the icmp) need translation.
        mapping = []
        feasible = True
        for phi in target.phis():
            via_block = phi.incoming_for_block(block)
            if via_block is None:
                continue
            value: Value = via_block
            if isinstance(value, Phi) and value.parent is block:
                mapped = value.incoming_for_block(pred)
                if mapped is None:
                    feasible = False
                    break
                value = mapped
            elif isinstance(value, Instruction) and value.parent is block:
                if icmp is not None and value is icmp:
                    value = ConstantInt(value.type, known)  # type: ignore[arg-type]
                else:
                    feasible = False
                    break
            mapping.append((phi, value))
        if not feasible:
            continue
        for phi, value in mapping:
            phi.add_incoming(value, pred)
        for i, op in enumerate(pterm.operands):
            if op is block:
                pterm.set_operand(i, target)
        block.remove_phi_incoming_for(pred)
        changed = True
    return changed


@register_pass
class JumpThreading(FunctionPass):
    """Thread provably-taken edges around phi-driven branches."""

    name = "jump-threading"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        for block in list(fn.blocks):
            if block.parent is None:
                continue
            if _thread_one(block):
                changed = True
        if changed:
            for block in fn.blocks:
                simplify_single_incoming_phis(block)
            erase_trivially_dead(fn)
        return changed
