"""Memory-motion passes: -memcpyopt and -mldst-motion.

* ``memcpyopt``: recognizes runs of adjacent byte-splat constant stores
  (typically zero-initialization emitted element-by-element) and replaces
  them with a single ``llvm.memset`` call — a large code-size win.
* ``mldst-motion``: merges loads/stores duplicated on both sides of a
  diamond — identical leading loads are hoisted into the predecessor, and
  trailing stores to the same location are sunk into the merge block with
  a phi of the stored values.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...ir.builder import IRBuilder
from ...ir.instructions import (
    Branch,
    Call,
    Cast,
    GetElementPtr,
    Instruction,
    Load,
    Phi,
    Store,
)
from ...ir.module import BasicBlock, Function, Module
from ...ir.types import FunctionType, IntType, PointerType, I8, I64, VOID
from ...ir.values import ConstantInt, Value
from ..base import FunctionPass, register_pass
from ...analysis.memdep import must_alias

#: Minimum bytes covered by a store run before memset pays for itself.
MEMSET_MIN_BYTES = 16


def _splat_byte(value: Value) -> Optional[int]:
    """The single repeated byte of a constant, if any."""
    if not isinstance(value, ConstantInt):
        return None
    size = value.type.size
    raw = value.unsigned.to_bytes(size, "little")
    if all(b == raw[0] for b in raw):
        return raw[0]
    return None


def _store_target(store: Store) -> Optional[Tuple[Value, int, int]]:
    """Decompose a store into (base pointer, byte offset, byte size)."""
    pointer = store.pointer
    size = store.value.type.size
    if isinstance(pointer, GetElementPtr):
        offset = pointer.constant_offset()
        if offset is None:
            return None
        return (pointer.pointer, offset, size)
    return (pointer, 0, size)


def _get_memset(module: Module) -> "Function":
    from ...ir.module import Function

    ftype = FunctionType(VOID, [PointerType(I8), I8, I64])
    fn = module.get_or_insert_function("llvm.memset.p0i8.i64", ftype)
    fn.attributes.add("nounwind")
    return fn


def _try_memset_run(block: BasicBlock, start_index: int) -> int:
    """Try to convert a run of stores starting at ``start_index`` into a
    memset; returns the number of instructions consumed."""
    insts = block.instructions
    first = insts[start_index]
    assert isinstance(first, Store)
    byte = _splat_byte(first.value)
    if byte is None:
        return 1
    target = _store_target(first)
    if target is None:
        return 1
    base, start_off, size = target

    run: List[Store] = [first]
    covered = [(start_off, start_off + size)]
    for inst in insts[start_index + 1 :]:
        if isinstance(inst, Store):
            t = _store_target(inst)
            if t is None or t[0] is not base or _splat_byte(inst.value) != byte:
                break
            run.append(inst)
            covered.append((t[1], t[1] + t[2]))
            continue
        if isinstance(inst, (GetElementPtr, Cast)) or (
            not inst.may_read_memory
            and not inst.has_side_effects
            and not inst.is_terminator
        ):
            continue  # address computation between the stores
        break  # reads, calls and control flow end the run

    if len(run) < 2:
        return 1
    pairs = sorted(zip(covered, run), key=lambda p: p[0])
    lo = pairs[0][0][0]
    hi = pairs[0][0][1]
    contiguous = [pairs[0][1]]
    for span, store in pairs[1:]:
        if span[0] <= hi:
            hi = max(hi, span[1])
            contiguous.append(store)
        else:
            break
    if hi - lo < MEMSET_MIN_BYTES or len(contiguous) < 4:
        return 1

    fn = block.parent
    assert fn is not None and fn.module is not None
    memset = _get_memset(fn.module)
    # Build: bitcast base to i8*, gep to lo, call memset. Insert before the
    # program-order start of the run (all run stores are consecutive and
    # non-contiguous ones touch disjoint bytes, so ordering is preserved).
    insert_at = run[0]
    i8p = PointerType(I8)
    cast = Cast("bitcast", base, i8p, fn.next_name("ms"))
    cast.insert_before(insert_at)
    dst: Value = cast
    if lo:
        gep = GetElementPtr(cast, [ConstantInt(I64, lo)], fn.next_name("ms"))
        gep.insert_before(insert_at)
        dst = gep
    call = Call(memset, [dst, ConstantInt(I8, byte), ConstantInt(I64, hi - lo)])
    call.insert_before(insert_at)
    for store in contiguous:
        store.erase_from_parent()
    return 3  # cast [+ gep] + call


@register_pass
class MemCpyOpt(FunctionPass):
    """Form memset calls from adjacent splat-constant store runs."""

    name = "memcpyopt"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        for block in fn.blocks:
            i = 0
            while i < len(block.instructions):
                inst = block.instructions[i]
                if isinstance(inst, Store):
                    before = len(block.instructions)
                    consumed = _try_memset_run(block, i)
                    if len(block.instructions) != before:
                        changed = True
                    i += consumed
                else:
                    i += 1
        return changed


def _diamond(block: BasicBlock) -> Optional[Tuple[BasicBlock, BasicBlock, BasicBlock]]:
    term = block.terminator
    if not isinstance(term, Branch) or not term.is_conditional:
        return None
    t, f = term.true_target, term.false_target
    if t is f:
        return None
    if t.single_predecessor is not block or f.single_predecessor is not block:
        return None
    ts, fs = t.successors(), f.successors()
    if len(ts) != 1 or len(fs) != 1 or ts[0] is not fs[0]:
        return None
    return (t, f, ts[0])


@register_pass
class MergedLoadStoreMotion(FunctionPass):
    """Hoist duplicated loads / sink duplicated stores across diamonds."""

    name = "mldst-motion"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        for block in list(fn.blocks):
            if block.parent is None:
                continue
            shape = _diamond(block)
            if shape is None:
                continue
            then_b, else_b, merge = shape
            changed |= self._hoist_loads(block, then_b, else_b)
            changed |= self._sink_stores(then_b, else_b, merge)
        return changed

    def _hoist_loads(
        self, pred: BasicBlock, then_b: BasicBlock, else_b: BasicBlock
    ) -> bool:
        t0 = then_b.first_non_phi
        e0 = else_b.first_non_phi
        if (
            isinstance(t0, Load)
            and isinstance(e0, Load)
            and t0 is then_b.instructions[0]
            and e0 is else_b.instructions[0]
            and must_alias(t0.pointer, e0.pointer)
            and t0.type == e0.type
        ):
            then_b.instructions.remove(t0)
            t0.parent = None
            pred.insert_before_terminator(t0)
            e0.replace_all_uses_with(t0)
            e0.erase_from_parent()
            return True
        return False

    def _sink_stores(
        self, then_b: BasicBlock, else_b: BasicBlock, merge: BasicBlock
    ) -> bool:
        ts = then_b.instructions[-2] if len(then_b.instructions) >= 2 else None
        es = else_b.instructions[-2] if len(else_b.instructions) >= 2 else None
        if not (isinstance(ts, Store) and isinstance(es, Store)):
            return False
        if not must_alias(ts.pointer, es.pointer):
            return False
        if ts.value.type != es.value.type:
            return False
        # The pointer must dominate the merge block: reuse the then-side
        # pointer only if it is defined outside both arms.
        if (
            isinstance(ts.pointer, Instruction)
            and ts.pointer.parent in (then_b, else_b)
        ):
            return False
        if merge.predecessors() != [then_b, else_b] and merge.predecessors() != [
            else_b,
            then_b,
        ]:
            return False
        fn = then_b.parent
        assert fn is not None
        phi = Phi(ts.value.type, fn.next_name("sink"))
        merge.insert(0, phi)
        phi.add_incoming(ts.value, then_b)
        phi.add_incoming(es.value, else_b)
        store = Store(phi, ts.pointer, ts.alignment)
        first = merge.first_non_phi
        if first is None:
            merge.append(store)
        else:
            store.insert_before(first)
        ts.erase_from_parent()
        es.erase_from_parent()
        return True
