"""Scalar (function-level) optimization passes."""

from . import (  # noqa: F401 - importing registers the passes
    correlated_propagation,
    dce,
    dse,
    early_cse,
    gvn,
    instcombine,
    instsimplify,
    jump_threading,
    mem2reg,
    memopt,
    misc,
    reassociate,
    sccp,
    simplifycfg,
    speculative_execution,
    sroa,
    tailcallelim,
)
