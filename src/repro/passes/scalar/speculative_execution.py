"""-speculative-execution: hoist cheap speculatable instructions from a
conditionally-executed block into its predecessor.

This exposes them to CSE across both branch directions; it is the
straight-code part of if-conversion (no CFG change).
"""

from __future__ import annotations

from ...ir.instructions import Branch, Instruction, Phi
from ...ir.module import BasicBlock, Function
from ..base import FunctionPass, register_pass

#: Maximum instructions hoisted from one target block.
HOIST_BUDGET = 4


def _hoist_from(target: BasicBlock, pred: BasicBlock) -> bool:
    """Hoist leading speculatable instructions of ``target`` into ``pred``."""
    if target.single_predecessor is not pred:
        return False
    if target.phis():
        return False
    changed = False
    hoisted = 0
    for inst in list(target.instructions):
        if inst.is_terminator or hoisted >= HOIST_BUDGET:
            break
        if not inst.is_speculatable:
            break
        # Operands must be visible in pred (they are unless defined in
        # `target` by an earlier, unhoisted instruction — but we hoist in
        # order, so anything defined earlier in `target` has been hoisted).
        if any(
            isinstance(op, Instruction) and op.parent is target
            for op in inst.operands
        ):
            break
        target.instructions.remove(inst)
        inst.parent = None
        pred.insert_before_terminator(inst)
        hoisted += 1
        changed = True
    return changed


@register_pass
class SpeculativeExecution(FunctionPass):
    """Speculatively hoist instructions above conditional branches."""

    name = "speculative-execution"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        for block in list(fn.blocks):
            term = block.terminator
            if not isinstance(term, Branch) or not term.is_conditional:
                continue
            for target in (term.true_target, term.false_target):
                changed |= _hoist_from(target, block)
        return changed
