"""-gvn: global value numbering.

Two cooperating engines:

* *Value numbering*: expressions are numbered over the value numbers of
  their operands (iterated over RPO until stable), so congruences that
  plain CSE misses — equivalent phis, chains through distinct-but-equal
  intermediates — are found. Instructions whose number already has a
  dominating leader are replaced.
* *Load elimination*: backwards walk from each load along the single-pred
  chain, forwarding must-alias stores and CSE-ing must-alias loads, with a
  conservative clobber scan in between.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...analysis.cfg import reverse_postorder
from ...analysis.dominators import DominatorTree
from ...analysis.memdep import may_alias, must_alias, pointer_escapes, underlying_object
from ...ir.instructions import (
    Alloca,
    BinaryOp,
    Call,
    Cast,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Select,
    Store,
    COMMUTATIVE_OPS,
)
from ...ir.module import BasicBlock, Function
from ...ir.values import Constant, ConstantFloat, ConstantInt, Value
from ..base import FunctionPass, register_pass
from ..utils import erase_trivially_dead, replace_and_erase

#: How many single-predecessor blocks a load may look through.
LOAD_WALK_LIMIT = 8


class _ValueNumbering:
    def __init__(self) -> None:
        self.vn: Dict[int, int] = {}
        self.expr: Dict[Tuple, int] = {}
        self.next = 0

    def fresh(self) -> int:
        self.next += 1
        return self.next

    def of(self, value: Value) -> int:
        key = id(value)
        number = self.vn.get(key)
        if number is not None:
            return number
        if isinstance(value, ConstantInt):
            ekey = ("cint", value.type, value.value)
        elif isinstance(value, ConstantFloat):
            ekey = ("cfloat", value.type, value.value)
        elif isinstance(value, Constant):
            ekey = ("const", id(value))
        else:
            ekey = ("leader", id(value))
        number = self.expr.get(ekey)
        if number is None:
            number = self.fresh()
            self.expr[ekey] = number
        self.vn[key] = number
        return number

    def expression_key(self, inst: Instruction) -> Optional[Tuple]:
        if isinstance(inst, BinaryOp):
            ops = (self.of(inst.lhs), self.of(inst.rhs))
            if inst.opcode in COMMUTATIVE_OPS:
                ops = tuple(sorted(ops))
            return ("bin", inst.opcode, inst.type, ops)
        if isinstance(inst, ICmp):
            return ("icmp", inst.predicate, self.of(inst.lhs), self.of(inst.rhs))
        if isinstance(inst, FCmp):
            return ("fcmp", inst.predicate, self.of(inst.lhs), self.of(inst.rhs))
        if isinstance(inst, Cast):
            return ("cast", inst.opcode, inst.type, self.of(inst.value))
        if isinstance(inst, GetElementPtr):
            return ("gep", inst.type, tuple(self.of(op) for op in inst.operands))
        if isinstance(inst, Select):
            return ("select", tuple(self.of(op) for op in inst.operands))
        if isinstance(inst, Phi):
            arms = tuple(
                sorted(
                    (id(inst.incoming_block(i)), self.of(inst.incoming_value(i)))
                    for i in range(inst.num_incoming)
                )
            )
            return ("phi", id(inst.parent), arms)
        return None

    def number(self, inst: Instruction) -> int:
        key = self.expression_key(inst)
        if key is None:
            number = self.vn.get(id(inst))
            if number is None:
                number = self.fresh()
                self.vn[id(inst)] = number
            return number
        number = self.expr.get(key)
        if number is None:
            number = self.fresh()
            self.expr[key] = number
        old = self.vn.get(id(inst))
        self.vn[id(inst)] = number
        return number


def _clobbered_in_range(
    insts: List[Instruction], pointer: Value
) -> bool:
    for inst in insts:
        if isinstance(inst, Store) and may_alias(inst.pointer, pointer):
            return True
        if isinstance(inst, Call) and inst.may_write_memory:
            base = underlying_object(pointer)
            if isinstance(base, Alloca) and not pointer_escapes(base):
                continue
            return True
    return False


def _find_available_load_value(load: Load) -> Optional[Value]:
    """Walk backwards from ``load`` looking for the value in memory."""
    pointer = load.pointer
    block = load.parent
    assert block is not None
    index = block.instructions.index(load)
    scanned: List[Instruction] = []
    current = block
    position = index
    for _ in range(LOAD_WALK_LIMIT):
        insts = current.instructions[:position]
        for inst in reversed(insts):
            if isinstance(inst, Store):
                if must_alias(inst.pointer, pointer):
                    if inst.value.type == load.type:
                        return inst.value
                    return None
                if may_alias(inst.pointer, pointer):
                    return None
            elif isinstance(inst, Load):
                if must_alias(inst.pointer, pointer) and inst.type == load.type:
                    return inst
            elif isinstance(inst, Call) and inst.may_write_memory:
                base = underlying_object(pointer)
                if not (isinstance(base, Alloca) and not pointer_escapes(base)):
                    return None
        pred = current.single_predecessor
        if pred is None or pred is current:
            return None
        current = pred
        position = len(current.instructions)
    return None


@register_pass
class GVN(FunctionPass):
    """Global value numbering with load elimination."""

    name = "gvn"

    def run_on_function(self, fn: Function) -> bool:
        changed = False

        # --- load elimination first (exposes more congruences) -----------
        for block in fn.blocks:
            for inst in list(block.instructions):
                if isinstance(inst, Load) and inst.parent is not None:
                    available = _find_available_load_value(inst)
                    if available is not None and available is not inst:
                        replace_and_erase(inst, available)
                        changed = True

        # --- value numbering to fixpoint ----------------------------------
        order = reverse_postorder(fn)
        numbering = _ValueNumbering()
        for _ in range(4):
            stable = True
            snapshot = dict(numbering.vn)
            numbering.expr = {
                k: v for k, v in numbering.expr.items() if k[0] in ("cint", "cfloat", "const", "leader")
            }
            for block in order:
                for inst in block.instructions:
                    numbering.number(inst)
            if numbering.vn == snapshot:
                break

        # --- replace dominated congruent instructions ---------------------
        dom = DominatorTree(fn)
        leaders: Dict[int, Instruction] = {}
        for block in order:
            for inst in list(block.instructions):
                if inst.parent is None or inst.type.is_void:
                    continue
                if inst.has_side_effects or isinstance(inst, (Load, Call, Alloca)):
                    continue
                number = numbering.vn.get(id(inst))
                if number is None:
                    continue
                leader = leaders.get(number)
                if leader is None or leader.parent is None:
                    leaders[number] = inst
                    continue
                if leader.type != inst.type:
                    continue
                if leader.parent is inst.parent:
                    insts = leader.parent.instructions
                    if insts.index(leader) < insts.index(inst):
                        replace_and_erase(inst, leader)
                        changed = True
                elif dom.dominates_block(leader.parent, inst.parent):
                    replace_and_erase(inst, leader)
                    changed = True
        changed |= erase_trivially_dead(fn)
        return changed
