"""-sroa: scalar replacement of aggregates.

Aggregate allocas whose every access goes through constant-index GEPs are
split into one scalar alloca per element; the resulting scalars (plus any
directly-promotable scalars) are immediately promoted to SSA with the
mem2reg machinery — matching LLVM's SROA, which subsumes mem2reg.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...ir.instructions import Alloca, GetElementPtr, Instruction, Load, Store
from ...ir.module import Function
from ...ir.types import ArrayType, StructType, Type
from ...ir.values import ConstantInt
from ..base import FunctionPass, register_pass
from .mem2reg import is_promotable, promote_allocas


def _element_slot(alloca: Alloca, gep: GetElementPtr) -> Optional[Tuple[int, Type]]:
    """Map a GEP off an aggregate alloca to a flat element index."""
    if gep.pointer is not alloca or not gep.has_all_constant_indices:
        return None
    indices = [i.value for i in gep.indices]  # type: ignore[union-attr]
    if not indices or indices[0] != 0:
        return None
    ty: Type = alloca.allocated_type
    flat = 0
    for idx in indices[1:]:
        if isinstance(ty, ArrayType):
            if not (0 <= idx < ty.count):
                return None
            stride = _flat_count(ty.element)
            flat += idx * stride
            ty = ty.element
        elif isinstance(ty, StructType):
            if not (0 <= idx < len(ty.fields)):
                return None
            flat += sum(_flat_count(f) for f in ty.fields[:idx])
            ty = ty.fields[idx]
        else:
            return None
    if ty.is_aggregate:
        return None  # partial indexing; not scalar
    return (flat, ty)


def _flat_count(ty: Type) -> int:
    if isinstance(ty, ArrayType):
        return ty.count * _flat_count(ty.element)
    if isinstance(ty, StructType):
        return sum(_flat_count(f) for f in ty.fields)
    return 1


def _splittable(alloca: Alloca) -> Optional[Dict[int, Tuple[List[GetElementPtr], Type]]]:
    """All uses must be constant GEPs whose uses are scalar loads/stores."""
    slots: Dict[int, Tuple[List[GetElementPtr], Type]] = {}
    for use in alloca.uses:
        user = use.user
        if not isinstance(user, GetElementPtr):
            return None
        slot = _element_slot(alloca, user)
        if slot is None:
            return None
        index, ty = slot
        for gep_use in user.uses:
            gep_user = gep_use.user
            if isinstance(gep_user, Load):
                continue
            if isinstance(gep_user, Store) and gep_user.pointer is user:
                continue
            return None
        existing = slots.get(index)
        if existing is None:
            slots[index] = ([user], ty)
        else:
            if existing[1] != ty:
                return None
            existing[0].append(user)
    return slots


@register_pass
class SROA(FunctionPass):
    """Split aggregate allocas and promote the scalars to SSA."""

    name = "sroa"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        to_promote: List[Alloca] = []

        for inst in list(fn.instructions()):
            if not isinstance(inst, Alloca) or inst.parent is None:
                continue
            if inst.allocated_type.is_aggregate:
                slots = _splittable(inst)
                if slots is None:
                    continue
                entry = fn.entry
                for index, (geps, ty) in sorted(slots.items()):
                    scalar = Alloca(ty, fn.next_name(f"{inst.name or 'agg'}.{index}"))
                    entry.insert(0, scalar)
                    for gep in geps:
                        gep.replace_all_uses_with(scalar)
                        gep.erase_from_parent()
                    if is_promotable(scalar):
                        to_promote.append(scalar)
                inst.erase_from_parent()
                changed = True
            elif is_promotable(inst):
                to_promote.append(inst)

        if to_promote:
            changed |= promote_allocas(fn, to_promote)
        return changed
