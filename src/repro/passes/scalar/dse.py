"""-dse: dead store elimination.

Two forms:
* overwritten stores — a store followed (in the same block) by another
  store to the same location with no intervening may-read of it;
* dead-object stores — stores to a non-escaping alloca that is never
  loaded at all.
"""

from __future__ import annotations

from typing import List

from ...analysis.memdep import may_alias, must_alias, pointer_escapes, underlying_object
from ...ir.instructions import Alloca, Call, Instruction, Load, Store
from ...ir.module import BasicBlock, Function
from ..base import FunctionPass, register_pass


def _may_read(inst: Instruction, pointer) -> bool:
    if isinstance(inst, Load):
        return may_alias(inst.pointer, pointer)
    if isinstance(inst, Call) and inst.may_read_memory:
        base = underlying_object(pointer)
        if isinstance(base, Alloca) and not pointer_escapes(base):
            return False
        return True
    return False


def _eliminate_overwritten(block: BasicBlock) -> bool:
    changed = False
    stores: List[Store] = [
        i for i in block.instructions if isinstance(i, Store)
    ]
    for store in stores:
        if store.parent is None:
            continue
        insts = block.instructions
        start = insts.index(store) + 1
        for later in insts[start:]:
            if isinstance(later, Store) and must_alias(later.pointer, store.pointer):
                if later.value.type.size >= store.value.type.size:
                    store.erase_from_parent()
                    changed = True
                break
            if _may_read(later, store.pointer):
                break
            if isinstance(later, Store) and may_alias(later.pointer, store.pointer):
                break
    return changed


def _eliminate_dead_object_stores(fn: Function) -> bool:
    changed = False
    for inst in list(fn.instructions()):
        if not isinstance(inst, Alloca) or inst.parent is None:
            continue
        if pointer_escapes(inst):
            continue
        users = [use.user for use in inst.uses]
        # Chase derived pointers to find any load.
        worklist = list(inst.uses)
        has_load = False
        stores: List[Store] = []
        derived_ok = True
        while worklist:
            use = worklist.pop()
            user = use.user
            if isinstance(user, Load):
                has_load = True
                break
            if isinstance(user, Store):
                stores.append(user)
            elif isinstance(user, Instruction) and user.opcode in ("gep", "bitcast"):
                worklist.extend(user.uses)
            else:
                derived_ok = False
                break
        if derived_ok and not has_load and stores:
            for store in stores:
                if store.parent is not None:
                    store.erase_from_parent()
                    changed = True
    return changed


@register_pass
class DSE(FunctionPass):
    """Remove provably dead stores."""

    name = "dse"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        for block in fn.blocks:
            changed |= _eliminate_overwritten(block)
        changed |= _eliminate_dead_object_stores(fn)
        return changed
