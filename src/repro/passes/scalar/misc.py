"""Small Oz-pipeline passes: -div-rem-pairs, -lower-expect,
-lower-constant-intrinsics, -float2int, -alignment-from-assumptions,
-ee-instrument.
"""

from __future__ import annotations

from typing import List, Optional

from ...analysis.dominators import DominatorTree
from ...ir.instructions import (
    BinaryOp,
    Branch,
    Call,
    Cast,
    ICmp,
    Instruction,
    Load,
    Store,
)
from ...ir.module import Function, Module
from ...ir.types import FloatType, FunctionType, IntType, PointerType, VOID, F64
from ...ir.values import Argument, ConstantInt, GlobalVariable, Value
from ..base import FunctionPass, register_pass
from ..utils import erase_trivially_dead, replace_and_erase
from ...analysis.memdep import underlying_object


@register_pass
class DivRemPairs(FunctionPass):
    """Rewrite a remainder whose matching division is available as
    ``a - (a / b) * b`` (profitable on targets without a fused div+rem)."""

    name = "div-rem-pairs"

    _PAIRS = {"srem": "sdiv", "urem": "udiv"}

    @staticmethod
    def _same_operand(a, b) -> bool:
        if a is b:
            return True
        return (
            isinstance(a, ConstantInt)
            and isinstance(b, ConstantInt)
            and a.type == b.type
            and a.value == b.value
        )

    def run_on_function(self, fn: Function) -> bool:
        dom = DominatorTree(fn)
        divs: List[BinaryOp] = [
            i
            for i in fn.instructions()
            if isinstance(i, BinaryOp) and i.opcode in ("sdiv", "udiv")
        ]
        changed = False
        for block in fn.blocks:
            for inst in list(block.instructions):
                if not isinstance(inst, BinaryOp) or inst.opcode not in self._PAIRS:
                    continue
                want = self._PAIRS[inst.opcode]
                match = None
                for div in divs:
                    if (
                        div.parent is not None
                        and div.opcode == want
                        and self._same_operand(div.lhs, inst.lhs)
                        and self._same_operand(div.rhs, inst.rhs)
                        and dom.dominates(div, inst)
                    ):
                        match = div
                        break
                if match is None:
                    continue
                mul = BinaryOp("mul", match, inst.rhs)
                mul.name = fn.next_name("drp")
                mul.insert_before(inst)
                sub = BinaryOp("sub", inst.lhs, mul)
                sub.name = fn.next_name("drp")
                sub.insert_before(inst)
                replace_and_erase(inst, sub)
                changed = True
        return changed


@register_pass
class LowerExpect(FunctionPass):
    """Strip ``llvm.expect`` calls, recording branch-weight metadata on the
    branches their results steer."""

    name = "lower-expect"

    LIKELY = (2000, 1)

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        for block in fn.blocks:
            for inst in list(block.instructions):
                if not isinstance(inst, Call):
                    continue
                name = inst.intrinsic_name
                if name is None or not name.startswith("llvm.expect"):
                    continue
                value, expected = inst.arg(0), inst.arg(1)
                # Annotate conditional branches fed (possibly via an icmp)
                # by this expect.
                for use in list(inst.uses):
                    user = use.user
                    targets: List[Instruction] = []
                    if isinstance(user, Branch):
                        targets.append(user)
                    elif isinstance(user, ICmp):
                        targets.extend(
                            u for u in user.users() if isinstance(u, Branch)
                        )
                    for br in targets:
                        if isinstance(expected, ConstantInt) and expected.value:
                            br.meta["branch_weights"] = list(self.LIKELY)
                        else:
                            br.meta["branch_weights"] = list(reversed(self.LIKELY))
                replace_and_erase(inst, value)
                changed = True
        return changed


@register_pass
class LowerConstantIntrinsics(FunctionPass):
    """Fold ``llvm.is.constant`` / ``llvm.objectsize`` to constants."""

    name = "lower-constant-intrinsics"

    def run_on_function(self, fn: Function) -> bool:
        from ...ir.values import Constant

        changed = False
        for block in fn.blocks:
            for inst in list(block.instructions):
                if not isinstance(inst, Call):
                    continue
                name = inst.intrinsic_name
                if name is None:
                    continue
                if name.startswith("llvm.is.constant"):
                    known = isinstance(inst.arg(0), Constant)
                    replace_and_erase(
                        inst, ConstantInt(inst.type, 1 if known else 0)  # type: ignore[arg-type]
                    )
                    changed = True
                elif name.startswith("llvm.objectsize"):
                    base = underlying_object(inst.arg(0))
                    size = -1
                    from ...ir.instructions import Alloca

                    if isinstance(base, Alloca):
                        size = base.allocated_type.size
                    elif isinstance(base, GlobalVariable):
                        size = base.value_type.size
                    replace_and_erase(inst, ConstantInt(inst.type, size))  # type: ignore[arg-type]
                    changed = True
        changed |= erase_trivially_dead(fn)
        return changed


@register_pass
class Float2Int(FunctionPass):
    """Demote float add/sub chains whose leaves are ``sitofp`` of integers
    and whose only consumers are ``fptosi`` back to integer arithmetic.

    Restricted to f64 with i32/i64 sources, where the float computation is
    exact and the round-trip matches wrapping integer arithmetic.
    """

    name = "float2int"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        for block in fn.blocks:
            for inst in list(block.instructions):
                if inst.parent is None or not isinstance(inst, Cast):
                    continue
                if inst.opcode != "fptosi" or not isinstance(inst.type, IntType):
                    continue
                replacement = self._demote(fn, inst.value, inst.type, depth=0)
                if replacement is not None:
                    new = replacement
                    if new.type != inst.type:
                        cast = Cast(
                            "trunc"
                            if new.type.size > inst.type.size
                            else "sext",
                            new,
                            inst.type,
                        )
                        cast.name = fn.next_name("f2i")
                        cast.insert_before(inst)
                        new = cast
                    replace_and_erase(inst, new)
                    changed = True
        if changed:
            erase_trivially_dead(fn)
        return changed

    def _demote(
        self, fn: Function, value: Value, int_ty: IntType, depth: int
    ) -> Optional[Value]:
        """Return an integer equivalent of the f64 ``value``, or None."""
        if depth > 4:
            return None
        if isinstance(value, Cast) and value.opcode == "sitofp":
            src = value.value
            if isinstance(src.type, IntType) and src.type.bits <= int_ty.bits:
                if src.type == int_ty:
                    return src
                cast = Cast("sext", src, int_ty)
                cast.name = fn.next_name("f2i")
                cast.insert_before(value)
                return cast
            return None
        if (
            isinstance(value, BinaryOp)
            and value.opcode in ("fadd", "fsub")
            and value.type == F64
            and value.num_uses == 1
        ):
            lhs = self._demote(fn, value.lhs, int_ty, depth + 1)
            if lhs is None:
                return None
            rhs = self._demote(fn, value.rhs, int_ty, depth + 1)
            if rhs is None:
                return None
            op = "add" if value.opcode == "fadd" else "sub"
            out = BinaryOp(op, lhs, rhs)
            out.name = fn.next_name("f2i")
            out.insert_before(value)
            return out
        return None


@register_pass
class AlignmentFromAssumptions(FunctionPass):
    """Raise recorded load/store alignments to the alignment of the
    underlying object when it is statically known (allocas and globals)."""

    name = "alignment-from-assumptions"

    def run_on_function(self, fn: Function) -> bool:
        from ...ir.instructions import Alloca

        changed = False
        for inst in fn.instructions():
            pointer = None
            if isinstance(inst, Load):
                pointer = inst.pointer
            elif isinstance(inst, Store):
                pointer = inst.pointer
            if pointer is None or not (pointer is underlying_object(pointer)):
                continue
            base = pointer
            base_align = 0
            if isinstance(base, Alloca):
                base_align = base.alignment
            elif isinstance(base, GlobalVariable):
                base_align = base.alignment
            if base_align > inst.alignment:  # type: ignore[union-attr]
                inst.alignment = base_align  # type: ignore[union-attr]
                changed = True
        return changed


@register_pass
class EntryExitInstrument(FunctionPass):
    """-ee-instrument: insert ``mcount``-style entry instrumentation for
    functions that request it; a no-op otherwise (as in ``-Oz``)."""

    name = "ee-instrument"

    ATTRIBUTE = "instrument-function-entry-inlined"

    def run_on_function(self, fn: Function) -> bool:
        if self.ATTRIBUTE not in fn.attributes:
            return False
        module = fn.module
        assert module is not None
        hook = module.get_or_insert_function(
            "__cyg_profile_func_enter", FunctionType(VOID, [])
        )
        call = Call(hook, [])
        fn.entry.insert(0, call)
        fn.attributes.discard(self.ATTRIBUTE)
        return True
