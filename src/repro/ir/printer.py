"""Textual form of the IR (LLVM-flavoured).

:func:`print_module` renders a module to text; :mod:`repro.ir.parser` reads
the same format back. The round-trip is exercised heavily in tests and used
by the RL environment for debugging dumps.
"""

from __future__ import annotations

from typing import Dict, List

from .instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    ExtractElement,
    FCmp,
    GetElementPtr,
    ICmp,
    InsertElement,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Switch,
    Unreachable,
)
from .module import BasicBlock, Function, Module
from .values import (
    Argument,
    Constant,
    GlobalValue,
    GlobalVariable,
    Value,
)


class _Namer:
    """Assigns unique printed names to local values within a function."""

    def __init__(self) -> None:
        self.names: Dict[int, str] = {}
        self.used: set = set()

    def name_of(self, value: Value) -> str:
        existing = self.names.get(id(value))
        if existing is not None:
            return existing
        base = value.name or "v"
        candidate = base
        i = 0
        while candidate in self.used:
            i += 1
            candidate = f"{base}.{i}"
        self.used.add(candidate)
        self.names[id(value)] = candidate
        return candidate


def _ref(value: Value, namer: _Namer) -> str:
    if isinstance(value, GlobalValue):
        return f"@{value.name}"
    if isinstance(value, Constant):
        return value.ref()
    if isinstance(value, (BasicBlock, Argument, Instruction)):
        return f"%{namer.name_of(value)}"
    return value.ref()


def _typed(value: Value, namer: _Namer) -> str:
    return f"{value.type} {_ref(value, namer)}"


def format_instruction(inst: Instruction, namer: _Namer) -> str:
    """Render one instruction (without indentation)."""
    r = lambda v: _ref(v, namer)
    tr = lambda v: _typed(v, namer)

    if isinstance(inst, BinaryOp):
        body = f"{inst.opcode} {inst.type} {r(inst.lhs)}, {r(inst.rhs)}"
    elif isinstance(inst, ICmp):
        body = f"icmp {inst.predicate} {inst.lhs.type} {r(inst.lhs)}, {r(inst.rhs)}"
    elif isinstance(inst, FCmp):
        body = f"fcmp {inst.predicate} {inst.lhs.type} {r(inst.lhs)}, {r(inst.rhs)}"
    elif isinstance(inst, Alloca):
        body = f"alloca {inst.allocated_type}, align {inst.alignment}"
    elif isinstance(inst, Load):
        body = (
            f"load {inst.type}, {inst.pointer.type} {r(inst.pointer)}, "
            f"align {inst.alignment}"
        )
    elif isinstance(inst, Store):
        body = (
            f"store {tr(inst.value)}, {inst.pointer.type} {r(inst.pointer)}, "
            f"align {inst.alignment}"
        )
    elif isinstance(inst, GetElementPtr):
        idx = ", ".join(tr(i) for i in inst.indices)
        body = f"gep {inst.pointer.type} {r(inst.pointer)}, {idx}"
    elif isinstance(inst, Phi):
        arms = ", ".join(
            f"[ {r(v)}, %{namer.name_of(b)} ]" for v, b in inst.incoming()
        )
        body = f"phi {inst.type} {arms}"
    elif isinstance(inst, Select):
        body = (
            f"select {tr(inst.condition)}, {tr(inst.true_value)}, "
            f"{tr(inst.false_value)}"
        )
    elif isinstance(inst, Cast):
        body = f"{inst.opcode} {tr(inst.value)} to {inst.type}"
    elif isinstance(inst, ExtractElement):
        body = f"extractelement {tr(inst.vector)}, {tr(inst.index)}"
    elif isinstance(inst, InsertElement):
        body = (
            f"insertelement {tr(inst.vector)}, {tr(inst.operand(1))}, "
            f"{tr(inst.operand(2))}"
        )
    elif isinstance(inst, Call):
        args = ", ".join(tr(a) for a in inst.args)
        tail = "tail " if inst.tail else ""
        body = f"{tail}call {inst.type} {r(inst.callee)}({args})"
    elif isinstance(inst, Branch):
        if inst.is_conditional:
            body = (
                f"br i1 {r(inst.condition)}, label %{namer.name_of(inst.true_target)}, "
                f"label %{namer.name_of(inst.false_target)}"
            )
        else:
            body = f"br label %{namer.name_of(inst.targets[0])}"
    elif isinstance(inst, Switch):
        cases = "  ".join(
            f"{cv.type} {cv.ref()}, label %{namer.name_of(b)}"
            for cv, b in inst.cases()
        )
        body = (
            f"switch {tr(inst.value)}, label %{namer.name_of(inst.default)} "
            f"[ {cases} ]"
        )
    elif isinstance(inst, Ret):
        body = f"ret {tr(inst.value)}" if inst.value is not None else "ret void"
    elif isinstance(inst, Unreachable):
        body = "unreachable"
    else:  # pragma: no cover - all instructions covered above
        raise TypeError(f"unknown instruction {inst!r}")

    if not inst.type.is_void:
        return f"%{namer.name_of(inst)} = {body}"
    return body


def print_function(fn: Function) -> str:
    namer = _Namer()
    sig_args = ", ".join(f"{a.type} %{namer.name_of(a)}" for a in fn.args)
    if fn.ftype.vararg:
        sig_args = f"{sig_args}, ..." if sig_args else "..."
    attrs = (" " + " ".join(sorted(fn.attributes))) if fn.attributes else ""
    linkage = " internal" if fn.is_internal else ""
    if fn.is_declaration:
        return f"declare{linkage} {fn.return_type} @{fn.name}({sig_args}){attrs}"
    lines = [f"define{linkage} {fn.return_type} @{fn.name}({sig_args}){attrs} {{"]
    for block in fn.blocks:
        lines.append(f"{namer.name_of(block)}:")
        for inst in block.instructions:
            lines.append(f"  {format_instruction(inst, namer)}")
    lines.append("}")
    return "\n".join(lines)


def print_global(gv: GlobalVariable) -> str:
    kind = "constant" if gv.is_constant else "global"
    linkage = "internal " if gv.is_internal else ""
    if gv.initializer is None:
        init = "zeroinitializer"
    elif gv.initializer.is_zero():
        init = "zeroinitializer"
    else:
        init = gv.initializer.ref()
    return f"@{gv.name} = {linkage}{kind} {gv.value_type} {init}, align {gv.alignment}"


def print_module(module: Module) -> str:
    parts: List[str] = [f"; module {module.name}"]
    for gv in module.globals:
        parts.append(print_global(gv))
    for fn in module.functions:
        parts.append("")
        parts.append(print_function(fn))
    return "\n".join(parts) + "\n"
