"""Stable structural fingerprints for functions and modules.

A fingerprint is a content hash over everything the metrics pipeline can
observe — opcodes, types, operand structure, predicates, alignments,
instruction metadata, callee identity and attributes, linkage — while
ignoring everything it cannot: local value names and block names (cloning
renames locals, and a clone must fingerprint identically to its source).

Properties relied on by the caches in :mod:`repro.core.metrics`:

* ``module.clone()`` ⇒ equal fingerprint;
* any structural mutation (instruction added/removed/reordered, operand
  rewired, type changed, attribute toggled) ⇒ different fingerprint;
* the module fingerprint is insensitive to the *order* of functions and
  globals, so symbol-table shuffles do not invalidate transition caches.

Equal fingerprints are used as cache keys for per-function codegen size,
MCA scheduling reports and IR2Vec embeddings: everything those computations
read is folded into the hash, so a hit is exact (modulo hash collision of
a 128-bit blake2b, which we accept).

Fingerprints are the hottest walk in the system (every env step hashes
every function at least once), so the hash input is assembled as *packed
row bytes*: one ``bytes`` object per function, built from interned token
fragments, fed to ``blake2b`` in a single update. The byte stream is
identical to what the historical token-join implementation streamed, and
:func:`_streaming_function_fingerprint` keeps that implementation around
as the reference the equivalence tests compare against.
"""

from __future__ import annotations

import hashlib
import weakref
from typing import Dict, List, Mapping, Optional, Tuple

from .instructions import (
    Alloca,
    Call,
    FCmp,
    ICmp,
    Instruction,
    Load,
    Store,
)
from .module import BasicBlock, Function, Module
from .types import Type
from .values import Argument, Constant, GlobalValue, Value

_DIGEST_BYTES = 16


def _hasher() -> "hashlib._Hash":
    return hashlib.blake2b(digest_size=_DIGEST_BYTES)


# -- interned token fragments -------------------------------------------------
# Position-based local ids (a0/b0/i0...) recur in every function; pre-encoded
# lists are grown on demand and shared across all walks.

_A_TOKENS: List[bytes] = []
_B_TOKENS: List[bytes] = []
_I_TOKENS: List[bytes] = []
_IID_TOKENS: List[bytes] = []  # b"i{n}=" row heads

#: ``str(type)`` is invariant for a type object; cache the encoded form
#: keyed by identity (the type object is retained so the id cannot be
#: recycled while the entry lives).
_TYPE_TOKENS: Dict[int, Tuple[Type, bytes]] = {}
_TYPE_TOKEN_CAP = 8192

_OPCODE_TOKENS: Dict[str, bytes] = {}
_PRED_TOKENS: Dict[str, bytes] = {}
_ALIGN_TOKENS: Dict[int, bytes] = {}

#: Constants are immutable (type, value and ``ref()`` are fixed at
#: construction), so their tokens are cached process-wide. Functions and
#: globals are *not*: attribute toggles and symbol renames must show up
#: in the next walk, so their tokens stay per-walk. Entries hold the
#: constant only weakly — a constant's use-list chains back to its users'
#: blocks and functions, so a strong reference here would pin every
#: (cloned) module that ever touched the cache. The death callback purges
#: the entry, so a live entry's id cannot have been recycled.
_CONST_TOKENS: Dict[int, Tuple["weakref.ref", bytes]] = {}
_CONST_TOKEN_CAP = 8192


def _cache_const_token(op: Value, token: bytes) -> None:
    key = id(op)
    if len(_CONST_TOKENS) >= _CONST_TOKEN_CAP:
        _CONST_TOKENS.clear()
    try:
        ref = weakref.ref(
            op, lambda _r, _key=key: _CONST_TOKENS.pop(_key, None)
        )
    except TypeError:  # pragma: no cover - weakref-less Value subclass
        return
    _CONST_TOKENS[key] = (ref, token)


def _grow_tokens(tokens: List[bytes], prefix: str, needed: int) -> None:
    for n in range(len(tokens), needed):
        tokens.append(f"{prefix}{n}".encode())


def _type_token(ty: Type) -> bytes:
    entry = _TYPE_TOKENS.get(id(ty))
    if entry is None:
        if len(_TYPE_TOKENS) >= _TYPE_TOKEN_CAP:
            _TYPE_TOKENS.clear()
        token = str(ty).encode()
        _TYPE_TOKENS[id(ty)] = (ty, token)
        return token
    return entry[1]


def _opcode_token(opcode: str) -> bytes:
    token = _OPCODE_TOKENS.get(opcode)
    if token is None:
        token = opcode.encode()
        _OPCODE_TOKENS[opcode] = token
    return token


def _operand_token(
    op: Value, local_ids: Dict[int, str]
) -> str:
    """A stable token for one operand (reference implementation).

    Local values (arguments, instructions, blocks) are referenced by their
    structural position, never by name. Globals are referenced by symbol
    name; called functions additionally contribute their attribute set,
    because callee attributes change the caller's effect analysis
    (``readnone``/``readonly`` gate reaching-store kills and DCE of calls).
    """
    token = local_ids.get(id(op))
    if token is not None:
        return token
    if isinstance(op, Function):
        attrs = ",".join(sorted(op.attributes))
        decl = "d" if op.is_declaration else ""
        return f"@{op.name}|{attrs}|{decl}"
    if isinstance(op, GlobalValue):
        return f"@{op.name}"
    if isinstance(op, Constant):
        return f"k:{op.type}:{op.ref()}"
    return f"?:{op.type}:{op.ref()}"  # pragma: no cover - exotic operand


def _operand_token_bytes(op: Value, tokens: Dict[int, bytes]) -> bytes:
    token = tokens.get(id(op))
    if token is not None:
        return token
    if isinstance(op, Function):
        attrs = ",".join(sorted(op.attributes))
        decl = "d" if op.is_declaration else ""
        token = f"@{op.name}|{attrs}|{decl}".encode()
    elif isinstance(op, GlobalValue):
        token = f"@{op.name}".encode()
    elif isinstance(op, Constant):
        entry = _CONST_TOKENS.get(id(op))
        if entry is None:
            token = f"k:{op.type}:{op.ref()}".encode()
            _cache_const_token(op, token)
        else:
            token = entry[1]
    else:  # pragma: no cover - exotic operand
        token = f"?:{op.type}:{op.ref()}".encode()
    tokens[id(op)] = token
    return token


def _instruction_tokens(
    inst: Instruction, local_ids: Dict[int, str]
) -> List[str]:
    """Reference token list for one instruction (string form)."""
    tokens = [inst.opcode, str(inst.type)]
    if isinstance(inst, (ICmp, FCmp)):
        tokens.append(inst.predicate)
    if isinstance(inst, (Alloca, Load, Store)):
        tokens.append(f"align{inst.alignment}")
    if isinstance(inst, Alloca):
        tokens.append(str(inst.allocated_type))
    if isinstance(inst, Call) and inst.tail:
        tokens.append("tail")
    if inst.meta:
        for key in sorted(inst.meta):
            tokens.append(f"!{key}={inst.meta[key]!r}")
    for op in inst.operands:
        tokens.append(_operand_token(op, local_ids))
    return tokens


def _instruction_row(
    inst: Instruction, iid: bytes, tokens: Dict[int, bytes]
) -> bytes:
    """Packed row bytes for one instruction: ``i{n}=tok tok ...;``."""
    parts = [_opcode_token(inst.opcode), _type_token(inst.type)]
    if isinstance(inst, (ICmp, FCmp)):
        pred = inst.predicate
        ptok = _PRED_TOKENS.get(pred)
        if ptok is None:
            ptok = pred.encode()
            _PRED_TOKENS[pred] = ptok
        parts.append(ptok)
    if isinstance(inst, (Alloca, Load, Store)):
        align = inst.alignment
        atok = _ALIGN_TOKENS.get(align)
        if atok is None:
            atok = f"align{align}".encode()
            _ALIGN_TOKENS[align] = atok
        parts.append(atok)
    if isinstance(inst, Alloca):
        parts.append(_type_token(inst.allocated_type))
    if isinstance(inst, Call) and inst.tail:
        parts.append(b"tail")
    if inst.meta:
        for key in sorted(inst.meta):
            parts.append(f"!{key}={inst.meta[key]!r}".encode())
    for op in inst.operands:
        parts.append(_operand_token_bytes(op, tokens))
    return iid + b" ".join(parts) + b";"


def packed_function(fn: Function) -> bytes:
    """The canonical byte stream a function fingerprint hashes.

    Identical, byte for byte, to the concatenation the historical
    streaming implementation fed through ``h.update`` — so digests are
    stable across the representation change.
    """
    linkage = "internal" if fn.is_internal else "external"
    head = (
        f"fn|{fn.name}|{fn.ftype}|{linkage}|{','.join(sorted(fn.attributes))}"
    ).encode()
    if fn.is_declaration:
        return head + b"|declaration"

    blocks = fn.blocks
    n_args = len(fn.args)
    _grow_tokens(_A_TOKENS, "a", n_args)
    _grow_tokens(_B_TOKENS, "b", len(blocks))

    # Structural identities: position-based, assigned up front so forward
    # references (phis over back edges) resolve deterministically.
    tokens: Dict[int, bytes] = {}
    for i, arg in enumerate(fn.args):
        tokens[id(arg)] = _A_TOKENS[i]
    counter = 0
    for bi, block in enumerate(blocks):
        tokens[id(block)] = _B_TOKENS[bi]
        for inst in block.instructions:
            if counter >= len(_I_TOKENS):
                _I_TOKENS.append(f"i{counter}".encode())
                _IID_TOKENS.append(_I_TOKENS[counter] + b"=")
            tokens[id(inst)] = _I_TOKENS[counter]
            counter += 1

    chunks: List[bytes] = [head]
    counter = 0
    for bi, block in enumerate(blocks):
        chunks.append(b"|" + _B_TOKENS[bi] + b":")
        for inst in block.instructions:
            chunks.append(
                _instruction_row(inst, _IID_TOKENS[counter], tokens)
            )
            counter += 1
    return b"".join(chunks)


def function_fingerprint(fn: Function) -> str:
    """Content hash of one function (hex digest).

    Covers the signature, linkage, attributes and — for definitions — the
    full body: block structure, instruction stream, operand graph and any
    metadata. Local names are ignored, so clones hash identically.
    """
    h = _hasher()
    h.update(packed_function(fn))
    return h.hexdigest()


def _streaming_function_fingerprint(fn: Function) -> str:
    """Reference implementation: per-token string joins + incremental
    ``h.update``. Kept for the packed/streaming equivalence tests."""
    h = _hasher()
    linkage = "internal" if fn.is_internal else "external"
    head = f"fn|{fn.name}|{fn.ftype}|{linkage}|{','.join(sorted(fn.attributes))}"
    h.update(head.encode())

    if fn.is_declaration:
        h.update(b"|declaration")
        return h.hexdigest()

    local_ids: Dict[int, str] = {}
    for i, arg in enumerate(fn.args):
        local_ids[id(arg)] = f"a{i}"
    counter = 0
    for bi, block in enumerate(fn.blocks):
        local_ids[id(block)] = f"b{bi}"
        for inst in block.instructions:
            local_ids[id(inst)] = f"i{counter}"
            counter += 1

    for block in fn.blocks:
        h.update(f"|{local_ids[id(block)]}:".encode())
        for inst in block.instructions:
            line = " ".join(_instruction_tokens(inst, local_ids))
            h.update(f"{local_ids[id(inst)]}={line};".encode())
    return h.hexdigest()


def _global_fingerprint(gv) -> str:
    init = gv.initializer
    if init is None or init.is_zero():
        init_token = "zero"
    else:
        init_token = init.ref()
    linkage = "internal" if gv.is_internal else "external"
    kind = "const" if gv.is_constant else "var"
    h = _hasher()
    h.update(
        f"gv|{gv.name}|{gv.value_type}|{linkage}|{kind}"
        f"|align{gv.alignment}|{init_token}".encode()
    )
    return h.hexdigest()


def module_fingerprint(
    module: Module,
    function_fingerprints: Optional[Mapping[str, str]] = None,
) -> str:
    """Content hash of a whole module (hex digest).

    Combines the sorted per-symbol fingerprints so the result is
    insensitive to declaration order, then all the structural properties
    of each symbol through its own fingerprint. ``function_fingerprints``
    (symbol name → digest) reuses hashes the caller already computed —
    the metrics engine hashes each function exactly once per step and
    threads the digests through every consumer.
    """
    if function_fingerprints is None:
        parts = [function_fingerprint(fn) for fn in module.functions]
    else:
        parts = [
            function_fingerprints.get(fn.name) or function_fingerprint(fn)
            for fn in module.functions
        ]
    parts.extend(_global_fingerprint(gv) for gv in module.globals)
    parts.sort()
    h = _hasher()
    h.update(b"module")
    for part in parts:
        h.update(part.encode())
    return h.hexdigest()
