"""Stable structural fingerprints for functions and modules.

A fingerprint is a content hash over everything the metrics pipeline can
observe — opcodes, types, operand structure, predicates, alignments,
instruction metadata, callee identity and attributes, linkage — while
ignoring everything it cannot: local value names and block names (cloning
renames locals, and a clone must fingerprint identically to its source).

Properties relied on by the caches in :mod:`repro.core.metrics`:

* ``module.clone()`` ⇒ equal fingerprint;
* any structural mutation (instruction added/removed/reordered, operand
  rewired, type changed, attribute toggled) ⇒ different fingerprint;
* the module fingerprint is insensitive to the *order* of functions and
  globals, so symbol-table shuffles do not invalidate transition caches.

Equal fingerprints are used as cache keys for per-function codegen size,
MCA scheduling reports and IR2Vec embeddings: everything those computations
read is folded into the hash, so a hit is exact (modulo hash collision of
a 128-bit blake2b, which we accept).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

from .instructions import (
    Alloca,
    Call,
    FCmp,
    ICmp,
    Instruction,
    Load,
    Store,
)
from .module import BasicBlock, Function, Module
from .values import Argument, Constant, GlobalValue, Value

_DIGEST_BYTES = 16


def _hasher() -> "hashlib._Hash":
    return hashlib.blake2b(digest_size=_DIGEST_BYTES)


def _operand_token(
    op: Value, local_ids: Dict[int, str]
) -> str:
    """A stable token for one operand.

    Local values (arguments, instructions, blocks) are referenced by their
    structural position, never by name. Globals are referenced by symbol
    name; called functions additionally contribute their attribute set,
    because callee attributes change the caller's effect analysis
    (``readnone``/``readonly`` gate reaching-store kills and DCE of calls).
    """
    token = local_ids.get(id(op))
    if token is not None:
        return token
    if isinstance(op, Function):
        attrs = ",".join(sorted(op.attributes))
        decl = "d" if op.is_declaration else ""
        return f"@{op.name}|{attrs}|{decl}"
    if isinstance(op, GlobalValue):
        return f"@{op.name}"
    if isinstance(op, Constant):
        return f"k:{op.type}:{op.ref()}"
    return f"?:{op.type}:{op.ref()}"  # pragma: no cover - exotic operand


def _instruction_tokens(
    inst: Instruction, local_ids: Dict[int, str]
) -> List[str]:
    tokens = [inst.opcode, str(inst.type)]
    if isinstance(inst, (ICmp, FCmp)):
        tokens.append(inst.predicate)
    if isinstance(inst, (Alloca, Load, Store)):
        tokens.append(f"align{inst.alignment}")
    if isinstance(inst, Alloca):
        tokens.append(str(inst.allocated_type))
    if isinstance(inst, Call) and inst.tail:
        tokens.append("tail")
    if inst.meta:
        for key in sorted(inst.meta):
            tokens.append(f"!{key}={inst.meta[key]!r}")
    for op in inst.operands:
        tokens.append(_operand_token(op, local_ids))
    return tokens


def function_fingerprint(fn: Function) -> str:
    """Content hash of one function (hex digest).

    Covers the signature, linkage, attributes and — for definitions — the
    full body: block structure, instruction stream, operand graph and any
    metadata. Local names are ignored, so clones hash identically.
    """
    h = _hasher()
    linkage = "internal" if fn.is_internal else "external"
    head = f"fn|{fn.name}|{fn.ftype}|{linkage}|{','.join(sorted(fn.attributes))}"
    h.update(head.encode())

    if fn.is_declaration:
        h.update(b"|declaration")
        return h.hexdigest()

    # Structural identities: position-based, assigned up front so forward
    # references (phis over back edges) resolve deterministically.
    local_ids: Dict[int, str] = {}
    for i, arg in enumerate(fn.args):
        local_ids[id(arg)] = f"a{i}"
    counter = 0
    for bi, block in enumerate(fn.blocks):
        local_ids[id(block)] = f"b{bi}"
        for inst in block.instructions:
            local_ids[id(inst)] = f"i{counter}"
            counter += 1

    for block in fn.blocks:
        h.update(f"|{local_ids[id(block)]}:".encode())
        for inst in block.instructions:
            line = " ".join(_instruction_tokens(inst, local_ids))
            h.update(f"{local_ids[id(inst)]}={line};".encode())
    return h.hexdigest()


def _global_fingerprint(gv) -> str:
    init = gv.initializer
    if init is None or init.is_zero():
        init_token = "zero"
    else:
        init_token = init.ref()
    linkage = "internal" if gv.is_internal else "external"
    kind = "const" if gv.is_constant else "var"
    h = _hasher()
    h.update(
        f"gv|{gv.name}|{gv.value_type}|{linkage}|{kind}"
        f"|align{gv.alignment}|{init_token}".encode()
    )
    return h.hexdigest()


def module_fingerprint(module: Module) -> str:
    """Content hash of a whole module (hex digest).

    Combines the sorted per-symbol fingerprints so the result is
    insensitive to declaration order, then all the structural properties
    of each symbol through its own fingerprint.
    """
    parts = [function_fingerprint(fn) for fn in module.functions]
    parts.extend(_global_fingerprint(gv) for gv in module.globals)
    parts.sort()
    h = _hasher()
    h.update(b"module")
    for part in parts:
        h.update(part.encode())
    return h.hexdigest()
