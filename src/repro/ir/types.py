"""Type system for the miniature SSA IR.

Types are immutable and interned: constructing ``IntType(32)`` twice yields
the same object, so identity comparison (``is``) works everywhere. Structural
equality (``==``) is also defined for robustness.

The layout rules (sizes and alignments) are target-independent here and match
a typical LP64 data layout: ``i1``/``i8`` are one byte, ``ptr`` is eight
bytes, vectors are naturally aligned to their total size (capped at 16).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple


class Type:
    """Base class of all IR types."""

    #: Cache for interned types, keyed by a structural key.
    _interned: Dict[object, "Type"] = {}

    def __eq__(self, other: object) -> bool:
        return self is other or (
            isinstance(other, Type) and self._key() == other._key()
        )

    def __hash__(self) -> int:
        return hash(self._key())

    def _key(self) -> object:
        raise NotImplementedError

    # -- classification helpers ------------------------------------------
    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_int(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_bool(self) -> bool:
        return isinstance(self, IntType) and self.bits == 1

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    @property
    def is_struct(self) -> bool:
        return isinstance(self, StructType)

    @property
    def is_vector(self) -> bool:
        return isinstance(self, VectorType)

    @property
    def is_function(self) -> bool:
        return isinstance(self, FunctionType)

    @property
    def is_aggregate(self) -> bool:
        return self.is_array or self.is_struct

    @property
    def is_first_class(self) -> bool:
        """First-class types can be produced by instructions."""
        return not self.is_void and not self.is_function

    # -- layout -----------------------------------------------------------
    @property
    def size(self) -> int:
        """Size of the type in bytes (store size)."""
        raise NotImplementedError(f"no size for {self!r}")

    @property
    def alignment(self) -> int:
        """Natural alignment of the type in bytes."""
        return max(1, min(self.size, 16))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self}>"


def _intern(key: object, factory) -> Type:
    cached = Type._interned.get(key)
    if cached is None:
        cached = factory()
        Type._interned[key] = cached
    return cached


class VoidType(Type):
    """The type of instructions that produce no value."""

    def __new__(cls) -> "VoidType":
        return _intern("void", lambda: super(VoidType, cls).__new__(cls))  # type: ignore[return-value]

    def _key(self) -> object:
        return "void"

    @property
    def size(self) -> int:
        return 0

    def __str__(self) -> str:
        return "void"


class LabelType(Type):
    """The type of basic blocks."""

    def __new__(cls) -> "LabelType":
        return _intern("label", lambda: super(LabelType, cls).__new__(cls))  # type: ignore[return-value]

    def _key(self) -> object:
        return "label"

    @property
    def size(self) -> int:
        return 0

    def __str__(self) -> str:
        return "label"


class IntType(Type):
    """An integer type of a fixed bit width (i1, i8, i16, i32, i64)."""

    bits: int

    def __new__(cls, bits: int) -> "IntType":
        if bits not in (1, 8, 16, 32, 64):
            raise ValueError(f"unsupported integer width: {bits}")

        def factory() -> "IntType":
            obj = super(IntType, cls).__new__(cls)
            obj.bits = bits
            return obj

        return _intern(("int", bits), factory)  # type: ignore[return-value]

    def _key(self) -> object:
        return ("int", self.bits)

    @property
    def size(self) -> int:
        return max(1, self.bits // 8)

    @property
    def min_value(self) -> int:
        return -(1 << (self.bits - 1)) if self.bits > 1 else 0

    @property
    def max_signed(self) -> int:
        return (1 << (self.bits - 1)) - 1 if self.bits > 1 else 1

    @property
    def max_unsigned(self) -> int:
        return (1 << self.bits) - 1

    def wrap(self, value: int) -> int:
        """Wrap a Python int to this width, interpreting it as signed."""
        mask = (1 << self.bits) - 1
        value &= mask
        if self.bits > 1 and value > self.max_signed:
            value -= 1 << self.bits
        return value

    def wrap_unsigned(self, value: int) -> int:
        return value & ((1 << self.bits) - 1)

    def __str__(self) -> str:
        return f"i{self.bits}"


class FloatType(Type):
    """A floating point type (f32 or f64)."""

    bits: int

    def __new__(cls, bits: int) -> "FloatType":
        if bits not in (32, 64):
            raise ValueError(f"unsupported float width: {bits}")

        def factory() -> "FloatType":
            obj = super(FloatType, cls).__new__(cls)
            obj.bits = bits
            return obj

        return _intern(("float", bits), factory)  # type: ignore[return-value]

    def _key(self) -> object:
        return ("float", self.bits)

    @property
    def size(self) -> int:
        return self.bits // 8

    def __str__(self) -> str:
        return "float" if self.bits == 32 else "double"


class PointerType(Type):
    """A typed pointer. All pointers are 8 bytes."""

    pointee: Type

    def __new__(cls, pointee: Type) -> "PointerType":
        def factory() -> "PointerType":
            obj = super(PointerType, cls).__new__(cls)
            obj.pointee = pointee
            return obj

        return _intern(("ptr", pointee._key()), factory)  # type: ignore[return-value]

    def _key(self) -> object:
        return ("ptr", self.pointee._key())

    @property
    def size(self) -> int:
        return 8

    def __str__(self) -> str:
        return f"{self.pointee}*"


class ArrayType(Type):
    """A fixed-length homogeneous array."""

    element: Type
    count: int

    def __new__(cls, element: Type, count: int) -> "ArrayType":
        if count < 0:
            raise ValueError("array count must be non-negative")

        def factory() -> "ArrayType":
            obj = super(ArrayType, cls).__new__(cls)
            obj.element = element
            obj.count = count
            return obj

        return _intern(("array", element._key(), count), factory)  # type: ignore[return-value]

    def _key(self) -> object:
        return ("array", self.element._key(), self.count)

    @property
    def size(self) -> int:
        return self.element.size * self.count

    @property
    def alignment(self) -> int:
        return self.element.alignment

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"


class VectorType(Type):
    """A SIMD vector of a scalar element type."""

    element: Type
    count: int

    def __new__(cls, element: Type, count: int) -> "VectorType":
        if not (element.is_int or element.is_float):
            raise ValueError("vector elements must be scalar int/float")
        if count < 1:
            raise ValueError("vector count must be positive")

        def factory() -> "VectorType":
            obj = super(VectorType, cls).__new__(cls)
            obj.element = element
            obj.count = count
            return obj

        return _intern(("vector", element._key(), count), factory)  # type: ignore[return-value]

    def _key(self) -> object:
        return ("vector", self.element._key(), self.count)

    @property
    def size(self) -> int:
        return self.element.size * self.count

    def __str__(self) -> str:
        return f"<{self.count} x {self.element}>"


class StructType(Type):
    """A struct with named identity and ordered fields."""

    name: str
    fields: Tuple[Type, ...]

    def __new__(cls, name: str, fields: Sequence[Type]) -> "StructType":
        fields_t = tuple(fields)

        def factory() -> "StructType":
            obj = super(StructType, cls).__new__(cls)
            obj.name = name
            obj.fields = fields_t
            return obj

        return _intern(("struct", name, tuple(f._key() for f in fields_t)), factory)  # type: ignore[return-value]

    def _key(self) -> object:
        return ("struct", self.name, tuple(f._key() for f in self.fields))

    def field_offset(self, index: int) -> int:
        """Byte offset of field ``index``, respecting field alignment."""
        offset = 0
        for i, field in enumerate(self.fields):
            align = field.alignment
            offset = (offset + align - 1) // align * align
            if i == index:
                return offset
            offset += field.size
        raise IndexError(index)

    @property
    def size(self) -> int:
        if not self.fields:
            return 0
        last = len(self.fields) - 1
        raw = self.field_offset(last) + self.fields[last].size
        align = self.alignment
        return (raw + align - 1) // align * align

    @property
    def alignment(self) -> int:
        return max((f.alignment for f in self.fields), default=1)

    def __str__(self) -> str:
        return f"%{self.name}"


class FunctionType(Type):
    """A function signature."""

    ret: Type
    params: Tuple[Type, ...]
    vararg: bool

    def __new__(
        cls, ret: Type, params: Sequence[Type] = (), vararg: bool = False
    ) -> "FunctionType":
        params_t = tuple(params)

        def factory() -> "FunctionType":
            obj = super(FunctionType, cls).__new__(cls)
            obj.ret = ret
            obj.params = params_t
            obj.vararg = vararg
            return obj

        key = ("func", ret._key(), tuple(p._key() for p in params_t), vararg)
        return _intern(key, factory)  # type: ignore[return-value]

    def _key(self) -> object:
        return (
            "func",
            self.ret._key(),
            tuple(p._key() for p in self.params),
            self.vararg,
        )

    @property
    def size(self) -> int:
        raise TypeError("function types have no size")

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        if self.vararg:
            params = params + ", ..." if params else "..."
        return f"{self.ret} ({params})"


# Convenient singletons -----------------------------------------------------
VOID = VoidType()
LABEL = LabelType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
F32 = FloatType(32)
F64 = FloatType(64)


def ptr(pointee: Type) -> PointerType:
    """Shorthand for :class:`PointerType`."""
    return PointerType(pointee)


def element_type(ty: Type) -> Optional[Type]:
    """Element type of arrays and vectors, or ``None``."""
    if isinstance(ty, (ArrayType, VectorType)):
        return ty.element
    return None
