"""Value hierarchy: the SSA value graph.

Every node in the IR is a :class:`Value`. Values that consume other values
(instructions, global initializers are kept simple constants) register a
:class:`Use` on each operand, giving the full def-use chain that analyses and
transformations rely on (``replace_all_uses_with`` is the workhorse of nearly
every pass).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence

from .types import (
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    Type,
    VectorType,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .instructions import Instruction
    from .module import Function, Module


class Use:
    """A single (user, operand-index) edge in the value graph."""

    __slots__ = ("user", "index")

    def __init__(self, user: "User", index: int):
        self.user = user
        self.index = index

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Use({self.user!r}[{self.index}])"


class Value:
    """Base class for everything that can be an operand."""

    def __init__(self, ty: Type, name: str = ""):
        self.type = ty
        self.name = name
        self.uses: List[Use] = []

    # -- use bookkeeping --------------------------------------------------
    def add_use(self, use: Use) -> None:
        self.uses.append(use)

    def remove_use(self, use: Use) -> None:
        self.uses.remove(use)

    @property
    def num_uses(self) -> int:
        return len(self.uses)

    @property
    def has_uses(self) -> bool:
        return bool(self.uses)

    def users(self) -> Iterator["User"]:
        """Iterate over distinct users of this value."""
        seen = set()
        for use in list(self.uses):
            if id(use.user) not in seen:
                seen.add(id(use.user))
                yield use.user

    def replace_all_uses_with(self, other: "Value") -> None:
        """Rewrite every use of ``self`` to use ``other`` instead."""
        if other is self:
            return
        for use in list(self.uses):
            use.user.set_operand(use.index, other)

    # -- display -----------------------------------------------------------
    def ref(self) -> str:
        """Short textual reference used inside instruction operands."""
        return f"%{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.ref()} : {self.type}>"


class User(Value):
    """A value that holds operands (instructions and constant expressions)."""

    def __init__(self, ty: Type, operands: Sequence[Value] = (), name: str = ""):
        super().__init__(ty, name)
        self._operands: List[Value] = []
        self._uses_on_operands: List[Use] = []
        for op in operands:
            self.append_operand(op)

    @property
    def operands(self) -> List[Value]:
        return list(self._operands)

    @property
    def num_operands(self) -> int:
        return len(self._operands)

    def operand(self, index: int) -> Value:
        return self._operands[index]

    def set_operand(self, index: int, value: Value) -> None:
        old = self._operands[index]
        if old is value:
            return
        old.remove_use(self._uses_on_operands[index])
        self._operands[index] = value
        value.add_use(self._uses_on_operands[index])

    def append_operand(self, value: Value) -> None:
        use = Use(self, len(self._operands))
        self._operands.append(value)
        self._uses_on_operands.append(use)
        value.add_use(use)

    def remove_operand(self, index: int) -> None:
        self._operands[index].remove_use(self._uses_on_operands[index])
        del self._operands[index]
        del self._uses_on_operands[index]
        for i in range(index, len(self._operands)):
            self._uses_on_operands[i].index = i

    def drop_all_operands(self) -> None:
        """Detach from all operands (used when erasing instructions)."""
        for op, use in zip(self._operands, self._uses_on_operands):
            op.remove_use(use)
        self._operands.clear()
        self._uses_on_operands.clear()


# ---------------------------------------------------------------------------
# Constants
# ---------------------------------------------------------------------------


class Constant(Value):
    """Base class for compile-time constants."""

    def ref(self) -> str:
        raise NotImplementedError

    def is_zero(self) -> bool:
        return False

    def is_one(self) -> bool:
        return False


class ConstantInt(Constant):
    """An integer constant, stored in signed canonical form."""

    def __init__(self, ty: IntType, value: int):
        super().__init__(ty)
        self.value = ty.wrap(int(value))

    @property
    def int_type(self) -> IntType:
        assert isinstance(self.type, IntType)
        return self.type

    @property
    def unsigned(self) -> int:
        return self.value & ((1 << self.int_type.bits) - 1)

    def is_zero(self) -> bool:
        return self.value == 0

    def is_one(self) -> bool:
        return self.value == 1

    def is_all_ones(self) -> bool:
        return self.unsigned == self.int_type.max_unsigned

    def is_power_of_two(self) -> bool:
        u = self.unsigned
        return u > 0 and (u & (u - 1)) == 0

    def log2(self) -> int:
        assert self.is_power_of_two()
        return self.unsigned.bit_length() - 1

    def ref(self) -> str:
        if self.int_type.bits == 1:
            return "true" if self.value else "false"
        return str(self.value)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ConstantInt {self.type} {self.value}>"


class ConstantFloat(Constant):
    """A floating point constant."""

    def __init__(self, ty: FloatType, value: float):
        super().__init__(ty)
        self.value = float(value)

    def is_zero(self) -> bool:
        return self.value == 0.0 and not math.copysign(1.0, self.value) < 0

    def is_one(self) -> bool:
        return self.value == 1.0

    def ref(self) -> str:
        return repr(self.value)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ConstantFloat {self.type} {self.value}>"


class ConstantNull(Constant):
    """The null pointer of some pointer type."""

    def __init__(self, ty: PointerType):
        super().__init__(ty)

    def is_zero(self) -> bool:
        return True

    def ref(self) -> str:
        return "null"


class UndefValue(Constant):
    """An unspecified value of any first-class type."""

    def __init__(self, ty: Type):
        super().__init__(ty)

    def ref(self) -> str:
        return "undef"


class ConstantArray(Constant):
    """A constant aggregate used mostly as a global initializer."""

    def __init__(self, ty: ArrayType, elements: Sequence[Constant]):
        if len(elements) != ty.count:
            raise ValueError("element count mismatch")
        super().__init__(ty)
        self.elements = list(elements)

    def is_zero(self) -> bool:
        return all(e.is_zero() for e in self.elements)

    def ref(self) -> str:
        inner = ", ".join(f"{e.type} {e.ref()}" for e in self.elements)
        return f"[{inner}]"


class ConstantVector(Constant):
    """A constant SIMD vector (including splats)."""

    def __init__(self, ty: VectorType, elements: Sequence[Constant]):
        if len(elements) != ty.count:
            raise ValueError("element count mismatch")
        super().__init__(ty)
        self.elements = list(elements)

    @classmethod
    def splat(cls, ty: VectorType, element: Constant) -> "ConstantVector":
        return cls(ty, [element] * ty.count)

    def is_zero(self) -> bool:
        return all(e.is_zero() for e in self.elements)

    def is_splat(self) -> bool:
        first = self.elements[0]
        return all(
            type(e) is type(first) and getattr(e, "value", 0) == getattr(first, "value", 0)
            for e in self.elements
        )

    def ref(self) -> str:
        inner = ", ".join(f"{e.type} {e.ref()}" for e in self.elements)
        return f"<{inner}>"


class ConstantString(Constant):
    """A constant byte string (array of i8), used for global data."""

    def __init__(self, data: bytes):
        super().__init__(ArrayType(IntType(8), len(data)))
        self.data = bytes(data)

    def is_zero(self) -> bool:
        return all(b == 0 for b in self.data)

    def ref(self) -> str:
        text = "".join(
            chr(b) if 32 <= b < 127 and chr(b) not in '"\\' else f"\\{b:02x}"
            for b in self.data
        )
        return f'c"{text}"'


# ---------------------------------------------------------------------------
# Non-constant, non-instruction values
# ---------------------------------------------------------------------------


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, ty: Type, name: str, function: Optional["Function"] = None,
                 index: int = 0):
        super().__init__(ty, name)
        self.function = function
        self.index = index


class GlobalValue(Constant):
    """Base for module-level symbols: functions and global variables.

    Global values are constants (their *address* is a link-time constant).
    ``linkage`` is either ``"external"`` (visible outside the module) or
    ``"internal"`` (static; eligible for whole-module optimizations).
    """

    def __init__(self, ty: PointerType, name: str, linkage: str = "external"):
        super().__init__(ty)
        self.name = name
        self.linkage = linkage
        self.module: Optional["Module"] = None

    @property
    def is_internal(self) -> bool:
        return self.linkage == "internal"

    @property
    def value_type(self) -> Type:
        """The type of the object the symbol points at."""
        assert isinstance(self.type, PointerType)
        return self.type.pointee

    def ref(self) -> str:
        return f"@{self.name}"


class GlobalVariable(GlobalValue, User):
    """A module-level variable.

    The initializer, when present, is held as an *operand* so that symbols
    referenced from initializers (e.g. function-pointer tables) show up in
    use lists — GlobalDCE and the call graph's address-taken analysis rely
    on this.
    """

    def __init__(
        self,
        ty: Type,
        name: str,
        initializer: Optional[Constant] = None,
        is_constant: bool = False,
        linkage: str = "external",
        alignment: int = 0,
    ):
        GlobalValue.__init__(self, PointerType(ty), name, linkage)
        self._operands = []
        self._uses_on_operands = []
        if initializer is not None:
            self.append_operand(initializer)
        self.is_constant = is_constant
        self.alignment = alignment or ty.alignment

    @property
    def initializer(self) -> Optional[Constant]:
        return self._operands[0] if self._operands else None  # type: ignore[return-value]

    def set_initializer(self, value: Optional[Constant]) -> None:
        if self._operands:
            if value is None:
                self.remove_operand(0)
            else:
                self.set_operand(0, value)
        elif value is not None:
            self.append_operand(value)


def make_constant(ty: Type, value) -> Constant:
    """Build a scalar constant of ``ty`` from a Python number."""
    if isinstance(ty, IntType):
        return ConstantInt(ty, int(value))
    if isinstance(ty, FloatType):
        return ConstantFloat(ty, float(value))
    if isinstance(ty, PointerType) and value in (0, None):
        return ConstantNull(ty)
    if isinstance(ty, VectorType):
        return ConstantVector.splat(ty, make_constant(ty.element, value))
    raise TypeError(f"cannot build constant of type {ty}")


def zero(ty: Type) -> Constant:
    """The zero/null constant of ``ty``."""
    if isinstance(ty, ArrayType):
        return ConstantArray(ty, [zero(ty.element) for _ in range(ty.count)])
    return make_constant(ty, 0)
