"""Structured cloning of functions and modules.

Cloning is used pervasively: the RL environment snapshots the module each
step, the inliner clones callee bodies, loop unrolling/unswitching clone
loop bodies. All of them funnel through :func:`clone_blocks_into`, which
copies instructions while remapping operands through a value map.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .instructions import Instruction
from .module import BasicBlock, Function, Module
from .values import Value

#: Maps id(original value) -> replacement value.
ValueMap = Dict[int, Value]


def clone_blocks_into(
    target_fn: Function,
    blocks: List[BasicBlock],
    vmap: ValueMap,
    name_suffix: str = "",
) -> List[BasicBlock]:
    """Clone ``blocks`` (in order) into ``target_fn``.

    ``vmap`` should already map values defined outside ``blocks`` that the
    cloned code must see differently (e.g. callee arguments when inlining).
    Values not present in the map — constants, globals, values defined
    outside the cloned region, and blocks outside the region — are kept
    as-is. The map is updated with every cloned block and instruction.

    Operands that refer *forward* to instructions cloned later (phis over
    back edges) are resolved in a second pass.
    """
    new_blocks: List[BasicBlock] = []
    for block in blocks:
        nb = target_fn.add_block(block.name + name_suffix)
        vmap[id(block)] = nb
        new_blocks.append(nb)

    cloned: List[Tuple[Instruction, Instruction]] = []
    for block, nb in zip(blocks, new_blocks):
        for inst in block.instructions:
            operands = [vmap.get(id(op), op) for op in inst.operands]
            copy = inst.clone_impl(operands)
            copy.meta = dict(inst.meta)
            if not copy.type.is_void:
                copy.name = target_fn.next_name(inst.name or "t")
            nb.append(copy)
            vmap[id(inst)] = copy
            cloned.append((inst, copy))

    for original, copy in cloned:
        for i, op in enumerate(original.operands):
            mapped = vmap.get(id(op))
            if mapped is not None and copy.operand(i) is not mapped:
                copy.set_operand(i, mapped)
    return new_blocks


def clone_function_body(
    source: Function, target: Function, vmap: Optional[ValueMap] = None
) -> ValueMap:
    """Clone all blocks of ``source`` into the (block-less) ``target``."""
    vmap = dict(vmap or {})
    for src_arg, dst_arg in zip(source.args, target.args):
        vmap[id(src_arg)] = dst_arg
    clone_blocks_into(target, source.blocks, vmap)
    return vmap


def clone_module(module: Module) -> Module:
    """Deep-copy a module: globals, functions, bodies, attributes."""
    from .values import GlobalVariable

    new = Module(module.name)
    vmap: ValueMap = {}

    for gv in module.globals:
        ng = GlobalVariable(
            gv.value_type,
            gv.name,
            None,  # initializer attached after all symbols exist
            gv.is_constant,
            gv.linkage,
            gv.alignment,
        )
        new.add_global(ng)
        vmap[id(gv)] = ng

    for fn in module.functions:
        nf = Function(
            new,
            fn.name,
            fn.ftype,
            fn.linkage,
            [a.name for a in fn.args],
        )
        nf.attributes = set(fn.attributes)
        vmap[id(fn)] = nf

    # Initializers may reference other globals/functions; remap them.
    for gv in module.globals:
        init = gv.initializer
        if init is not None:
            ng = vmap[id(gv)]
            ng.set_initializer(vmap.get(id(init), init))  # type: ignore[union-attr]

    for fn in module.functions:
        if fn.is_declaration:
            continue
        nf = new.get_function(fn.name)
        assert nf is not None
        clone_function_body(fn, nf, vmap)
    return new
