"""Miniature SSA IR: the LLVM-substitute substrate.

Public surface:

* types: :mod:`repro.ir.types` (``I32``, ``F64``, ``ptr`` …)
* values/constants: :mod:`repro.ir.values`
* instructions: :mod:`repro.ir.instructions`
* containers: :class:`Module`, :class:`Function`, :class:`BasicBlock`
* :class:`IRBuilder` for construction, :func:`parse_module` /
  :func:`print_module` for text, :func:`verify_module` for invariants,
  :func:`run_module` for reference execution.
"""

from .builder import IRBuilder
from .clone import clone_blocks_into, clone_function_body, clone_module
from .instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    ExtractElement,
    FCmp,
    GetElementPtr,
    ICmp,
    InsertElement,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Switch,
    Unreachable,
    BINARY_OPS,
    CAST_OPS,
    COMMUTATIVE_OPS,
    ICMP_PREDICATES,
    FCMP_PREDICATES,
    INVERTED_PREDICATE,
    SWAPPED_PREDICATE,
)
from .interp import Interpreter, InterpError, OutOfFuel, run_module
from .module import BasicBlock, Function, Module
from .parser import ParseError, parse_module
from .printer import print_function, print_module
from .types import (
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    LabelType,
    PointerType,
    StructType,
    Type,
    VectorType,
    VoidType,
    F32,
    F64,
    I1,
    I8,
    I16,
    I32,
    I64,
    LABEL,
    VOID,
    ptr,
)
from .values import (
    Argument,
    Constant,
    ConstantArray,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantString,
    ConstantVector,
    GlobalValue,
    GlobalVariable,
    UndefValue,
    Use,
    User,
    Value,
    make_constant,
    zero,
)
from .fingerprint import function_fingerprint, module_fingerprint
from .verifier import VerificationError, verify_function, verify_module

__all__ = [name for name in dir() if not name.startswith("_")]
