"""Parser for the textual IR produced by :mod:`repro.ir.printer`.

Supports everything the printer emits except named struct types (structs
are built programmatically; modules containing struct-typed globals or
allocas do not round-trip through text — the test-suite's round-trip
properties use struct-free modules).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from .instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    ExtractElement,
    FCmp,
    GetElementPtr,
    ICmp,
    InsertElement,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Switch,
    Unreachable,
    BINARY_OPS,
    CAST_OPS,
)
from .module import BasicBlock, Function, Module
from .types import (
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    Type,
    VectorType,
    VOID,
    I1,
)
from .values import (
    Constant,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantString,
    GlobalVariable,
    UndefValue,
    Value,
    zero,
)


class ParseError(ValueError):
    """Raised on malformed IR text."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>;[^\n]*)
  | (?P<string>c"(?:[^"\\]|\\[0-9a-fA-F]{2})*")
  | (?P<global>@[A-Za-z0-9._$\-]+)
  | (?P<local>%[A-Za-z0-9._$\-]+)
  | (?P<number>-?\d+\.\d+(?:e[+-]?\d+)?|-?\d+)
  | (?P<word>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<punct>\.\.\.|[=,:(){}\[\]<>*])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError(f"bad character at offset {pos}: {text[pos:pos+20]!r}")
        pos = m.end()
        if m.lastgroup in ("ws", "comment"):
            continue
        tokens.append(m.group(0))
    return tokens


class _Placeholder(Value):
    """Stand-in for a local value referenced before its definition."""

    def __init__(self, ty: Type, name: str):
        super().__init__(ty, name)


class _Cursor:
    def __init__(self, tokens: List[str]):
        self.tokens = tokens
        self.pos = 0

    @property
    def done(self) -> bool:
        return self.pos >= len(self.tokens)

    def peek(self, offset: int = 0) -> Optional[str]:
        i = self.pos + offset
        return self.tokens[i] if i < len(self.tokens) else None

    def next(self) -> str:
        if self.done:
            raise ParseError("unexpected end of input")
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise ParseError(f"expected {token!r}, got {got!r} at token {self.pos}")

    def accept(self, token: str) -> bool:
        if self.peek() == token:
            self.pos += 1
            return True
        return False


_INT_TYPES = {"i1": 1, "i8": 8, "i16": 16, "i32": 32, "i64": 64}


def _parse_type(cur: _Cursor) -> Type:
    tok = cur.next()
    ty: Type
    if tok in _INT_TYPES:
        ty = IntType(_INT_TYPES[tok])
    elif tok == "float":
        ty = FloatType(32)
    elif tok == "double":
        ty = FloatType(64)
    elif tok == "void":
        ty = VOID
    elif tok == "[":
        count = int(cur.next())
        cur.expect("x")
        elem = _parse_type(cur)
        cur.expect("]")
        ty = ArrayType(elem, count)
    elif tok == "<":
        count = int(cur.next())
        cur.expect("x")
        elem = _parse_type(cur)
        cur.expect(">")
        ty = VectorType(elem, count)
    else:
        raise ParseError(f"expected type, got {tok!r}")
    while cur.accept("*"):
        ty = PointerType(ty)
    return ty


def _parse_string_data(token: str) -> bytes:
    body = token[2:-1]
    out = bytearray()
    i = 0
    while i < len(body):
        if body[i] == "\\":
            out.append(int(body[i + 1 : i + 3], 16))
            i += 3
        else:
            out.append(ord(body[i]))
            i += 1
    return bytes(out)


class _FunctionParser:
    """Parses one function body; resolves forward references at the end."""

    def __init__(self, module_parser: "_ModuleParser", fn: Function):
        self.mp = module_parser
        self.fn = fn
        self.locals: Dict[str, Value] = {f"%{a.name}": a for a in fn.args}
        self.blocks: Dict[str, BasicBlock] = {}
        self.placeholders: List[_Placeholder] = []

    def get_block(self, name: str) -> BasicBlock:
        block = self.blocks.get(name)
        if block is None:
            block = BasicBlock(name, self.fn)
            self.blocks[name] = block
        return block

    def define_local(self, name: str, value: Value) -> None:
        key = f"%{name}"
        existing = self.locals.get(key)
        if isinstance(existing, _Placeholder):
            existing.replace_all_uses_with(value)
            self.placeholders.remove(existing)
        elif existing is not None:
            raise ParseError(f"redefinition of {key}")
        self.locals[key] = value

    def ref(self, token: str, ty: Type) -> Value:
        """Resolve an operand token against an expected type."""
        if token.startswith("%"):
            value = self.locals.get(token)
            if value is None:
                value = _Placeholder(ty, token[1:])
                self.locals[token] = value
                self.placeholders.append(value)
            return value
        if token.startswith("@"):
            return self.mp.symbol(token[1:])
        if token == "null":
            assert isinstance(ty, PointerType)
            return ConstantNull(ty)
        if token == "undef":
            return UndefValue(ty)
        if token == "true":
            return ConstantInt(I1, 1)
        if token == "false":
            return ConstantInt(I1, 0)
        if isinstance(ty, IntType):
            return ConstantInt(ty, int(token))
        if isinstance(ty, FloatType):
            return ConstantFloat(ty, float(token))
        raise ParseError(f"cannot interpret operand {token!r} as {ty}")

    def operand(self, cur: _Cursor, ty: Type) -> Value:
        """Parse one operand of known type (vector literals need lookahead)."""
        if isinstance(ty, VectorType) and cur.peek() == "<":
            return self._vector_constant(cur, ty)
        return self.ref(cur.next(), ty)

    def _vector_constant(self, cur: _Cursor, ty: VectorType) -> Value:
        from .values import ConstantVector

        cur.expect("<")
        elements = []
        while not cur.accept(">"):
            if elements:
                cur.expect(",")
            ety = _parse_type(cur)
            elements.append(self.ref(cur.next(), ety))
        return ConstantVector(ty, elements)  # type: ignore[arg-type]

    def typed_operand(self, cur: _Cursor) -> Value:
        ty = _parse_type(cur)
        return self.operand(cur, ty)

    # -- instruction parsing ---------------------------------------------------
    def parse_body(self, cur: _Cursor) -> None:
        cur.expect("{")
        current: Optional[BasicBlock] = None
        while not cur.accept("}"):
            tok = cur.peek()
            assert tok is not None
            if cur.peek(1) == ":":
                label = cur.next()
                cur.expect(":")
                current = self.get_block(label)
                if current not in self.fn.blocks:
                    self.fn.blocks.append(current)
                continue
            if current is None:
                raise ParseError("instruction before first block label")
            self.parse_instruction(cur, current)
        if self.placeholders:
            names = ", ".join(p.name for p in self.placeholders)
            raise ParseError(f"undefined locals: {names}")

    def parse_instruction(self, cur: _Cursor, block: BasicBlock) -> None:
        result_name: Optional[str] = None
        if cur.peek(1) == "=" and cur.peek() and cur.peek().startswith("%"):
            result_name = cur.next()[1:]
            cur.expect("=")
        inst = self.parse_instruction_rhs(cur)
        block.append(inst)
        if result_name is not None:
            inst.name = result_name
            self.define_local(result_name, inst)

    def parse_instruction_rhs(self, cur: _Cursor) -> Instruction:
        op = cur.next()
        if op == "tail" and cur.peek() == "call":
            cur.next()
            return self._parse_call(cur, tail=True)
        if op in BINARY_OPS:
            ty = _parse_type(cur)
            lhs = self.operand(cur, ty)
            cur.expect(",")
            rhs = self.operand(cur, ty)
            return BinaryOp(op, lhs, rhs)
        if op in ("icmp", "fcmp"):
            pred = cur.next()
            ty = _parse_type(cur)
            lhs = self.operand(cur, ty)
            cur.expect(",")
            rhs = self.operand(cur, ty)
            return ICmp(pred, lhs, rhs) if op == "icmp" else FCmp(pred, lhs, rhs)
        if op in CAST_OPS:
            src = self.typed_operand(cur)
            cur.expect("to")
            return Cast(op, src, _parse_type(cur))
        if op == "alloca":
            ty = _parse_type(cur)
            align = 0
            if cur.accept(","):
                cur.expect("align")
                align = int(cur.next())
            return Alloca(ty, alignment=align)
        if op == "load":
            _parse_type(cur)  # result type, implied by pointer
            cur.expect(",")
            ptr = self.typed_operand(cur)
            align = 0
            if cur.accept(","):
                cur.expect("align")
                align = int(cur.next())
            return Load(ptr, alignment=align)
        if op == "store":
            value = self.typed_operand(cur)
            cur.expect(",")
            ptr = self.typed_operand(cur)
            align = 0
            if cur.accept(","):
                cur.expect("align")
                align = int(cur.next())
            return Store(value, ptr, alignment=align)
        if op == "gep":
            ptr = self.typed_operand(cur)
            indices = []
            while cur.accept(","):
                indices.append(self.typed_operand(cur))
            return GetElementPtr(ptr, indices)
        if op == "phi":
            ty = _parse_type(cur)
            phi = Phi(ty)
            while True:
                cur.expect("[")
                value = self.operand(cur, ty)
                cur.expect(",")
                btok = cur.next()
                cur.expect("]")
                phi.add_incoming(value, self.get_block(btok[1:]))
                if not cur.accept(","):
                    break
            return phi
        if op == "select":
            cond = self.typed_operand(cur)
            cur.expect(",")
            tval = self.typed_operand(cur)
            cur.expect(",")
            fval = self.typed_operand(cur)
            return Select(cond, tval, fval)
        if op == "extractelement":
            vec = self.typed_operand(cur)
            cur.expect(",")
            idx = self.typed_operand(cur)
            return ExtractElement(vec, idx)
        if op == "insertelement":
            vec = self.typed_operand(cur)
            cur.expect(",")
            elem = self.typed_operand(cur)
            cur.expect(",")
            idx = self.typed_operand(cur)
            return InsertElement(vec, elem, idx)
        if op == "call":
            return self._parse_call(cur, tail=False)
        if op == "br":
            if cur.accept("label"):
                return Branch(self.get_block(cur.next()[1:]))
            ty = _parse_type(cur)
            cond = self.ref(cur.next(), ty)
            cur.expect(",")
            cur.expect("label")
            then = self.get_block(cur.next()[1:])
            cur.expect(",")
            cur.expect("label")
            els = self.get_block(cur.next()[1:])
            return Branch(cond, then, els)
        if op == "switch":
            value = self.typed_operand(cur)
            cur.expect(",")
            cur.expect("label")
            default = self.get_block(cur.next()[1:])
            cur.expect("[")
            cases: List[Tuple[ConstantInt, BasicBlock]] = []
            while not cur.accept("]"):
                cty = _parse_type(cur)
                cv = self.ref(cur.next(), cty)
                cur.expect(",")
                cur.expect("label")
                cases.append((cv, self.get_block(cur.next()[1:])))  # type: ignore[arg-type]
            return Switch(value, default, cases)
        if op == "ret":
            if cur.accept("void"):
                return Ret()
            return Ret(self.typed_operand(cur))
        if op == "unreachable":
            return Unreachable()
        raise ParseError(f"unknown instruction opcode {op!r}")

    def _parse_call(self, cur: _Cursor, tail: bool) -> Call:
        _parse_type(cur)  # return type, implied by callee
        callee_tok = cur.next()
        if callee_tok.startswith("@"):
            callee: Value = self.mp.symbol(callee_tok[1:])
        else:
            callee = self.locals[callee_tok]
        cur.expect("(")
        args: List[Value] = []
        while not cur.accept(")"):
            if args:
                cur.expect(",")
            args.append(self.typed_operand(cur))
        return Call(callee, args, tail=tail)


_MODULE_NAME_RE = re.compile(r"^;\s*module\s+(\S+)\s*$", re.MULTILINE)


class _ModuleParser:
    def __init__(self, text: str):
        self.cur = _Cursor(_tokenize(text))
        # The printer records the module name in a leading comment;
        # recover it so print -> parse -> print is an exact round trip.
        m = _MODULE_NAME_RE.search(text)
        self.module = Module(m.group(1) if m else "module")

    def symbol(self, name: str) -> Value:
        sym = self.module._symbols.get(name)
        if sym is None:
            raise ParseError(f"unknown symbol @{name}")
        return sym

    def parse(self) -> Module:
        cur = self.cur
        # Pre-scan for function signatures so calls can be resolved in any
        # order: collect (header position) of each define/declare first.
        self._prescan()
        self.cur = _Cursor(cur.tokens)
        cur = self.cur
        while not cur.done:
            tok = cur.peek()
            if tok == "define" or tok == "declare":
                self._parse_function(cur)
            elif tok is not None and tok.startswith("@"):
                self._parse_global(cur)
            else:
                raise ParseError(f"unexpected top-level token {tok!r}")
        return self.module

    # -- pre-scan ----------------------------------------------------------
    def _prescan(self) -> None:
        cur = self.cur
        while not cur.done:
            tok = cur.peek()
            if tok in ("define", "declare"):
                self._parse_function_header(cur, declare_only=True)
                # Skip body if present.
                if cur.peek() == "{":
                    depth = 0
                    while True:
                        t = cur.next()
                        if t == "{":
                            depth += 1
                        elif t == "}":
                            depth -= 1
                            if depth == 0:
                                break
            elif tok is not None and tok.startswith("@"):
                self._parse_global(cur)
            else:
                cur.next()

    def _parse_global(self, cur: _Cursor) -> None:
        name = cur.next()[1:]
        if self.module._symbols.get(name) is not None:
            # Re-parse pass: skip to end of the global line.
            cur.expect("=")
            self._skip_global_tail(cur)
            return
        cur.expect("=")
        linkage = "internal" if cur.accept("internal") else "external"
        is_const = cur.next() == "constant"
        ty = _parse_type(cur)
        init = self._parse_initializer(cur, ty)
        align = 0
        if cur.accept(","):
            cur.expect("align")
            align = int(cur.next())
        gv = GlobalVariable(ty, name, init, is_const, linkage, align)
        self.module.add_global(gv)

    def _skip_global_tail(self, cur: _Cursor) -> None:
        cur.accept("internal")
        cur.next()  # global|constant
        _parse_type(cur)
        ty_tok = cur.peek()
        if ty_tok == "zeroinitializer":
            cur.next()
        elif ty_tok is not None and ty_tok.startswith('c"'):
            cur.next()
        elif cur.accept("["):
            depth = 1
            while depth:
                t = cur.next()
                if t == "[":
                    depth += 1
                elif t == "]":
                    depth -= 1
        else:
            cur.next()
        if cur.accept(","):
            cur.expect("align")
            cur.next()

    def _parse_initializer(self, cur: _Cursor, ty: Type) -> Optional[Constant]:
        tok = cur.peek()
        if tok == "zeroinitializer":
            cur.next()
            return zero(ty)
        if tok is not None and tok.startswith('c"'):
            cur.next()
            return ConstantString(_parse_string_data(tok))
        if isinstance(ty, ArrayType) and cur.accept("["):
            from .values import ConstantArray

            elements: List[Constant] = []
            while not cur.accept("]"):
                if elements:
                    cur.expect(",")
                ety = _parse_type(cur)
                elements.append(self._parse_scalar_constant(cur, ety))
            return ConstantArray(ty, elements)
        if isinstance(ty, (IntType, FloatType, PointerType)):
            return self._parse_scalar_constant(cur, ty)
        raise ParseError(f"cannot parse initializer for {ty}")

    def _parse_scalar_constant(self, cur: _Cursor, ty: Type) -> Constant:
        tok = cur.next()
        if tok == "null":
            assert isinstance(ty, PointerType)
            return ConstantNull(ty)
        if tok == "true":
            return ConstantInt(I1, 1)
        if tok == "false":
            return ConstantInt(I1, 0)
        if isinstance(ty, IntType):
            return ConstantInt(ty, int(tok))
        if isinstance(ty, FloatType):
            return ConstantFloat(ty, float(tok))
        raise ParseError(f"bad constant {tok!r} for {ty}")

    # -- functions ----------------------------------------------------------
    def _parse_function_header(
        self, cur: _Cursor, declare_only: bool
    ) -> Tuple[Optional[Function], List[str]]:
        kind = cur.next()  # define | declare
        linkage = "internal" if cur.accept("internal") else "external"
        ret = _parse_type(cur)
        name = cur.next()[1:]
        cur.expect("(")
        params: List[Type] = []
        arg_names: List[str] = []
        vararg = False
        while not cur.accept(")"):
            if params or vararg:
                cur.expect(",")
            if cur.accept("..."):
                vararg = True
                continue
            params.append(_parse_type(cur))
            tok = cur.peek()
            if tok is not None and tok.startswith("%"):
                arg_names.append(cur.next()[1:])
            else:
                arg_names.append(f"arg{len(params) - 1}")
        attrs: List[str] = []
        while cur.peek() not in (None, "{", "define", "declare") and not (
            cur.peek() or ""
        ).startswith("@"):
            attrs.append(cur.next())

        fn: Optional[Function] = None
        if declare_only:
            if self.module.get_function(name) is None:
                fn = Function(
                    self.module,
                    name,
                    FunctionType(ret, params, vararg),
                    linkage,
                    arg_names,
                )
                fn.attributes.update(attrs)
        else:
            fn = self.module.get_function(name)
            assert fn is not None
        return fn, arg_names

    def _parse_function(self, cur: _Cursor) -> None:
        is_define = cur.peek() == "define"
        fn, _ = self._parse_function_header(cur, declare_only=False)
        assert fn is not None
        if is_define:
            _FunctionParser(self, fn).parse_body(cur)


def parse_module(text: str) -> Module:
    """Parse textual IR into a :class:`~repro.ir.module.Module`."""
    return _ModuleParser(text).parse()
