"""IRBuilder: convenience layer for constructing IR.

The builder tracks an insertion point (a block, appending at its end) and
auto-names produced values so the verifier and printer stay happy. It does
*no* folding — simplification is the optimizer's job, which keeps generated
programs rich in optimization opportunities.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from .instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    ExtractElement,
    FCmp,
    GetElementPtr,
    ICmp,
    InsertElement,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Switch,
    Unreachable,
)
from .module import BasicBlock, Function
from .types import FloatType, IntType, Type, VectorType
from .values import Constant, ConstantFloat, ConstantInt, Value


class IRBuilder:
    """Appends instructions to a basic block."""

    def __init__(self, block: Optional[BasicBlock] = None):
        self.block = block

    def set_insert_point(self, block: BasicBlock) -> None:
        self.block = block

    @property
    def function(self) -> Function:
        assert self.block is not None and self.block.parent is not None
        return self.block.parent

    def _emit(self, inst: Instruction, name: str = "") -> Instruction:
        assert self.block is not None, "no insertion point"
        if not inst.type.is_void:
            inst.name = name or inst.name or self.function.next_name()
        self.block.append(inst)
        return inst

    # -- constants -----------------------------------------------------------
    @staticmethod
    def const_int(ty: IntType, value: int) -> ConstantInt:
        return ConstantInt(ty, value)

    @staticmethod
    def const_float(ty: FloatType, value: float) -> ConstantFloat:
        return ConstantFloat(ty, value)

    # -- arithmetic ------------------------------------------------------------
    def binary(self, opcode: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._emit(BinaryOp(opcode, lhs, rhs), name)

    def add(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binary("add", lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binary("sub", lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binary("mul", lhs, rhs, name)

    def sdiv(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binary("sdiv", lhs, rhs, name)

    def udiv(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binary("udiv", lhs, rhs, name)

    def srem(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binary("srem", lhs, rhs, name)

    def and_(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binary("and", lhs, rhs, name)

    def or_(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binary("or", lhs, rhs, name)

    def xor(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binary("xor", lhs, rhs, name)

    def shl(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binary("shl", lhs, rhs, name)

    def lshr(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binary("lshr", lhs, rhs, name)

    def ashr(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binary("ashr", lhs, rhs, name)

    def fadd(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binary("fadd", lhs, rhs, name)

    def fsub(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binary("fsub", lhs, rhs, name)

    def fmul(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binary("fmul", lhs, rhs, name)

    def fdiv(self, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self.binary("fdiv", lhs, rhs, name)

    # -- comparisons ------------------------------------------------------------
    def icmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._emit(ICmp(predicate, lhs, rhs), name)

    def fcmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._emit(FCmp(predicate, lhs, rhs), name)

    # -- memory -------------------------------------------------------------------
    def alloca(self, ty: Type, name: str = "") -> Value:
        return self._emit(Alloca(ty), name)

    def load(self, pointer: Value, name: str = "") -> Value:
        return self._emit(Load(pointer), name)

    def store(self, value: Value, pointer: Value) -> Instruction:
        return self._emit(Store(value, pointer))

    def gep(self, pointer: Value, indices: Sequence[Value], name: str = "") -> Value:
        return self._emit(GetElementPtr(pointer, indices), name)

    # -- misc values --------------------------------------------------------------
    def select(self, cond: Value, tval: Value, fval: Value, name: str = "") -> Value:
        return self._emit(Select(cond, tval, fval), name)

    def cast(self, opcode: str, value: Value, to_type: Type, name: str = "") -> Value:
        return self._emit(Cast(opcode, value, to_type), name)

    def trunc(self, value: Value, to_type: Type, name: str = "") -> Value:
        return self.cast("trunc", value, to_type, name)

    def zext(self, value: Value, to_type: Type, name: str = "") -> Value:
        return self.cast("zext", value, to_type, name)

    def sext(self, value: Value, to_type: Type, name: str = "") -> Value:
        return self.cast("sext", value, to_type, name)

    def sitofp(self, value: Value, to_type: Type, name: str = "") -> Value:
        return self.cast("sitofp", value, to_type, name)

    def fptosi(self, value: Value, to_type: Type, name: str = "") -> Value:
        return self.cast("fptosi", value, to_type, name)

    def bitcast(self, value: Value, to_type: Type, name: str = "") -> Value:
        return self.cast("bitcast", value, to_type, name)

    def phi(self, ty: Type, name: str = "") -> Phi:
        """Phis are inserted before the first non-phi of the block."""
        assert self.block is not None
        phi = Phi(ty, name or self.function.next_name())
        first = self.block.first_non_phi
        if first is None:
            self.block.append(phi)
        else:
            self.block.insert(self.block.instructions.index(first), phi)
            phi.parent = self.block
        return phi

    def extractelement(self, vector: Value, index: Value, name: str = "") -> Value:
        return self._emit(ExtractElement(vector, index), name)

    def insertelement(
        self, vector: Value, element: Value, index: Value, name: str = ""
    ) -> Value:
        return self._emit(InsertElement(vector, element, index), name)

    # -- calls and control flow ------------------------------------------------
    def call(self, callee: Value, args: Sequence[Value] = (), name: str = "",
             tail: bool = False) -> Value:
        return self._emit(Call(callee, args, tail=tail), name)

    def br(self, target: BasicBlock) -> Instruction:
        return self._emit(Branch(target))

    def cond_br(self, cond: Value, then: BasicBlock, els: BasicBlock) -> Instruction:
        return self._emit(Branch(cond, then, els))

    def switch(
        self,
        value: Value,
        default: BasicBlock,
        cases: Sequence[Tuple[ConstantInt, BasicBlock]] = (),
    ) -> Instruction:
        return self._emit(Switch(value, default, cases))

    def ret(self, value: Optional[Value] = None) -> Instruction:
        return self._emit(Ret(value))

    def unreachable(self) -> Instruction:
        return self._emit(Unreachable())
