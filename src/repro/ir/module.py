"""Containers: basic blocks, functions and modules.

A :class:`BasicBlock` is itself a value (of label type) so that branches and
phis can reference it through the ordinary use machinery. A
:class:`Function` is a global value whose "pointee" is its signature, so
taking the address of a function and calling it indirectly both work.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from .instructions import Instruction, Phi, terminator_targets
from .types import FunctionType, LabelType, PointerType, Type
from .values import Argument, GlobalValue, GlobalVariable, Value


class BasicBlock(Value):
    """A straight-line sequence of instructions ending in one terminator."""

    def __init__(self, name: str = "", parent: Optional["Function"] = None):
        super().__init__(LabelType(), name)
        self.parent = parent
        self.instructions: List[Instruction] = []

    # -- structure ----------------------------------------------------------
    def append(self, inst: Instruction) -> Instruction:
        self.instructions.append(inst)
        inst.parent = self
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        self.instructions.insert(index, inst)
        inst.parent = self
        return inst

    def insert_before_terminator(self, inst: Instruction) -> Instruction:
        term = self.terminator
        if term is None:
            return self.append(inst)
        return self.insert(self.instructions.index(term), inst)

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def phis(self) -> List[Phi]:
        result = []
        for inst in self.instructions:
            if isinstance(inst, Phi):
                result.append(inst)
            else:
                break
        return result

    def non_phi_instructions(self) -> List[Instruction]:
        return [i for i in self.instructions if not isinstance(i, Phi)]

    @property
    def first_non_phi(self) -> Optional[Instruction]:
        for inst in self.instructions:
            if not isinstance(inst, Phi):
                return inst
        return None

    # -- CFG ------------------------------------------------------------------
    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        if term is None:
            return []
        return terminator_targets(term)

    def predecessors(self) -> List["BasicBlock"]:
        """Predecessor blocks, derived from uses of this block by terminators."""
        preds = []
        seen: Set[int] = set()
        for use in self.uses:
            user = use.user
            if (
                isinstance(user, Instruction)
                and user.is_terminator
                and user.parent is not None
                and id(user.parent) not in seen
                and self in terminator_targets(user)
            ):
                seen.add(id(user.parent))
                preds.append(user.parent)
        return preds

    @property
    def single_predecessor(self) -> Optional["BasicBlock"]:
        preds = self.predecessors()
        return preds[0] if len(preds) == 1 else None

    @property
    def single_successor(self) -> Optional["BasicBlock"]:
        succs = self.successors()
        return succs[0] if len(succs) == 1 else None

    def remove_phi_incoming_for(self, pred: "BasicBlock") -> None:
        for phi in self.phis():
            phi.remove_incoming(pred)

    def erase_from_parent(self) -> None:
        """Drop the block and all of its instructions from the function."""
        for inst in list(self.instructions):
            inst.drop_all_operands()
            inst.parent = None
        self.instructions.clear()
        if self.parent is not None:
            self.parent.blocks.remove(self)
            self.parent = None

    def ref(self) -> str:
        return f"%{self.name}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"<BasicBlock %{self.name} ({len(self.instructions)} insts)>"


class Function(GlobalValue):
    """A function definition (with blocks) or declaration (without)."""

    def __init__(
        self,
        module: Optional["Module"],
        name: str,
        ftype: FunctionType,
        linkage: str = "external",
        arg_names: Sequence[str] = (),
    ):
        super().__init__(PointerType(ftype), name, linkage)
        self.module = module
        self.ftype = ftype
        self.blocks: List[BasicBlock] = []
        self.attributes: Set[str] = set()
        self.args: List[Argument] = [
            Argument(
                ty,
                arg_names[i] if i < len(arg_names) else f"arg{i}",
                self,
                i,
            )
            for i, ty in enumerate(ftype.params)
        ]
        self._name_counter = 0
        if module is not None:
            module.add_function(self)

    # -- basic properties ----------------------------------------------------
    @property
    def return_type(self) -> Type:
        return self.ftype.ret

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def is_intrinsic(self) -> bool:
        return self.name.startswith("llvm.")

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    # -- construction ----------------------------------------------------------
    def add_block(self, name: str = "", before: Optional[BasicBlock] = None) -> BasicBlock:
        block = BasicBlock(name or self.next_name("bb"), self)
        if before is None:
            self.blocks.append(block)
        else:
            self.blocks.insert(self.blocks.index(before), block)
        return block

    def next_name(self, prefix: str = "t") -> str:
        self._name_counter += 1
        return f"{prefix}{self._name_counter}"

    # -- iteration ---------------------------------------------------------------
    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    @property
    def instruction_count(self) -> int:
        return sum(len(b.instructions) for b in self.blocks)

    def calls(self) -> Iterator["Instruction"]:
        from .instructions import Call

        for inst in self.instructions():
            if isinstance(inst, Call):
                yield inst

    # -- attributes -----------------------------------------------------------
    def add_attribute(self, attr: str) -> None:
        self.attributes.add(attr)

    def has_attribute(self, attr: str) -> bool:
        return attr in self.attributes

    def __repr__(self) -> str:  # pragma: no cover
        kind = "declare" if self.is_declaration else "define"
        return f"<Function {kind} @{self.name} : {self.ftype}>"


class Module:
    """Top-level container of globals and functions."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: List[Function] = []
        self.globals: List[GlobalVariable] = []
        self._symbols: Dict[str, GlobalValue] = {}

    # -- symbol management ------------------------------------------------------
    def add_function(self, fn: Function) -> Function:
        if fn.name in self._symbols:
            raise ValueError(f"duplicate symbol @{fn.name}")
        fn.module = self
        self.functions.append(fn)
        self._symbols[fn.name] = fn
        return fn

    def add_global(self, gv: GlobalVariable) -> GlobalVariable:
        if gv.name in self._symbols:
            raise ValueError(f"duplicate symbol @{gv.name}")
        gv.module = self
        self.globals.append(gv)
        self._symbols[gv.name] = gv
        return gv

    def get_function(self, name: str) -> Optional[Function]:
        sym = self._symbols.get(name)
        return sym if isinstance(sym, Function) else None

    def get_global(self, name: str) -> Optional[GlobalVariable]:
        sym = self._symbols.get(name)
        return sym if isinstance(sym, GlobalVariable) else None

    def remove_function(self, fn: Function) -> None:
        self.functions.remove(fn)
        del self._symbols[fn.name]
        fn.module = None

    def remove_global(self, gv: GlobalVariable) -> None:
        self.globals.remove(gv)
        del self._symbols[gv.name]
        gv.module = None

    def rename_symbol(self, gv: GlobalValue, new_name: str) -> None:
        if new_name in self._symbols:
            raise ValueError(f"duplicate symbol @{new_name}")
        del self._symbols[gv.name]
        gv.name = new_name
        self._symbols[new_name] = gv

    def unique_symbol_name(self, base: str) -> str:
        if base not in self._symbols:
            return base
        i = 1
        while f"{base}.{i}" in self._symbols:
            i += 1
        return f"{base}.{i}"

    def get_or_insert_function(
        self, name: str, ftype: FunctionType, linkage: str = "external"
    ) -> Function:
        existing = self.get_function(name)
        if existing is not None:
            return existing
        return Function(self, name, ftype, linkage)

    # -- iteration ------------------------------------------------------------
    def defined_functions(self) -> List[Function]:
        return [f for f in self.functions if not f.is_declaration]

    @property
    def instruction_count(self) -> int:
        return sum(f.instruction_count for f in self.functions)

    def clone(self) -> "Module":
        from .clone import clone_module

        return clone_module(self)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Module {self.name}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals>"
        )
