"""Instruction set of the miniature SSA IR.

Design notes
------------
* Basic blocks are :class:`~repro.ir.values.Value`\\ s of label type, and
  terminators/phis hold their target blocks *as operands*. This mirrors LLVM
  and means ``block.replace_all_uses_with(other)`` rewires both branches and
  phi incoming-block slots in one shot — the primitive CFG passes build on.
* Every instruction knows how to classify its own effects
  (``may_read_memory`` / ``may_write_memory`` / ``has_side_effects`` /
  ``is_speculatable``), which is what LICM, CSE, DCE and friends query.
* ``meta`` carries optional key/value metadata (branch weights from
  ``lower-expect``, alignment facts from ``alignment-from-assumptions``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from .types import (
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    StructType,
    Type,
    VectorType,
    VOID,
    I1,
    I64,
)
from .values import Constant, ConstantInt, User, Value

if TYPE_CHECKING:  # pragma: no cover
    from .module import BasicBlock, Function

# Opcode groups --------------------------------------------------------------

INT_BINARY_OPS = (
    "add", "sub", "mul", "sdiv", "udiv", "srem", "urem",
    "and", "or", "xor", "shl", "lshr", "ashr",
)
FLOAT_BINARY_OPS = ("fadd", "fsub", "fmul", "fdiv", "frem")
BINARY_OPS = INT_BINARY_OPS + FLOAT_BINARY_OPS

COMMUTATIVE_OPS = frozenset({"add", "mul", "and", "or", "xor", "fadd", "fmul"})
ASSOCIATIVE_OPS = frozenset({"add", "mul", "and", "or", "xor"})

ICMP_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge")
FCMP_PREDICATES = ("oeq", "one", "olt", "ole", "ogt", "oge")

#: predicate -> predicate with operands swapped
SWAPPED_PREDICATE = {
    "eq": "eq", "ne": "ne",
    "slt": "sgt", "sgt": "slt", "sle": "sge", "sge": "sle",
    "ult": "ugt", "ugt": "ult", "ule": "uge", "uge": "ule",
    "oeq": "oeq", "one": "one",
    "olt": "ogt", "ogt": "olt", "ole": "oge", "oge": "ole",
}

#: predicate -> logically negated predicate
INVERTED_PREDICATE = {
    "eq": "ne", "ne": "eq",
    "slt": "sge", "sge": "slt", "sle": "sgt", "sgt": "sle",
    "ult": "uge", "uge": "ult", "ule": "ugt", "ugt": "ule",
    "oeq": "one", "one": "oeq",
    "olt": "oge", "oge": "olt", "ole": "ogt", "ogt": "ole",
}

CAST_OPS = (
    "trunc", "zext", "sext", "fptrunc", "fpext",
    "fptosi", "sitofp", "uitofp", "bitcast", "ptrtoint", "inttoptr",
)

TERMINATOR_OPS = frozenset({"br", "switch", "ret", "unreachable"})


class Instruction(User):
    """Base class for all instructions."""

    opcode: str = "?"

    def __init__(self, ty: Type, operands: Sequence[Value] = (), name: str = ""):
        super().__init__(ty, operands, name)
        self.parent: Optional["BasicBlock"] = None
        self.meta: Dict[str, object] = {}

    # -- structural helpers ------------------------------------------------
    @property
    def function(self) -> Optional["Function"]:
        return self.parent.parent if self.parent is not None else None

    @property
    def module(self):
        fn = self.function
        return fn.module if fn is not None else None

    def erase_from_parent(self) -> None:
        """Remove from the containing block and drop operand uses."""
        if self.parent is not None:
            self.parent.instructions.remove(self)
            self.parent = None
        self.drop_all_operands()

    def insert_before(self, other: "Instruction") -> None:
        assert other.parent is not None
        block = other.parent
        block.instructions.insert(block.instructions.index(other), self)
        self.parent = block

    def insert_after(self, other: "Instruction") -> None:
        assert other.parent is not None
        block = other.parent
        block.instructions.insert(block.instructions.index(other) + 1, self)
        self.parent = block

    def move_before(self, other: "Instruction") -> None:
        if self.parent is not None:
            self.parent.instructions.remove(self)
            self.parent = None
        self.insert_before(other)

    def move_to_end(self, block: "BasicBlock") -> None:
        if self.parent is not None:
            self.parent.instructions.remove(self)
        block.instructions.append(self)
        self.parent = block

    # -- classification -----------------------------------------------------
    @property
    def is_terminator(self) -> bool:
        return self.opcode in TERMINATOR_OPS

    @property
    def is_phi(self) -> bool:
        return isinstance(self, Phi)

    @property
    def may_read_memory(self) -> bool:
        return False

    @property
    def may_write_memory(self) -> bool:
        return False

    @property
    def has_side_effects(self) -> bool:
        """True if removing this instruction could change program behaviour
        beyond its own result (memory writes, I/O, control flow)."""
        return self.may_write_memory or self.is_terminator

    @property
    def is_trivially_dead(self) -> bool:
        return not self.has_uses and not self.has_side_effects

    @property
    def is_speculatable(self) -> bool:
        """Safe to execute even if the original program would not have
        (no traps, no memory access, no side effects)."""
        return False

    def clone_impl(self, operands: List[Value]) -> "Instruction":
        """Create a detached copy with the given (already-mapped) operands."""
        raise NotImplementedError(type(self).__name__)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        ops = ", ".join(op.ref() for op in self.operands)
        head = f"%{self.name} = " if not self.type.is_void and self.name else ""
        return f"<{head}{self.opcode} {ops}>"


class BinaryOp(Instruction):
    """Two-operand arithmetic/logic (scalar or vector)."""

    def __init__(self, opcode: str, lhs: Value, rhs: Value, name: str = ""):
        if opcode not in BINARY_OPS:
            raise ValueError(f"bad binary opcode {opcode!r}")
        if lhs.type != rhs.type:
            raise TypeError(f"{opcode}: operand types differ: {lhs.type} vs {rhs.type}")
        super().__init__(lhs.type, [lhs, rhs], name)
        self.opcode = opcode

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)

    @property
    def is_commutative(self) -> bool:
        return self.opcode in COMMUTATIVE_OPS

    @property
    def is_division(self) -> bool:
        return self.opcode in ("sdiv", "udiv", "srem", "urem")

    @property
    def is_speculatable(self) -> bool:
        if self.is_division:
            rhs = self.rhs
            return isinstance(rhs, ConstantInt) and not rhs.is_zero()
        return True

    def clone_impl(self, operands: List[Value]) -> "BinaryOp":
        return BinaryOp(self.opcode, operands[0], operands[1], self.name)


class ICmp(Instruction):
    """Integer/pointer comparison producing i1 (or vector of i1)."""

    opcode = "icmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in ICMP_PREDICATES:
            raise ValueError(f"bad icmp predicate {predicate!r}")
        if lhs.type != rhs.type:
            raise TypeError("icmp operand types differ")
        result = (
            VectorType(I1, lhs.type.count)
            if isinstance(lhs.type, VectorType)
            else I1
        )
        super().__init__(result, [lhs, rhs], name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)

    @property
    def is_speculatable(self) -> bool:
        return True

    def clone_impl(self, operands: List[Value]) -> "ICmp":
        return ICmp(self.predicate, operands[0], operands[1], self.name)


class FCmp(Instruction):
    """Ordered floating-point comparison producing i1."""

    opcode = "fcmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in FCMP_PREDICATES:
            raise ValueError(f"bad fcmp predicate {predicate!r}")
        if lhs.type != rhs.type:
            raise TypeError("fcmp operand types differ")
        result = (
            VectorType(I1, lhs.type.count)
            if isinstance(lhs.type, VectorType)
            else I1
        )
        super().__init__(result, [lhs, rhs], name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)

    @property
    def is_speculatable(self) -> bool:
        return True

    def clone_impl(self, operands: List[Value]) -> "FCmp":
        return FCmp(self.predicate, operands[0], operands[1], self.name)


class Alloca(Instruction):
    """Stack allocation; yields a pointer to ``allocated_type``."""

    opcode = "alloca"

    def __init__(self, allocated_type: Type, name: str = "", alignment: int = 0):
        super().__init__(PointerType(allocated_type), [], name)
        self.allocated_type = allocated_type
        self.alignment = alignment or allocated_type.alignment

    def clone_impl(self, operands: List[Value]) -> "Alloca":
        return Alloca(self.allocated_type, self.name, self.alignment)


class Load(Instruction):
    """Memory read through a typed pointer."""

    opcode = "load"

    def __init__(self, pointer: Value, name: str = "", alignment: int = 0):
        if not isinstance(pointer.type, PointerType):
            raise TypeError("load requires a pointer operand")
        pointee = pointer.type.pointee
        super().__init__(pointee, [pointer], name)
        self.alignment = alignment or pointee.alignment

    @property
    def pointer(self) -> Value:
        return self.operand(0)

    @property
    def may_read_memory(self) -> bool:
        return True

    def clone_impl(self, operands: List[Value]) -> "Load":
        return Load(operands[0], self.name, self.alignment)


class Store(Instruction):
    """Memory write through a typed pointer. Produces no value."""

    opcode = "store"

    def __init__(self, value: Value, pointer: Value, alignment: int = 0):
        if not isinstance(pointer.type, PointerType):
            raise TypeError("store requires a pointer operand")
        if pointer.type.pointee != value.type:
            raise TypeError(
                f"store type mismatch: {value.type} into {pointer.type}"
            )
        super().__init__(VOID, [value, pointer])
        self.alignment = alignment or value.type.alignment

    @property
    def value(self) -> Value:
        return self.operand(0)

    @property
    def pointer(self) -> Value:
        return self.operand(1)

    @property
    def may_write_memory(self) -> bool:
        return True

    def clone_impl(self, operands: List[Value]) -> "Store":
        return Store(operands[0], operands[1], self.alignment)


class GetElementPtr(Instruction):
    """Pointer arithmetic over typed objects (simplified LLVM GEP).

    The first index scales by the size of the pointee; later indices step
    into arrays and structs. Struct indices must be constant.
    """

    opcode = "gep"

    def __init__(self, pointer: Value, indices: Sequence[Value], name: str = ""):
        if not isinstance(pointer.type, PointerType):
            raise TypeError("gep requires a pointer operand")
        result = self._result_type(pointer.type, indices)
        super().__init__(result, [pointer, *indices], name)

    @staticmethod
    def _result_type(ptr_ty: PointerType, indices: Sequence[Value]) -> PointerType:
        ty: Type = ptr_ty.pointee
        for idx in list(indices)[1:]:
            if isinstance(ty, (ArrayType, VectorType)):
                ty = ty.element
            elif isinstance(ty, StructType):
                if not isinstance(idx, ConstantInt):
                    raise TypeError("struct gep index must be constant")
                ty = ty.fields[idx.value]
            else:
                raise TypeError(f"cannot index into {ty}")
        return PointerType(ty)

    @property
    def pointer(self) -> Value:
        return self.operand(0)

    @property
    def indices(self) -> List[Value]:
        return self.operands[1:]

    @property
    def has_all_constant_indices(self) -> bool:
        return all(isinstance(i, ConstantInt) for i in self.indices)

    def constant_offset(self) -> Optional[int]:
        """Byte offset if all indices are constants, else ``None``."""
        if not self.has_all_constant_indices:
            return None
        assert isinstance(self.pointer.type, PointerType)
        ty: Type = self.pointer.type.pointee
        offset = self.indices[0].value * ty.size  # type: ignore[union-attr]
        for idx in self.indices[1:]:
            assert isinstance(idx, ConstantInt)
            if isinstance(ty, (ArrayType, VectorType)):
                ty = ty.element
                offset += idx.value * ty.size
            elif isinstance(ty, StructType):
                offset += ty.field_offset(idx.value)
                ty = ty.fields[idx.value]
            else:  # pragma: no cover - rejected at construction
                raise TypeError(f"cannot index into {ty}")
        return offset

    @property
    def is_speculatable(self) -> bool:
        return True  # address arithmetic never traps in this IR

    def clone_impl(self, operands: List[Value]) -> "GetElementPtr":
        return GetElementPtr(operands[0], operands[1:], self.name)


class Phi(Instruction):
    """SSA phi node. Operands are stored as [v0, b0, v1, b1, ...]."""

    opcode = "phi"

    def __init__(self, ty: Type, name: str = ""):
        super().__init__(ty, [], name)

    @property
    def num_incoming(self) -> int:
        return self.num_operands // 2

    def incoming_value(self, i: int) -> Value:
        return self.operand(2 * i)

    def incoming_block(self, i: int) -> "BasicBlock":
        return self.operand(2 * i + 1)  # type: ignore[return-value]

    def incoming(self) -> Iterable[Tuple[Value, "BasicBlock"]]:
        for i in range(self.num_incoming):
            yield self.incoming_value(i), self.incoming_block(i)

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        if value.type != self.type:
            raise TypeError(
                f"phi incoming type {value.type} != phi type {self.type}"
            )
        self.append_operand(value)
        self.append_operand(block)

    def incoming_for_block(self, block: "BasicBlock") -> Optional[Value]:
        for value, pred in self.incoming():
            if pred is block:
                return value
        return None

    def set_incoming_value(self, i: int, value: Value) -> None:
        self.set_operand(2 * i, value)

    def remove_incoming(self, block: "BasicBlock") -> None:
        for i in range(self.num_incoming - 1, -1, -1):
            if self.incoming_block(i) is block:
                self.remove_operand(2 * i + 1)
                self.remove_operand(2 * i)

    def unique_value(self) -> Optional[Value]:
        """The single incoming value if all entries agree (ignoring self),
        and replacing the phi with it preserves dominance.

        A value that is an instruction *in the phi's own block* is defined
        after the phi (phis lead the block), so it reaches the phi only
        around a back edge — folding would put uses before the def. Such
        loop-carried single-entry phis are reported as irreducible (None).
        """
        unique: Optional[Value] = None
        for value, _ in self.incoming():
            if value is self:
                continue
            if unique is None:
                unique = value
            elif unique is not value:
                return None
        if (
            isinstance(unique, Instruction)
            and unique.parent is not None
            and unique.parent is self.parent
        ):
            return None
        return unique

    def clone_impl(self, operands: List[Value]) -> "Phi":
        clone = Phi(self.type, self.name)
        for op in operands:
            clone.append_operand(op)
        return clone


class Select(Instruction):
    """Ternary select: ``cond ? tval : fval``."""

    opcode = "select"

    def __init__(self, cond: Value, tval: Value, fval: Value, name: str = ""):
        if tval.type != fval.type:
            raise TypeError("select arm types differ")
        super().__init__(tval.type, [cond, tval, fval], name)

    @property
    def condition(self) -> Value:
        return self.operand(0)

    @property
    def true_value(self) -> Value:
        return self.operand(1)

    @property
    def false_value(self) -> Value:
        return self.operand(2)

    @property
    def is_speculatable(self) -> bool:
        return True

    def clone_impl(self, operands: List[Value]) -> "Select":
        return Select(operands[0], operands[1], operands[2], self.name)


class Cast(Instruction):
    """Type conversion."""

    def __init__(self, opcode: str, value: Value, to_type: Type, name: str = ""):
        if opcode not in CAST_OPS:
            raise ValueError(f"bad cast opcode {opcode!r}")
        super().__init__(to_type, [value], name)
        self.opcode = opcode

    @property
    def value(self) -> Value:
        return self.operand(0)

    @property
    def is_speculatable(self) -> bool:
        return True

    def clone_impl(self, operands: List[Value]) -> "Cast":
        return Cast(self.opcode, operands[0], self.type, self.name)


class ExtractElement(Instruction):
    """Read one lane of a vector."""

    opcode = "extractelement"

    def __init__(self, vector: Value, index: Value, name: str = ""):
        if not isinstance(vector.type, VectorType):
            raise TypeError("extractelement requires a vector")
        super().__init__(vector.type.element, [vector, index], name)

    @property
    def vector(self) -> Value:
        return self.operand(0)

    @property
    def index(self) -> Value:
        return self.operand(1)

    @property
    def is_speculatable(self) -> bool:
        return True

    def clone_impl(self, operands: List[Value]) -> "ExtractElement":
        return ExtractElement(operands[0], operands[1], self.name)


class InsertElement(Instruction):
    """Write one lane of a vector, yielding the updated vector."""

    opcode = "insertelement"

    def __init__(self, vector: Value, element: Value, index: Value, name: str = ""):
        if not isinstance(vector.type, VectorType):
            raise TypeError("insertelement requires a vector")
        if vector.type.element != element.type:
            raise TypeError("insertelement element type mismatch")
        super().__init__(vector.type, [vector, element, index], name)

    @property
    def vector(self) -> Value:
        return self.operand(0)

    @property
    def is_speculatable(self) -> bool:
        return True

    def clone_impl(self, operands: List[Value]) -> "InsertElement":
        return InsertElement(operands[0], operands[1], operands[2], self.name)


class Call(Instruction):
    """Direct or indirect function call. Operand 0 is the callee."""

    opcode = "call"

    def __init__(self, callee: Value, args: Sequence[Value], name: str = "",
                 tail: bool = False):
        from .module import Function  # local import to avoid a cycle

        if isinstance(callee, Function):
            ret = callee.return_type
        elif isinstance(callee.type, PointerType) and callee.type.pointee.is_function:
            ret = callee.type.pointee.ret  # type: ignore[union-attr]
        else:
            raise TypeError(f"call target is not a function: {callee.type}")
        super().__init__(ret, [callee, *args], name)
        self.tail = tail

    @property
    def callee(self) -> Value:
        return self.operand(0)

    @property
    def called_function(self) -> Optional["Function"]:
        from .module import Function

        callee = self.callee
        return callee if isinstance(callee, Function) else None

    @property
    def args(self) -> List[Value]:
        return self.operands[1:]

    def arg(self, i: int) -> Value:
        return self.operand(i + 1)

    def set_arg(self, i: int, value: Value) -> None:
        self.set_operand(i + 1, value)

    @property
    def intrinsic_name(self) -> Optional[str]:
        fn = self.called_function
        if fn is not None and fn.name.startswith("llvm."):
            return fn.name
        return None

    def _callee_attrs(self) -> frozenset:
        fn = self.called_function
        return frozenset(fn.attributes) if fn is not None else frozenset()

    @property
    def may_read_memory(self) -> bool:
        return "readnone" not in self._callee_attrs()

    @property
    def may_write_memory(self) -> bool:
        attrs = self._callee_attrs()
        return "readnone" not in attrs and "readonly" not in attrs

    @property
    def has_side_effects(self) -> bool:
        # A call is removable only if it neither writes memory nor diverges.
        attrs = self._callee_attrs()
        pure = ("readnone" in attrs or "readonly" in attrs)
        return not (pure and "willreturn" in attrs)

    def clone_impl(self, operands: List[Value]) -> "Call":
        return Call(operands[0], operands[1:], self.name, self.tail)


class Branch(Instruction):
    """Unconditional (``br label``) or conditional (``br i1, l1, l2``)."""

    opcode = "br"

    def __init__(self, *operands: Value):
        if len(operands) == 1:
            super().__init__(VOID, list(operands))
        elif len(operands) == 3:
            if operands[0].type != I1:
                raise TypeError("branch condition must be i1")
            super().__init__(VOID, list(operands))
        else:
            raise ValueError("br takes 1 (target) or 3 (cond, then, else) operands")

    @property
    def is_conditional(self) -> bool:
        return self.num_operands == 3

    @property
    def condition(self) -> Value:
        assert self.is_conditional
        return self.operand(0)

    @property
    def targets(self) -> List["BasicBlock"]:
        if self.is_conditional:
            return [self.operand(1), self.operand(2)]  # type: ignore[list-item]
        return [self.operand(0)]  # type: ignore[list-item]

    @property
    def true_target(self) -> "BasicBlock":
        assert self.is_conditional
        return self.operand(1)  # type: ignore[return-value]

    @property
    def false_target(self) -> "BasicBlock":
        assert self.is_conditional
        return self.operand(2)  # type: ignore[return-value]

    def clone_impl(self, operands: List[Value]) -> "Branch":
        return Branch(*operands)


class Switch(Instruction):
    """Multi-way branch: operands are [value, default, cv0, b0, cv1, b1...]."""

    opcode = "switch"

    def __init__(self, value: Value, default: Value,
                 cases: Sequence[Tuple[ConstantInt, Value]] = ()):
        ops: List[Value] = [value, default]
        for cv, block in cases:
            ops.extend((cv, block))
        super().__init__(VOID, ops)

    @property
    def value(self) -> Value:
        return self.operand(0)

    @property
    def default(self) -> "BasicBlock":
        return self.operand(1)  # type: ignore[return-value]

    @property
    def num_cases(self) -> int:
        return (self.num_operands - 2) // 2

    def cases(self) -> Iterable[Tuple[ConstantInt, "BasicBlock"]]:
        for i in range(self.num_cases):
            yield (
                self.operand(2 + 2 * i),  # type: ignore[misc]
                self.operand(3 + 2 * i),  # type: ignore[misc]
            )

    @property
    def targets(self) -> List["BasicBlock"]:
        return [self.default] + [b for _, b in self.cases()]

    def clone_impl(self, operands: List[Value]) -> "Switch":
        cases = [
            (operands[2 + 2 * i], operands[3 + 2 * i])
            for i in range((len(operands) - 2) // 2)
        ]
        return Switch(operands[0], operands[1], cases)  # type: ignore[arg-type]


class Ret(Instruction):
    """Function return, with or without a value."""

    opcode = "ret"

    def __init__(self, value: Optional[Value] = None):
        super().__init__(VOID, [value] if value is not None else [])

    @property
    def value(self) -> Optional[Value]:
        return self.operand(0) if self.num_operands else None

    @property
    def targets(self) -> List["BasicBlock"]:
        return []

    def clone_impl(self, operands: List[Value]) -> "Ret":
        return Ret(operands[0] if operands else None)


class Unreachable(Instruction):
    """Marks statically unreachable control flow."""

    opcode = "unreachable"

    def __init__(self) -> None:
        super().__init__(VOID, [])

    @property
    def targets(self) -> List["BasicBlock"]:
        return []

    def clone_impl(self, operands: List[Value]) -> "Unreachable":
        return Unreachable()


def terminator_targets(inst: Instruction) -> List["BasicBlock"]:
    """Successor blocks of a terminator instruction."""
    if isinstance(inst, (Branch, Switch, Ret, Unreachable)):
        return inst.targets
    raise TypeError(f"not a terminator: {inst!r}")
