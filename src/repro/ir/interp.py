"""Reference interpreter for the IR.

Executes a module's functions over a flat byte-addressed memory. Used by
the test-suite to prove that optimization passes preserve semantics: run a
program before and after a pipeline and compare return values and the
observable side-effect trace (external calls, in order, with arguments).
"""

from __future__ import annotations

import struct as _struct
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .instructions import (
    Alloca,
    BinaryOp,
    Branch,
    Call,
    Cast,
    ExtractElement,
    FCmp,
    GetElementPtr,
    ICmp,
    InsertElement,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Switch,
    Unreachable,
)
from .module import BasicBlock, Function, Module
from .types import (
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    StructType,
    Type,
    VectorType,
)
from .values import (
    Argument,
    Constant,
    ConstantArray,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantString,
    ConstantVector,
    GlobalVariable,
    UndefValue,
    Value,
)


class InterpError(Exception):
    """Raised on runtime faults (traps, fuel exhaustion, bad memory)."""


class OutOfFuel(InterpError):
    """The step budget was exhausted (probably an infinite loop)."""


class Memory:
    """Flat little-endian byte memory with a bump allocator."""

    def __init__(self, size: int = 1 << 22):
        self.data = bytearray(size)
        self.brk = 16  # keep 0 as the null page

    def allocate(self, size: int, alignment: int = 8) -> int:
        addr = (self.brk + alignment - 1) // alignment * alignment
        self.brk = addr + max(size, 1)
        if self.brk > len(self.data):
            self.data.extend(bytearray(self.brk - len(self.data) + 4096))
        return addr

    def _check(self, addr: int, size: int) -> None:
        if addr <= 0 or addr + size > len(self.data):
            raise InterpError(f"memory access out of range: {addr}+{size}")

    def read(self, addr: int, size: int) -> bytes:
        self._check(addr, size)
        return bytes(self.data[addr : addr + size])

    def write(self, addr: int, payload: bytes) -> None:
        self._check(addr, len(payload))
        self.data[addr : addr + len(payload)] = payload


def _encode(ty: Type, value) -> bytes:
    if isinstance(ty, IntType):
        size = ty.size
        return (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
    if isinstance(ty, FloatType):
        return _struct.pack("<f" if ty.bits == 32 else "<d", value)
    if isinstance(ty, PointerType):
        return int(value).to_bytes(8, "little")
    if isinstance(ty, VectorType):
        return b"".join(_encode(ty.element, lane) for lane in value)
    if isinstance(ty, ArrayType):
        return b"".join(_encode(ty.element, elem) for elem in value)
    raise InterpError(f"cannot encode {ty}")


def _decode(ty: Type, payload: bytes):
    if isinstance(ty, IntType):
        raw = int.from_bytes(payload[: ty.size], "little")
        return ty.wrap(raw)
    if isinstance(ty, FloatType):
        fmt = "<f" if ty.bits == 32 else "<d"
        return _struct.unpack(fmt, payload[: ty.size])[0]
    if isinstance(ty, PointerType):
        return int.from_bytes(payload[:8], "little")
    if isinstance(ty, VectorType):
        step = ty.element.size
        return [
            _decode(ty.element, payload[i * step : (i + 1) * step])
            for i in range(ty.count)
        ]
    raise InterpError(f"cannot decode {ty}")


def _const_value(const: Constant, interp: "Interpreter"):
    if isinstance(const, ConstantInt):
        return const.value
    if isinstance(const, ConstantFloat):
        return const.value
    if isinstance(const, ConstantNull):
        return 0
    if isinstance(const, UndefValue):
        ty = const.type
        if isinstance(ty, VectorType):
            return [0] * ty.count
        return 0 if not isinstance(ty, FloatType) else 0.0
    if isinstance(const, ConstantVector):
        return [_const_value(e, interp) for e in const.elements]
    if isinstance(const, GlobalVariable):
        return interp.global_address(const)
    from .module import Function

    if isinstance(const, Function):
        return interp.function_address(const)
    raise InterpError(f"cannot evaluate constant {const!r}")


def _int_binop(op: str, ty: IntType, a: int, b: int) -> int:
    ua = a & ty.max_unsigned
    ub = b & ty.max_unsigned
    if op == "add":
        return ty.wrap(a + b)
    if op == "sub":
        return ty.wrap(a - b)
    if op == "mul":
        return ty.wrap(a * b)
    if op == "sdiv":
        if b == 0:
            raise InterpError("sdiv by zero")
        return ty.wrap(int(a / b))
    if op == "udiv":
        if ub == 0:
            raise InterpError("udiv by zero")
        return ty.wrap(ua // ub)
    if op == "srem":
        if b == 0:
            raise InterpError("srem by zero")
        return ty.wrap(a - int(a / b) * b)
    if op == "urem":
        if ub == 0:
            raise InterpError("urem by zero")
        return ty.wrap(ua % ub)
    if op == "and":
        return ty.wrap(ua & ub)
    if op == "or":
        return ty.wrap(ua | ub)
    if op == "xor":
        return ty.wrap(ua ^ ub)
    if op == "shl":
        return ty.wrap(ua << (ub % ty.bits))
    if op == "lshr":
        return ty.wrap(ua >> (ub % ty.bits))
    if op == "ashr":
        return ty.wrap(a >> (ub % ty.bits))
    raise InterpError(f"bad int op {op}")


def _float_binop(op: str, a: float, b: float) -> float:
    if op == "fadd":
        return a + b
    if op == "fsub":
        return a - b
    if op == "fmul":
        return a * b
    if op == "fdiv":
        if b == 0.0:
            return float("inf") if a > 0 else float("-inf") if a < 0 else float("nan")
        return a / b
    if op == "frem":
        import math

        return math.fmod(a, b) if b != 0.0 else float("nan")
    raise InterpError(f"bad float op {op}")


def _icmp(pred: str, ty: IntType, a: int, b: int) -> int:
    ua = a & ty.max_unsigned
    ub = b & ty.max_unsigned
    table = {
        "eq": a == b, "ne": a != b,
        "slt": a < b, "sle": a <= b, "sgt": a > b, "sge": a >= b,
        "ult": ua < ub, "ule": ua <= ub, "ugt": ua > ub, "uge": ua >= ub,
    }
    return 1 if table[pred] else 0


def _fcmp(pred: str, a: float, b: float) -> int:
    table = {
        "oeq": a == b, "one": a != b,
        "olt": a < b, "ole": a <= b, "ogt": a > b, "oge": a >= b,
    }
    return 1 if table[pred] else 0


class Interpreter:
    """Executes IR functions; records externally visible effects."""

    def __init__(
        self,
        module: Module,
        fuel: int = 2_000_000,
        externals: Optional[Dict[str, Callable]] = None,
        collect_coverage: bool = False,
    ):
        self.module = module
        self.fuel = fuel
        self.initial_fuel = fuel
        self.memory = Memory()
        self.trace: List[Tuple[str, Tuple]] = []
        #: opcodes actually executed (``collect_coverage=True``); the
        #: differential-testing suite uses this to prove generator coverage.
        self.executed_opcodes: Optional[set] = set() if collect_coverage else None
        self.externals = dict(externals or {})
        self._globals: Dict[int, int] = {}
        self._fn_addrs: Dict[int, int] = {}
        self._addr_to_fn: Dict[int, Function] = {}
        for gv in module.globals:
            self.global_address(gv)

    # -- addresses ------------------------------------------------------------
    def global_address(self, gv: GlobalVariable) -> int:
        addr = self._globals.get(id(gv))
        if addr is None:
            size = max(gv.value_type.size, 1)
            addr = self.memory.allocate(size, gv.alignment)
            self._globals[id(gv)] = addr
            init = gv.initializer
            if init is not None and not isinstance(init, UndefValue):
                self.memory.write(addr, self._encode_initializer(init))
        return addr

    def function_address(self, fn: Function) -> int:
        addr = self._fn_addrs.get(id(fn))
        if addr is None:
            addr = self.memory.allocate(8, 8)
            self._fn_addrs[id(fn)] = addr
            self._addr_to_fn[addr] = fn
        return addr

    def _encode_initializer(self, const: Constant) -> bytes:
        if isinstance(const, ConstantString):
            return const.data
        if isinstance(const, ConstantArray):
            return b"".join(self._encode_initializer(e) for e in const.elements)
        return _encode(const.type, _const_value(const, self))

    # -- execution --------------------------------------------------------------
    def run(self, fn_name: str, args: Sequence = ()) :
        fn = self.module.get_function(fn_name)
        if fn is None:
            raise InterpError(f"no such function @{fn_name}")
        return self.call_function(fn, list(args))

    def call_function(self, fn: Function, args: List):
        if fn.is_declaration:
            return self._call_external(fn, args)
        env: Dict[int, object] = {}
        for arg, value in zip(fn.args, args):
            env[id(arg)] = value
        block = fn.entry
        prev: Optional[BasicBlock] = None
        while True:
            next_block, result, finished = self._run_block(fn, block, prev, env)
            if finished:
                return result
            prev, block = block, next_block  # type: ignore[assignment]

    def _call_external(self, fn: Function, args: List):
        self.trace.append((fn.name, tuple(args)))
        handler = self.externals.get(fn.name)
        if handler is not None:
            result = handler(*args)
        else:
            result = 0
        ret = fn.return_type
        if ret.is_void:
            return None
        if isinstance(ret, IntType):
            return ret.wrap(int(result))
        if isinstance(ret, FloatType):
            return float(result)
        return result

    def _value(self, env: Dict[int, object], value: Value):
        if isinstance(value, Constant):
            return _const_value(value, self)
        try:
            return env[id(value)]
        except KeyError:
            raise InterpError(f"undefined value at runtime: {value!r}")

    def _run_block(
        self,
        fn: Function,
        block: BasicBlock,
        prev: Optional[BasicBlock],
        env: Dict[int, object],
    ):
        # Phis are evaluated in parallel against the incoming edge.
        phi_values = []
        if self.executed_opcodes is not None and block.phis():
            self.executed_opcodes.add("phi")
        for phi in block.phis():
            incoming = phi.incoming_for_block(prev) if prev is not None else None
            if incoming is None:
                raise InterpError(
                    f"phi %{phi.name} has no incoming for %{prev.name if prev else '?'}"
                )
            phi_values.append((phi, self._value(env, incoming)))
        for phi, value in phi_values:
            env[id(phi)] = value

        for inst in block.non_phi_instructions():
            self.fuel -= 1
            if self.fuel <= 0:
                raise OutOfFuel("interpreter fuel exhausted")
            outcome = self._execute(fn, inst, env)
            if outcome is not None:
                return outcome
        raise InterpError(f"fell off the end of %{block.name}")

    @property
    def steps_executed(self) -> int:
        """Instructions retired so far (fuel consumed)."""
        return self.initial_fuel - self.fuel

    def _execute(self, fn: Function, inst: Instruction, env: Dict[int, object]):
        v = lambda x: self._value(env, x)
        if self.executed_opcodes is not None:
            self.executed_opcodes.add(inst.opcode)

        if isinstance(inst, BinaryOp):
            lhs, rhs = v(inst.lhs), v(inst.rhs)
            ty = inst.type
            if isinstance(ty, VectorType):
                elem = ty.element
                if isinstance(elem, IntType):
                    env[id(inst)] = [
                        _int_binop(inst.opcode, elem, a, b) for a, b in zip(lhs, rhs)
                    ]
                else:
                    env[id(inst)] = [
                        _float_binop(inst.opcode, a, b) for a, b in zip(lhs, rhs)
                    ]
            elif isinstance(ty, IntType):
                env[id(inst)] = _int_binop(inst.opcode, ty, lhs, rhs)
            else:
                env[id(inst)] = _float_binop(inst.opcode, lhs, rhs)
            return None

        if isinstance(inst, ICmp):
            ty = inst.lhs.type
            if isinstance(ty, VectorType):
                env[id(inst)] = [
                    _icmp(inst.predicate, ty.element, a, b)  # type: ignore[arg-type]
                    for a, b in zip(v(inst.lhs), v(inst.rhs))
                ]
            else:
                cmp_ty = ty if isinstance(ty, IntType) else IntType(64)
                env[id(inst)] = _icmp(inst.predicate, cmp_ty, v(inst.lhs), v(inst.rhs))
            return None

        if isinstance(inst, FCmp):
            env[id(inst)] = _fcmp(inst.predicate, v(inst.lhs), v(inst.rhs))
            return None

        if isinstance(inst, Alloca):
            env[id(inst)] = self.memory.allocate(
                inst.allocated_type.size, inst.alignment
            )
            return None

        if isinstance(inst, Load):
            addr = v(inst.pointer)
            env[id(inst)] = _decode(inst.type, self.memory.read(addr, inst.type.size))
            return None

        if isinstance(inst, Store):
            addr = v(inst.pointer)
            self.memory.write(addr, _encode(inst.value.type, v(inst.value)))
            return None

        if isinstance(inst, GetElementPtr):
            addr = v(inst.pointer)
            ty: Type = inst.pointer.type.pointee  # type: ignore[union-attr]
            indices = inst.indices
            addr += v(indices[0]) * ty.size
            for idx in indices[1:]:
                if isinstance(ty, (ArrayType, VectorType)):
                    ty = ty.element
                    addr += v(idx) * ty.size
                elif isinstance(ty, StructType):
                    field = v(idx)
                    addr += ty.field_offset(field)
                    ty = ty.fields[field]
            env[id(inst)] = addr
            return None

        if isinstance(inst, Select):
            env[id(inst)] = v(inst.true_value) if v(inst.condition) else v(inst.false_value)
            return None

        if isinstance(inst, Cast):
            env[id(inst)] = self._cast(inst, v(inst.value))
            return None

        if isinstance(inst, ExtractElement):
            env[id(inst)] = v(inst.vector)[v(inst.index)]
            return None

        if isinstance(inst, InsertElement):
            vec = list(v(inst.vector))
            vec[v(inst.operand(2))] = v(inst.operand(1))
            env[id(inst)] = vec
            return None

        if isinstance(inst, Call):
            return self._execute_call(inst, env)

        if isinstance(inst, Branch):
            if inst.is_conditional:
                target = inst.true_target if v(inst.condition) else inst.false_target
            else:
                target = inst.targets[0]
            return (target, None, False)

        if isinstance(inst, Switch):
            value = v(inst.value)
            for cv, target in inst.cases():
                if cv.value == value:
                    return (target, None, False)
            return (inst.default, None, False)

        if isinstance(inst, Ret):
            return (None, v(inst.value) if inst.value is not None else None, True)

        if isinstance(inst, Unreachable):
            raise InterpError("executed unreachable")

        raise InterpError(f"cannot execute {inst!r}")

    def _execute_call(self, inst: Call, env: Dict[int, object]):
        v = lambda x: self._value(env, x)
        callee = inst.called_function
        if callee is None:
            addr = v(inst.callee)
            callee = self._addr_to_fn.get(addr)
            if callee is None:
                raise InterpError(f"indirect call to non-function address {addr}")

        if callee.name.startswith("llvm."):
            result = self._execute_intrinsic(callee.name, [v(a) for a in inst.args])
        else:
            result = self.call_function(callee, [v(a) for a in inst.args])
        if not inst.type.is_void:
            env[id(inst)] = result
        return None

    def _execute_intrinsic(self, name: str, args: List):
        if name.startswith("llvm.memcpy") or name.startswith("llvm.memmove"):
            dst, src, length = args[0], args[1], args[2]
            self.memory.write(dst, self.memory.read(src, length))
            return None
        if name.startswith("llvm.memset"):
            dst, value, length = args[0], args[1], args[2]
            self.memory.write(dst, bytes([value & 0xFF]) * length)
            return None
        if name.startswith("llvm.expect"):
            return args[0]
        if name.startswith("llvm.assume"):
            return None
        if name.startswith("llvm.is.constant"):
            return 0
        if name.startswith("llvm.objectsize"):
            return -1
        if name.startswith("llvm.abs"):
            return abs(args[0])
        raise InterpError(f"unknown intrinsic {name}")

    def _cast(self, inst: Cast, value):
        op = inst.opcode
        to = inst.type
        if op == "trunc":
            return to.wrap(value)  # type: ignore[union-attr]
        if op == "zext":
            src = inst.value.type
            return to.wrap(value & src.max_unsigned)  # type: ignore[union-attr]
        if op == "sext":
            return to.wrap(value)  # type: ignore[union-attr]
        if op in ("fptrunc", "fpext"):
            if to.size == 4:
                return _struct.unpack("<f", _struct.pack("<f", value))[0]
            return float(value)
        if op == "fptosi":
            if value != value or abs(value) > 2**62:  # NaN / overflow
                return 0
            return to.wrap(int(value))  # type: ignore[union-attr]
        if op in ("sitofp", "uitofp"):
            if op == "uitofp":
                value = value & inst.value.type.max_unsigned  # type: ignore[union-attr]
            result = float(value)
            if to.size == 4:
                return _struct.unpack("<f", _struct.pack("<f", result))[0]
            return result
        if op in ("bitcast", "ptrtoint", "inttoptr"):
            if isinstance(to, IntType):
                return to.wrap(int(value))
            return value
        raise InterpError(f"bad cast {op}")


def run_module(
    module: Module,
    fn_name: str = "main",
    args: Sequence = (),
    fuel: int = 2_000_000,
    externals: Optional[Dict[str, Callable]] = None,
) -> Tuple[object, List[Tuple[str, Tuple]]]:
    """Run ``fn_name`` and return ``(return_value, external_call_trace)``."""
    interp = Interpreter(module, fuel=fuel, externals=externals)
    result = interp.run(fn_name, args)
    return result, interp.trace
