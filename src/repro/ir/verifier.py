"""IR verifier.

Checks the structural invariants every pass must preserve. Run after each
pass in the test-suite (``PassManager(verify=True)``) so a pass that breaks
SSA form or the CFG fails loudly at the point of breakage.
"""

from __future__ import annotations

from typing import List, Set

from .instructions import Branch, Call, Instruction, Phi, Ret, Switch
from .module import BasicBlock, Function, Module
from .types import FunctionType, VOID
from .values import Argument, Constant, Value


class VerificationError(Exception):
    """Raised when a module violates an IR invariant."""


def verify_module(module: Module) -> None:
    """Verify every function; raises :class:`VerificationError` on failure."""
    errors: List[str] = []
    for fn in module.functions:
        if fn.is_declaration:
            continue
        errors.extend(_verify_function(fn))
    if errors:
        raise VerificationError("\n".join(errors))


def verify_function(fn: Function) -> None:
    errors = _verify_function(fn)
    if errors:
        raise VerificationError("\n".join(errors))


def _verify_function(fn: Function) -> List[str]:
    errors: List[str] = []
    where = f"@{fn.name}"
    blocks: Set[int] = {id(b) for b in fn.blocks}

    if not fn.blocks:
        return [f"{where}: defined function has no blocks"]

    for block in fn.blocks:
        bwhere = f"{where}/%{block.name}"
        if block.parent is not fn:
            errors.append(f"{bwhere}: bad parent link")
        if not block.instructions:
            errors.append(f"{bwhere}: empty block")
            continue
        term = block.instructions[-1]
        if not term.is_terminator:
            errors.append(f"{bwhere}: missing terminator")
        for inst in block.instructions[:-1]:
            if inst.is_terminator:
                errors.append(f"{bwhere}: terminator {inst.opcode} in block middle")
        seen_non_phi = False
        for inst in block.instructions:
            if isinstance(inst, Phi):
                if seen_non_phi:
                    errors.append(f"{bwhere}: phi after non-phi")
            else:
                seen_non_phi = True
            if inst.parent is not block:
                errors.append(f"{bwhere}: instruction with bad parent: {inst!r}")

    # Phi / predecessor consistency + successor sanity.
    for block in fn.blocks:
        bwhere = f"{where}/%{block.name}"
        for succ in block.successors():
            if id(succ) not in blocks:
                errors.append(f"{bwhere}: successor %{succ.name} not in function")
        preds = block.predecessors()
        pred_ids = {id(p) for p in preds}
        for phi in block.phis():
            incoming_ids = [id(phi.incoming_block(i)) for i in range(phi.num_incoming)]
            if set(incoming_ids) != pred_ids or len(incoming_ids) != len(pred_ids):
                pred_names = sorted(p.name for p in preds)
                inc_names = sorted(
                    phi.incoming_block(i).name for i in range(phi.num_incoming)
                )
                errors.append(
                    f"{bwhere}: phi %{phi.name} incoming {inc_names} != preds {pred_names}"
                )

    # Return type consistency.
    for block in fn.blocks:
        term = block.terminator
        if isinstance(term, Ret):
            if fn.return_type.is_void:
                if term.value is not None:
                    errors.append(f"{where}: ret with value in void function")
            elif term.value is None:
                errors.append(f"{where}: ret void in non-void function")
            elif term.value.type != fn.return_type:
                errors.append(
                    f"{where}: ret type {term.value.type} != {fn.return_type}"
                )

    # Call signature checks.
    for inst in fn.instructions():
        if isinstance(inst, Call):
            callee = inst.called_function
            if callee is None:
                continue
            ftype = callee.ftype
            if len(inst.args) < len(ftype.params) or (
                len(inst.args) > len(ftype.params) and not ftype.vararg
            ):
                errors.append(
                    f"{where}: call to @{callee.name} with {len(inst.args)} args, "
                    f"expected {len(ftype.params)}"
                )
                continue
            for i, (arg, pty) in enumerate(zip(inst.args, ftype.params)):
                if arg.type != pty:
                    errors.append(
                        f"{where}: call to @{callee.name} arg {i}: "
                        f"{arg.type} != {pty}"
                    )

    errors.extend(_verify_ssa(fn))
    errors.extend(_verify_uses(fn))
    return errors


def _verify_ssa(fn: Function) -> List[str]:
    """Check the dominance property of SSA defs over uses."""
    from ..analysis.dominators import DominatorTree

    errors: List[str] = []
    try:
        dom = DominatorTree(fn)
    except Exception as exc:  # pragma: no cover - dominator bug
        return [f"@{fn.name}: dominator construction failed: {exc}"]

    positions = {}
    for block in fn.blocks:
        for i, inst in enumerate(block.instructions):
            positions[id(inst)] = (block, i)

    for block in fn.blocks:
        if not dom.is_reachable(block):
            continue
        for i, inst in enumerate(block.instructions):
            for op_index, op in enumerate(inst.operands):
                if not isinstance(op, Instruction):
                    continue
                pos = positions.get(id(op))
                if pos is None:
                    errors.append(
                        f"@{fn.name}/%{block.name}: operand of %{inst.name or inst.opcode} "
                        f"defined outside function: {op!r}"
                    )
                    continue
                def_block, def_index = pos
                if isinstance(inst, Phi):
                    # A phi use must be dominated at the end of the matching
                    # incoming block.
                    if op_index % 2 == 0:
                        pred = inst.operand(op_index + 1)
                        if dom.is_reachable(pred) and not dom.dominates_block(
                            def_block, pred
                        ):
                            errors.append(
                                f"@{fn.name}/%{block.name}: phi %{inst.name} incoming "
                                f"%{op.name} does not dominate pred %{pred.name}"
                            )
                    continue
                if def_block is block:
                    if def_index >= i:
                        errors.append(
                            f"@{fn.name}/%{block.name}: %{op.name} used before def"
                        )
                elif dom.is_reachable(def_block) and not dom.dominates_block(
                    def_block, block
                ):
                    errors.append(
                        f"@{fn.name}/%{block.name}: def %{op.name} in %{def_block.name} "
                        f"does not dominate use in %{block.name}"
                    )
    return errors


def _verify_uses(fn: Function) -> List[str]:
    """Check def-use bookkeeping consistency."""
    errors: List[str] = []
    for block in fn.blocks:
        for inst in block.instructions:
            for i, op in enumerate(inst.operands):
                found = any(
                    use.user is inst and use.index == i for use in op.uses
                )
                if not found:
                    errors.append(
                        f"@{fn.name}: missing use record: "
                        f"%{inst.name or inst.opcode} operand {i}"
                    )
    return errors
