"""Flat struct-of-arrays IR core for the metric kernels.

The object IR (:mod:`repro.ir.module`) stays the source of truth and the
view the passes mutate. This module mirrors one *function* of it into a
:class:`FlatFunction`: numpy index arrays (opcode codes, type-kind codes,
operand-kind counts, block boundaries as offset arrays), the lowered
machine-op stream as per-block count matrices, dependence structure as
CSR adjacency, and the analysis results every metric consumer reads
(block frequencies, liveness spans, reaching-store flow edges). The four
hot consumers — packed fingerprints (:mod:`repro.ir.fingerprint`),
:func:`repro.codegen.objfile.object_size`,
:func:`repro.mca.sched.estimate_throughput` and the
:class:`repro.embeddings.ir2vec.IR2VecEncoder` — run as array kernels
over these views instead of per-instruction Python walks.

Invalidation is per function, by structural fingerprint: the
:class:`FlatCore` keeps an LRU of ``fingerprint → FlatFunction`` and only
rebuilds a function whose digest changed, so a module where one of N
functions mutated re-flattens only that function's rows.

Every kernel is required to be **bit-identical** to the object-walking
path (the transition cache compares cached and uncached rollouts with
``==``/``array_equal``). The build therefore records not just *what* the
object analyses compute but the *order* the scalar loops combine floats
in: flow edges keep operand-then-reaching-store order per instruction,
call edges keep instruction order, and the consumers replicate the exact
sequence of IEEE-754 operations (see the kernel comments in the consumer
modules).
"""

from __future__ import annotations

import threading
import weakref
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..caching import LRUCache
from .fingerprint import function_fingerprint
from .instructions import (
    Alloca,
    Branch,
    Call,
    Instruction,
    Load,
    Phi,
    Switch,
)
from .module import BasicBlock, Function
from .types import (
    ArrayType,
    FloatType,
    IntType,
    LabelType,
    PointerType,
    StructType,
    Type,
    VectorType,
)
from .values import Argument, Constant, GlobalValue, Value

#: Machine-op classes instruction selection emits, in canonical code order
#: (mirrors the table in :mod:`repro.codegen.target`).
MACHINE_OPS: Tuple[str, ...] = (
    "alu", "imul", "idiv", "lea", "load", "store",
    "fpalu", "fpmul", "fpdiv", "valu", "vfp", "vload", "vstore",
    "mov", "movimm", "branch", "call", "cmov", "ret", "trap",
)
_MOP_CODE: Dict[str, int] = {name: i for i, name in enumerate(MACHINE_OPS)}
N_MACHINE_OPS = len(MACHINE_OPS)

#: Operand-kind code order. This is also the canonical *accumulation
#: order* for IR2Vec seed embeddings: both the object fallback and the
#: flat kernel add operand-kind contributions in exactly this sequence,
#: which is what makes the two paths produce bit-identical floats.
OPERAND_KINDS: Tuple[str, ...] = (
    "constant", "argument", "instruction", "global", "block", "function",
)


def operand_kind_code(value: Value) -> int:
    """0..5 code for an operand, matching :data:`OPERAND_KINDS` order.

    The isinstance chain preserves the original classifier's precedence
    (a ``Function`` is a ``GlobalValue``; a ``BasicBlock`` is a plain
    ``Value``)."""
    if isinstance(value, Function):
        return 5
    if isinstance(value, BasicBlock):
        return 4
    if isinstance(value, GlobalValue):
        return 3
    if isinstance(value, Constant):
        return 0
    if isinstance(value, Argument):
        return 1
    return 2


def operand_kind_name(value: Value) -> str:
    return OPERAND_KINDS[operand_kind_code(value)]


def type_kind_name(ty: Type) -> str:
    """The IR2Vec type-kind bucket for a type."""
    if isinstance(ty, IntType):
        return f"int{ty.bits}"
    if isinstance(ty, FloatType):
        return "float" if ty.bits == 32 else "double"
    if isinstance(ty, PointerType):
        return "pointer"
    if isinstance(ty, ArrayType):
        return "array"
    if isinstance(ty, VectorType):
        return "vector"
    if isinstance(ty, StructType):
        return "struct"
    if isinstance(ty, LabelType):
        return "label"
    return "void"


class InternTable:
    """Append-only string → small-int interning (opcode/type-kind codes).

    Process-global: codes are stable for the process lifetime, so encoder
    gather matrices built against a table stay valid until it grows (the
    encoder re-stacks on a version bump — ``len(table)`` is the version).
    """

    __slots__ = ("names", "index")

    def __init__(self, seed: Tuple[str, ...] = ()):
        self.names: List[str] = list(seed)
        self.index: Dict[str, int] = {n: i for i, n in enumerate(self.names)}

    def code(self, name: str) -> int:
        code = self.index.get(name)
        if code is None:
            code = len(self.names)
            self.names.append(name)
            self.index[name] = code
        return code

    def __len__(self) -> int:
        return len(self.names)


OPCODE_TABLE = InternTable()
TYPE_KIND_TABLE = InternTable()


# -- per-target lookup rows ---------------------------------------------------

_BYTE_ROWS: Dict[str, np.ndarray] = {}
_LAT_ROWS: Dict[str, np.ndarray] = {}
_TP_ROWS: Dict[str, np.ndarray] = {}


def byte_row(descriptor) -> np.ndarray:
    """Encoding bytes per machine-op class for one target (int64)."""
    row = _BYTE_ROWS.get(descriptor.name)
    if row is None:
        row = np.array(
            [descriptor.op_bytes[op] for op in MACHINE_OPS], dtype=np.int64
        )
        row.setflags(write=False)
        _BYTE_ROWS[descriptor.name] = row
    return row


def latency_row(model) -> np.ndarray:
    """Result latency per machine-op class for one port model (float64)."""
    row = _LAT_ROWS.get(model.name)
    if row is None:
        row = np.array(
            [float(model.latency_of(op)) for op in MACHINE_OPS]
        )
        row.setflags(write=False)
        _LAT_ROWS[model.name] = row
    return row


def throughput_row(model) -> np.ndarray:
    """Issue throughput per machine-op class (float64; 2.0 default as in
    :meth:`~repro.mca.ports.PortModel.pressure_of`)."""
    row = _TP_ROWS.get(model.name)
    if row is None:
        row = np.array(
            [float(model.throughput.get(op, 2.0)) for op in MACHINE_OPS]
        )
        row.setflags(write=False)
        _TP_ROWS[model.name] = row
    return row


class FlatFunction:
    """Struct-of-arrays view of one function, built for one target.

    Holds no reference to the object IR: every analysis the consumers
    need ran eagerly at build time, so a cached entry does not retain the
    (cloned) module it was built from.
    """

    __slots__ = (
        "name", "fingerprint", "target_name",
        "n_inst", "n_blocks",
        "block_names", "block_offsets",
        "opcodes", "type_kinds", "is_phi", "is_void",
        "kind_counts",
        "block_uops", "block_mop_counts", "fn_mop_counts",
        "inst_latency",
        "wave_insts", "wave_offsets", "wave_deps", "wave_dep_offsets",
        "rec_idx", "rec_offsets",
        "overheads", "freqs",
        "flow_dst", "flow_src", "round_offsets",
        "live_across", "max_pressure", "has_alloca",
        "call_edges", "nbytes",
    )


def _finalize_nbytes(ff: FlatFunction) -> int:
    total = 0
    for slot in FlatFunction.__slots__:
        value = getattr(ff, slot, None)
        if isinstance(value, np.ndarray):
            total += value.nbytes
    total += 64 * ff.n_blocks + 48 * len(ff.call_edges) + 256
    return total


def build_flat_function(
    fn: Function, fingerprint: str, descriptor, model
) -> FlatFunction:
    """Flatten one function definition for ``descriptor``/``model``.

    One pass over the instruction stream interns codes, counts operand
    kinds, lowers to machine ops and records dependence structure; the
    block-frequency, reaching-store and (vectorized) liveness analyses run
    once here so the per-measurement kernels are pure array code.
    """
    # Lazy imports: these modules import repro.ir themselves.
    from ..analysis.blockfreq import BlockFrequency
    from ..analysis.reaching import ReachingStores
    from ..codegen.isel import lower_instruction
    from ..mca.sched import COND_BRANCH_OVERHEAD

    blocks = fn.blocks
    n_blocks = len(blocks)
    insts: List[Instruction] = []
    index_of: Dict[int, int] = {}
    block_index: Dict[int, int] = {}
    block_offsets = np.empty(n_blocks + 1, np.int64)
    for bi, block in enumerate(blocks):
        block_index[id(block)] = bi
        block_offsets[bi] = len(insts)
        for inst in block.instructions:
            index_of[id(inst)] = len(insts)
            insts.append(inst)
    n_inst = len(insts)
    block_offsets[n_blocks] = n_inst

    opcodes = np.empty(n_inst, np.int32)
    type_kinds = np.empty(n_inst, np.int32)
    is_phi = np.zeros(n_inst, bool)
    is_void = np.zeros(n_inst, bool)
    kind_counts = np.zeros((n_inst, len(OPERAND_KINDS)))
    inst_latency = np.zeros(n_inst)
    block_mop_counts = np.zeros((n_blocks, N_MACHINE_OPS), np.int64)
    overheads = np.zeros(n_blocks)

    use_m = np.zeros((n_blocks, n_inst), bool)
    def_m = np.zeros((n_blocks, n_inst), bool)
    phi_use_m = np.zeros((n_blocks, n_inst), bool)
    succ_lists: List[List[int]] = []

    dep_lists: List[Optional[List[int]]] = [None] * n_inst
    rec_candidates: List[Tuple[int, int]] = []  # (block, source inst)
    call_edges: List[Tuple[str, float]] = []
    call_sites: List[Tuple[str, int]] = []
    has_alloca = False

    lat_vals = latency_row(model).tolist()
    opc_cache: Dict[str, int] = {}
    ty_cache: Dict[int, Tuple[Type, int, bool]] = {}

    i = 0
    for bi, block in enumerate(blocks):
        d_local: set = set()
        block_start = int(block_offsets[bi])
        for inst in block.instructions:
            opcode = inst.opcode
            code = opc_cache.get(opcode)
            if code is None:
                code = OPCODE_TABLE.code(opcode)
                opc_cache[opcode] = code
            opcodes[i] = code
            ty = inst.type
            entry = ty_cache.get(id(ty))
            if entry is None:
                entry = (ty, TYPE_KIND_TABLE.code(type_kind_name(ty)), ty.is_void)
                ty_cache[id(ty)] = entry
            type_kinds[i] = entry[1]
            void = entry[2]
            is_void[i] = void

            row = kind_counts[i]
            for op in inst.operands:
                row[operand_kind_code(op)] += 1.0

            mops = lower_instruction(inst, descriptor)
            phi = type(inst) is Phi
            if mops:
                brow = block_mop_counts[bi]
                lat = 0.0
                for m in mops:
                    mc = _MOP_CODE[m]
                    brow[mc] += 1
                    l = lat_vals[mc]
                    if l > lat:
                        lat = l
                if not phi:
                    # Phis resolve to predecessor-edge moves; the block
                    # scheduler treats their result as available at 0.0.
                    inst_latency[i] = lat

            if phi:
                is_phi[i] = True
                for value, pred in inst.incoming():
                    j = index_of.get(id(value))
                    if j is not None:
                        pbi = block_index.get(id(pred))
                        if pbi is not None:
                            phi_use_m[pbi, j] = True
                        if pred is block:
                            rec_candidates.append((bi, j))
                d_local.add(i)
            else:
                if type(inst) is Alloca:
                    has_alloca = True
                elif type(inst) is Call:
                    callee = inst.called_function
                    if callee is not None and not callee.is_intrinsic:
                        call_sites.append((callee.name, bi))
                deps: List[int] = []
                for op in inst.operands:
                    j = index_of.get(id(op))
                    if j is None:
                        continue
                    # Upward-exposed use: mirrors the scan-order `not in
                    # defs-so-far` test of the object Liveness analysis.
                    if j not in d_local:
                        use_m[bi, j] = True
                    # Same-block, already-scheduled, non-phi def: the only
                    # operands the block latency chain propagates through.
                    if block_start <= j < i and not is_phi[j]:
                        deps.append(j)
                dep_lists[i] = deps
                if not void:
                    d_local.add(i)
            i += 1

        for j in d_local:
            def_m[bi, j] = True
        term = block.terminator
        if isinstance(term, Branch) and term.is_conditional:
            overheads[bi] = COND_BRANCH_OVERHEAD
        elif isinstance(term, Switch):
            overheads[bi] = COND_BRANCH_OVERHEAD * max(1, term.num_cases)
        succ_lists.append(
            [block_index[id(s)] for s in block.successors()]
        )

    block_sizes = np.diff(block_offsets)
    block_of = np.repeat(np.arange(n_blocks, dtype=np.int64), block_sizes)

    # Loop-carried recurrence sources: same-block non-phi defs feeding a
    # phi of the block (other sources contribute 0.0 in the scalar loop).
    rec_lists: List[List[int]] = [[] for _ in range(n_blocks)]
    for bi, j in rec_candidates:
        if block_of[j] == bi and not is_phi[j]:
            rec_lists[bi].append(j)
    rec_offsets = np.zeros(n_blocks + 1, np.int64)
    for bi in range(n_blocks):
        rec_offsets[bi + 1] = rec_offsets[bi] + len(rec_lists[bi])
    rec_idx = np.array(
        [j for lst in rec_lists for j in lst], np.int64
    )

    block_uops = block_mop_counts.sum(axis=1)
    fn_mop_counts = block_mop_counts.sum(axis=0)

    # Wavefronts: position-within-block groups. All deps of an
    # instruction at position p sit at positions < p, so processing one
    # position across every block at a time finalizes finish times in
    # dependency order.
    pos = np.arange(n_inst, dtype=np.int64) - block_offsets[block_of]
    nonphi = np.nonzero(~is_phi)[0]
    if len(nonphi):
        wave_insts = nonphi[np.argsort(pos[nonphi], kind="stable")]
        wave_pos = pos[wave_insts]
        n_waves = int(wave_pos[-1]) + 1
        wave_offsets = np.searchsorted(wave_pos, np.arange(n_waves + 1))
    else:  # pragma: no cover - a definition always has a terminator
        wave_insts = nonphi
        wave_offsets = np.zeros(1, np.int64)
    wave_dep_offsets = np.empty(len(wave_insts) + 1, np.int64)
    wave_dep_offsets[0] = 0
    wave_dep_parts: List[int] = []
    for k, idx in enumerate(wave_insts.tolist()):
        deps = dep_lists[idx]
        if deps:
            wave_dep_parts.extend(deps)
            wave_dep_offsets[k + 1] = wave_dep_offsets[k] + len(deps)
        else:
            wave_dep_offsets[k + 1] = wave_dep_offsets[k]
    wave_deps = np.array(wave_dep_parts, np.int64)

    # Flow edges (IR2Vec level 1): per instruction, SSA-def operands in
    # operand order, then reaching stores for loads, in the order the
    # object analysis yields them — the scalar loop sums in exactly this
    # sequence. Edges are regrouped into "rounds" (k-th contribution of
    # every destination) so the kernel adds with plain fancy indexing —
    # destinations are unique within a round, and per-destination order
    # is preserved across rounds.
    reaching = ReachingStores(fn)
    flow_dst_l: List[int] = []
    flow_src_l: List[int] = []
    occ_l: List[int] = []
    for i, inst in enumerate(insts):
        k = 0
        for op in inst.operands:
            j = index_of.get(id(op))
            if j is not None:
                flow_dst_l.append(i)
                flow_src_l.append(j)
                occ_l.append(k)
                k += 1
        if type(inst) is Load:
            for store in reaching.stores_for(inst):
                j = index_of.get(id(store))
                if j is not None:
                    flow_dst_l.append(i)
                    flow_src_l.append(j)
                    occ_l.append(k)
                    k += 1
    if flow_dst_l:
        flow_dst = np.array(flow_dst_l, np.int64)
        flow_src = np.array(flow_src_l, np.int64)
        occ = np.array(occ_l, np.int64)
        order = np.argsort(occ, kind="stable")
        flow_dst = flow_dst[order]
        flow_src = flow_src[order]
        occ = occ[order]
        n_rounds = int(occ[-1]) + 1
        round_offsets = np.searchsorted(occ, np.arange(n_rounds + 1))
    else:
        flow_dst = np.empty(0, np.int64)
        flow_src = np.empty(0, np.int64)
        round_offsets = np.zeros(1, np.int64)

    # Vectorized liveness: the boolean-matrix fixpoint converges to the
    # same (unique, least) fixpoint as the object analysis' set version.
    live_in = np.zeros((n_blocks, n_inst), bool)
    live_out = np.zeros((n_blocks, n_inst), bool)
    changed = True
    while changed:
        changed = False
        for bi in range(n_blocks - 1, -1, -1):
            out = phi_use_m[bi].copy()
            for si in succ_lists[bi]:
                np.logical_or(out, live_in[si], out=out)
            new_in = use_m[bi] | (out & ~def_m[bi])
            if not np.array_equal(out, live_out[bi]) or not np.array_equal(
                new_in, live_in[bi]
            ):
                live_out[bi] = out
                live_in[bi] = new_in
                changed = True
    live_across = live_in.sum(axis=0, dtype=np.int64).astype(np.float64)
    max_pressure = (
        int(live_out.sum(axis=1).max()) if n_blocks else 0
    )

    freq = BlockFrequency(fn)
    freqs = np.array([freq.frequency(b) for b in blocks])
    for callee, bi in call_sites:
        call_edges.append((callee, float(freqs[bi])))

    ff = FlatFunction()
    ff.name = fn.name
    ff.fingerprint = fingerprint
    ff.target_name = descriptor.name
    ff.n_inst = n_inst
    ff.n_blocks = n_blocks
    ff.block_names = [b.name for b in blocks]
    ff.block_offsets = block_offsets
    ff.opcodes = opcodes
    ff.type_kinds = type_kinds
    ff.is_phi = is_phi
    ff.is_void = is_void
    ff.kind_counts = kind_counts
    ff.block_uops = block_uops
    ff.block_mop_counts = block_mop_counts
    ff.fn_mop_counts = fn_mop_counts
    ff.inst_latency = inst_latency
    ff.wave_insts = wave_insts
    ff.wave_offsets = wave_offsets
    ff.wave_deps = wave_deps
    ff.wave_dep_offsets = wave_dep_offsets
    ff.rec_idx = rec_idx
    ff.rec_offsets = rec_offsets
    ff.overheads = overheads
    ff.freqs = freqs
    ff.flow_dst = flow_dst
    ff.flow_src = flow_src
    ff.round_offsets = round_offsets
    ff.live_across = live_across
    ff.max_pressure = max_pressure
    ff.has_alloca = has_alloca
    ff.call_edges = call_edges
    ff.nbytes = _finalize_nbytes(ff)
    return ff


# -- observability ------------------------------------------------------------

#: Live cores, so the bytes-resident gauge reflects the process total no
#: matter which core's collect hook runs last.
_LIVE_CORES: "weakref.WeakSet[FlatCore]" = weakref.WeakSet()


class _FlatMetrics:
    """Registry mirror for one core (``repro_ir_flat_*``).

    Same lazy collect-hook pattern as :class:`repro.caching._CacheMetrics`:
    the hot path bumps plain ints; deltas fold into the shared registry
    counters only when something reads the registry.
    """

    __slots__ = ("builds", "row_rebuilds", "invalidations", "bytes_gauge",
                 "_seen", "_sync_lock")

    def __init__(self, registry):
        self.builds = registry.counter(
            "repro_ir_flat_builds_total",
            "FlatFunction builds (fingerprint misses)",
        )
        self.row_rebuilds = registry.counter(
            "repro_ir_flat_row_rebuilds_total",
            "Instruction rows flattened by builds",
        )
        self.invalidations = registry.counter(
            "repro_ir_flat_invalidations_total",
            "Builds that replaced a changed function's flat rows",
        )
        self.bytes_gauge = registry.gauge(
            "repro_ir_flat_bytes_resident",
            "Bytes held by cached FlatFunction arrays (all cores)",
        )
        self._seen = [0, 0, 0]
        self._sync_lock = threading.Lock()

    def sync(self, core: "FlatCore") -> None:
        with self._sync_lock:
            for i, (counter, value) in enumerate((
                (self.builds, core.builds),
                (self.row_rebuilds, core.row_rebuilds),
                (self.invalidations, core.invalidations),
            )):
                delta = value - self._seen[i]
                if delta > 0:
                    counter.inc(delta)
                self._seen[i] = value
        self.bytes_gauge.set(
            float(sum(c.bytes_resident() for c in _LIVE_CORES))
        )


class FlatCore:
    """Per-target cache of flat functions, invalidated by fingerprint.

    The metrics engine keeps one of these alive across env steps:
    :meth:`fingerprint` packs and digests a function (the cheap Phase A
    walk that runs every step), and :meth:`get` returns the cached
    :class:`FlatFunction` for that digest, flattening only on a miss
    (Phase B — the function actually changed, O(changed-rows) work).
    """

    def __init__(
        self,
        target: str = "x86-64",
        capacity: int = 4096,
        lock: Optional[threading.Lock] = None,
        name: Optional[str] = "flat",
    ):
        from ..codegen.target import get_target
        from ..mca.ports import get_port_model

        self.descriptor = get_target(target) if isinstance(target, str) else target
        self.model = get_port_model(self.descriptor.name)
        self.cache = LRUCache(capacity, name=name, lock=lock)
        self.builds = 0
        self.row_rebuilds = 0
        self.invalidations = 0
        self._last_digest: Dict[str, str] = {}
        _LIVE_CORES.add(self)
        if name is not None:
            from ..observability import get_registry

            registry = get_registry()
            if registry.enabled:
                metrics = _FlatMetrics(registry)
                ref = weakref.ref(self)

                def _sync_hook(ref=ref, metrics=metrics):
                    core = ref()
                    if core is not None:
                        metrics.sync(core)

                registry.register_collect_hook(_sync_hook)

    def fingerprint(self, fn: Function) -> str:
        """Pack + digest one function (identical to
        :func:`repro.ir.fingerprint.function_fingerprint`)."""
        return function_fingerprint(fn)

    def get(self, fn: Function, fingerprint: str) -> FlatFunction:
        """The flat view for ``fn`` at ``fingerprint``; builds on miss."""
        ff = self.cache.get(fingerprint)
        if ff is None:
            ff = build_flat_function(
                fn, fingerprint, self.descriptor, self.model
            )
            self.builds += 1
            self.row_rebuilds += ff.n_inst
            prev = self._last_digest.get(fn.name)
            if prev is not None and prev != fingerprint:
                self.invalidations += 1
            self.cache.put(fingerprint, ff)
        self._last_digest[fn.name] = fingerprint
        return ff

    def bytes_resident(self) -> int:
        """Total nbytes of the cached flat arrays."""
        return sum(ff.nbytes for ff in self.cache._data.values())

    def stats_dict(self) -> Dict[str, float]:
        """Cache counters plus flat-core build/invalidation totals."""
        out = self.cache.stats.as_dict()
        out.update(
            builds=float(self.builds),
            row_rebuilds=float(self.row_rebuilds),
            invalidations=float(self.invalidations),
            bytes_resident=float(self.bytes_resident()),
        )
        return out
