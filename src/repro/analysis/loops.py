"""Natural-loop detection.

Identifies loops from back edges over the dominator tree, producing
:class:`Loop` records with header / latches / blocks / exits / preheader and
nesting depth. All loop passes start from :class:`LoopInfo`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..ir.module import BasicBlock, Function
from .cfg import predecessors_map
from .dominators import DominatorTree


class Loop:
    """A natural loop: a header plus the blocks of its back-edge bodies."""

    def __init__(self, header: BasicBlock):
        self.header = header
        self.blocks: List[BasicBlock] = [header]
        self._block_ids: Set[int] = {id(header)}
        self.latches: List[BasicBlock] = []
        self.parent: Optional["Loop"] = None
        self.children: List["Loop"] = []

    def contains(self, block: BasicBlock) -> bool:
        return id(block) in self._block_ids

    def add_block(self, block: BasicBlock) -> None:
        if id(block) not in self._block_ids:
            self._block_ids.add(id(block))
            self.blocks.append(block)

    @property
    def depth(self) -> int:
        depth = 1
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    @property
    def single_latch(self) -> Optional[BasicBlock]:
        return self.latches[0] if len(self.latches) == 1 else None

    def preheader(self) -> Optional[BasicBlock]:
        """The unique out-of-loop predecessor of the header that branches
        only to the header — present after ``loop-simplify``."""
        outside = [
            p for p in self.header.predecessors() if not self.contains(p)
        ]
        if len(outside) != 1:
            return None
        pred = outside[0]
        if pred.successors() == [self.header]:
            return pred
        return None

    def exiting_blocks(self) -> List[BasicBlock]:
        """Blocks inside the loop with a successor outside it."""
        result = []
        for block in self.blocks:
            if any(not self.contains(s) for s in block.successors()):
                result.append(block)
        return result

    def exit_blocks(self) -> List[BasicBlock]:
        """Blocks outside the loop that are targets of loop exits."""
        result: List[BasicBlock] = []
        seen: Set[int] = set()
        for block in self.blocks:
            for succ in block.successors():
                if not self.contains(succ) and id(succ) not in seen:
                    seen.add(id(succ))
                    result.append(succ)
        return result

    def has_dedicated_exits(self) -> bool:
        """Every exit block's predecessors are all inside the loop."""
        return all(
            all(self.contains(p) for p in exit_block.predecessors())
            for exit_block in self.exit_blocks()
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Loop header=%{self.header.name} blocks={len(self.blocks)} depth={self.depth}>"


class LoopInfo:
    """All natural loops of a function, with a nesting forest."""

    def __init__(self, fn: Function, dom: Optional[DominatorTree] = None):
        self.fn = fn
        self.dom = dom or DominatorTree(fn)
        self.loops: List[Loop] = []
        self._loop_of_block: Dict[int, Loop] = {}
        self._compute()

    def _compute(self) -> None:
        preds = predecessors_map(self.fn)
        # Find back edges (latch -> header where header dominates latch).
        back_edges: List[Tuple[BasicBlock, BasicBlock]] = []
        for block in self.fn.blocks:
            if not self.dom.is_reachable(block):
                continue
            for succ in block.successors():
                if self.dom.dominates_block(succ, block):
                    back_edges.append((block, succ))

        loops_by_header: Dict[int, Loop] = {}
        for latch, header in back_edges:
            loop = loops_by_header.get(id(header))
            if loop is None:
                loop = Loop(header)
                loops_by_header[id(header)] = loop
            loop.latches.append(latch)
            # Walk backwards from the latch collecting the loop body.
            stack = [latch]
            while stack:
                block = stack.pop()
                if loop.contains(block):
                    continue
                loop.add_block(block)
                for pred in preds.get(id(block), []):
                    if self.dom.is_reachable(pred):
                        stack.append(pred)

        self.loops = list(loops_by_header.values())
        # Nesting: loop A is a child of B if B contains A's header and A != B
        # and B is the smallest such loop.
        for loop in self.loops:
            best: Optional[Loop] = None
            for other in self.loops:
                if other is loop or not other.contains(loop.header):
                    continue
                if best is None or len(other.blocks) < len(best.blocks):
                    best = other
            loop.parent = best
            if best is not None:
                best.children.append(loop)

        # Innermost loop per block.
        for loop in self.loops:
            for block in loop.blocks:
                current = self._loop_of_block.get(id(block))
                if current is None or len(loop.blocks) < len(current.blocks):
                    self._loop_of_block[id(block)] = loop

    # -- queries ---------------------------------------------------------------
    def loop_for(self, block: BasicBlock) -> Optional[Loop]:
        """Innermost loop containing ``block``."""
        return self._loop_of_block.get(id(block))

    def depth_of(self, block: BasicBlock) -> int:
        loop = self.loop_for(block)
        return loop.depth if loop is not None else 0

    def top_level(self) -> List[Loop]:
        return [l for l in self.loops if l.parent is None]

    def innermost_first(self) -> List[Loop]:
        """Loops ordered innermost-to-outermost (stable within a depth)."""
        return sorted(self.loops, key=lambda l: -l.depth)
