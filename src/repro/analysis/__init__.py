"""Program analyses over the miniature IR."""

from .blockfreq import BlockFrequency, DEFAULT_TRIP_COUNT
from .callgraph import CallGraph
from .cfg import (
    postorder,
    predecessors_map,
    reachable_blocks,
    remove_unreachable_blocks,
    reverse_postorder,
)
from .dominators import DominatorTree
from .liveness import Liveness
from .loops import Loop, LoopInfo
from .memdep import (
    clobbers_between,
    may_alias,
    must_alias,
    pointer_escapes,
    underlying_object,
)
from .reaching import ReachingStores

__all__ = [
    "BlockFrequency",
    "CallGraph",
    "DEFAULT_TRIP_COUNT",
    "DominatorTree",
    "Liveness",
    "Loop",
    "LoopInfo",
    "ReachingStores",
    "clobbers_between",
    "may_alias",
    "must_alias",
    "pointer_escapes",
    "postorder",
    "predecessors_map",
    "reachable_blocks",
    "remove_unreachable_blocks",
    "reverse_postorder",
    "underlying_object",
]
