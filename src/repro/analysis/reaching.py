"""Reaching-definitions over memory (stores reaching loads).

SSA registers make classic reaching-defs trivial, so this analysis tracks
*stores*: for every load, which stores may provide its value. It powers the
flow-aware component of the IR2Vec-style embeddings and a few memory passes.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir.instructions import Call, Instruction, Load, Store
from ..ir.module import BasicBlock, Function
from .cfg import predecessors_map
from .memdep import may_alias, written_pointer


class ReachingStores:
    """For each load, the set of stores that may reach it."""

    def __init__(self, fn: Function):
        self.fn = fn
        self.reaching: Dict[int, List[Store]] = {}
        self._compute()

    def _stores_in(self, block: BasicBlock) -> List[Store]:
        return [i for i in block.instructions if isinstance(i, Store)]

    def _compute(self) -> None:
        fn = self.fn
        all_stores: List[Store] = [
            i for i in fn.instructions() if isinstance(i, Store)
        ]
        store_ids = {id(s): s for s in all_stores}

        # gen/kill per block over store ids.
        gen: Dict[int, Set[int]] = {}
        kill: Dict[int, Set[int]] = {}
        for block in fn.blocks:
            g: Set[int] = set()
            k: Set[int] = set()
            for inst in block.instructions:
                if isinstance(inst, Store):
                    # This store kills earlier stores it must-alias with
                    # (approximated: same pointer value).
                    for sid, store in store_ids.items():
                        if store is not inst and store.pointer is inst.pointer:
                            k.add(sid)
                            g.discard(sid)
                    g.add(id(inst))
            gen[id(block)] = g
            kill[id(block)] = k

        in_sets: Dict[int, Set[int]] = {id(b): set() for b in fn.blocks}
        out_sets: Dict[int, Set[int]] = {id(b): set() for b in fn.blocks}
        preds = predecessors_map(fn)

        changed = True
        while changed:
            changed = False
            for block in fn.blocks:
                bid = id(block)
                in_set: Set[int] = set()
                for pred in preds.get(bid, []):
                    in_set |= out_sets[id(pred)]
                out_set = gen[bid] | (in_set - kill[bid])
                if in_set != in_sets[bid] or out_set != out_sets[bid]:
                    in_sets[bid] = in_set
                    out_sets[bid] = out_set
                    changed = True

        # Per-load resolution: walk the block applying kills.
        for block in fn.blocks:
            live: Set[int] = set(in_sets[id(block)])
            for inst in block.instructions:
                if isinstance(inst, Load):
                    self.reaching[id(inst)] = [
                        store_ids[sid]
                        for sid in live
                        if may_alias(store_ids[sid].pointer, inst.pointer)
                    ]
                elif isinstance(inst, Store):
                    for sid in list(live):
                        if store_ids[sid].pointer is inst.pointer:
                            live.discard(sid)
                    live.add(id(inst))

    def stores_for(self, load: Load) -> List[Store]:
        return self.reaching.get(id(load), [])
