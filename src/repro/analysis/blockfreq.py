"""Static block-frequency estimation.

Frequency = ``trip**loop_depth`` scaled by branch probabilities derived from
``llvm.expect`` hints (recorded by the lower-expect pass as branch-weight
metadata). The MCA-style throughput model weights per-block cycle estimates
by these frequencies.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir.instructions import Branch
from ..ir.module import BasicBlock, Function
from .cfg import predecessors_map, reverse_postorder
from .dominators import DominatorTree
from .loops import LoopInfo

#: Assumed iterations for loops of unknown trip count (matches LLVM's
#: BlockFrequencyInfo default heuristics closely enough for ranking).
DEFAULT_TRIP_COUNT = 10.0


class BlockFrequency:
    """Relative execution frequency per block (entry = 1.0)."""

    def __init__(self, fn: Function, loop_info: Optional[LoopInfo] = None):
        self.fn = fn
        self.loop_info = loop_info or LoopInfo(fn)
        self.freq: Dict[int, float] = {}
        self._compute()

    def _branch_probability(self, block: BasicBlock, succ_index: int) -> float:
        term = block.terminator
        succs = block.successors()
        if not succs:
            return 0.0
        if isinstance(term, Branch) and term.is_conditional:
            weights = term.meta.get("branch_weights")
            if isinstance(weights, (list, tuple)) and len(weights) == 2:
                total = float(weights[0] + weights[1]) or 1.0
                return float(weights[succ_index]) / total
            return 0.5
        return 1.0 / len(succs)

    def _exit_loop(self, src: BasicBlock, dst: BasicBlock):
        """The outermost loop containing ``src`` but not ``dst`` (the loop
        this edge exits), or None for a non-exit edge."""
        loop = self.loop_info.loop_for(src)
        exited = None
        while loop is not None:
            if loop.contains(dst):
                break
            exited = loop
            loop = loop.parent
        return exited

    def _compute(self) -> None:
        fn = self.fn
        order = reverse_postorder(fn)
        freq: Dict[int, float] = {id(b): 0.0 for b in fn.blocks}
        if not order:
            self.freq = freq
            return
        freq[id(order[0])] = 1.0

        # Acyclic flow in RPO with loop-aware conservation: back edges are
        # skipped, and an edge that exits a loop carries the flow that
        # *entered* the loop (split across exit edges), so code after a
        # loop runs as often as code before it — regardless of in-loop
        # branch shapes.
        exit_edge_counts: Dict[int, int] = {}
        for loop in self.loop_info.loops:
            count = 0
            for block in loop.blocks:
                for succ in block.successors():
                    if not loop.contains(succ):
                        count += 1
            exit_edge_counts[id(loop)] = max(count, 1)

        for block in order:
            f = freq[id(block)]
            block_loop = self.loop_info.loop_for(block)
            if f == 0.0 and block_loop is not None:
                f = freq[id(block)] = 1e-3  # entered only via back edges
            for i, succ in enumerate(block.successors()):
                if block_loop is not None and succ is block_loop.header:
                    continue  # back edge
                exited = self._exit_loop(block, succ)
                if exited is not None:
                    contribution = freq.get(id(exited.header), 1e-3) / (
                        exit_edge_counts[id(exited)]
                    )
                else:
                    contribution = f * self._branch_probability(block, i)
                freq[id(succ)] = freq.get(id(succ), 0.0) + contribution

        trip_of = self._trip_counts()
        for block in fn.blocks:
            loop = self.loop_info.loop_for(block)
            if loop is None:
                continue
            multiplier = 1.0
            node = loop
            while node is not None:
                multiplier *= trip_of.get(id(node), DEFAULT_TRIP_COUNT)
                node = node.parent
            freq[id(block)] = max(freq.get(id(block), 0.0), 1e-3) * multiplier
        self.freq = freq

    def _trip_counts(self) -> Dict[int, float]:
        """Constant trip counts where derivable (so unrolling/vectorizing
        visibly changes the cycle estimate); DEFAULT_TRIP_COUNT otherwise."""
        # Imported lazily: analysis must not import passes at module load.
        from ..passes.loops.iv import analyze_loop

        trips: Dict[int, float] = {}
        for loop in self.loop_info.loops:
            try:
                bounds = analyze_loop(loop)
            except Exception:  # pragma: no cover - malformed loops
                bounds = None
            if bounds is not None and bounds.trip_count is not None:
                trips[id(loop)] = float(min(bounds.trip_count, 10_000))
        return trips

    def frequency(self, block: BasicBlock) -> float:
        return self.freq.get(id(block), 0.0)
