"""Live-variable analysis (backward dataflow over SSA values).

Feeds the IR2Vec-style embedder (liveness-weighted composition) and the
codegen register-pressure heuristic.
"""

from __future__ import annotations

from typing import Dict, Set

from ..ir.instructions import Instruction, Phi
from ..ir.module import BasicBlock, Function
from .cfg import predecessors_map


class Liveness:
    """Per-block live-in / live-out sets of SSA values (ids)."""

    def __init__(self, fn: Function):
        self.fn = fn
        self.live_in: Dict[int, Set[int]] = {}
        self.live_out: Dict[int, Set[int]] = {}
        self._values: Dict[int, Instruction] = {}
        self._compute()

    def _compute(self) -> None:
        fn = self.fn
        use: Dict[int, Set[int]] = {}
        defs: Dict[int, Set[int]] = {}
        phi_uses: Dict[int, Set[int]] = {id(b): set() for b in fn.blocks}

        for block in fn.blocks:
            u: Set[int] = set()
            d: Set[int] = set()
            for inst in block.instructions:
                self._values[id(inst)] = inst
                if isinstance(inst, Phi):
                    # Phi operands are live-out of the incoming blocks.
                    for value, pred in inst.incoming():
                        if isinstance(value, Instruction):
                            phi_uses[id(pred)].add(id(value))
                    d.add(id(inst))
                    continue
                for op in inst.operands:
                    if isinstance(op, Instruction) and id(op) not in d:
                        u.add(id(op))
                if not inst.type.is_void:
                    d.add(id(inst))
            use[id(block)] = u
            defs[id(block)] = d

        live_in: Dict[int, Set[int]] = {id(b): set() for b in fn.blocks}
        live_out: Dict[int, Set[int]] = {id(b): set() for b in fn.blocks}

        changed = True
        while changed:
            changed = False
            for block in reversed(fn.blocks):
                bid = id(block)
                out: Set[int] = set(phi_uses.get(bid, ()))
                for succ in block.successors():
                    out |= live_in[id(succ)]
                new_in = use[bid] | (out - defs[bid])
                if out != live_out[bid] or new_in != live_in[bid]:
                    live_out[bid] = out
                    live_in[bid] = new_in
                    changed = True

        self.live_in = live_in
        self.live_out = live_out

    def live_across_blocks(self, inst: Instruction) -> int:
        """Number of blocks through which ``inst``'s value stays live."""
        count = 0
        key = id(inst)
        for block in self.fn.blocks:
            if key in self.live_in.get(id(block), ()):
                count += 1
        return count

    def max_pressure(self) -> int:
        """Maximum number of simultaneously live values at block boundaries."""
        if not self.fn.blocks:
            return 0
        return max(
            (len(self.live_out[id(b)]) for b in self.fn.blocks), default=0
        )
