"""CFG traversal utilities shared by analyses and passes."""

from __future__ import annotations

from typing import Dict, Iterator, List, Set

from ..ir.module import BasicBlock, Function


def reachable_blocks(fn: Function) -> Set[int]:
    """Ids of blocks reachable from the entry."""
    seen: Set[int] = set()
    stack = [fn.entry] if fn.blocks else []
    while stack:
        block = stack.pop()
        if id(block) in seen:
            continue
        seen.add(id(block))
        stack.extend(block.successors())
    return seen


def postorder(fn: Function) -> List[BasicBlock]:
    """Postorder traversal of reachable blocks from the entry."""
    order: List[BasicBlock] = []
    seen: Set[int] = set()

    def visit(block: BasicBlock) -> None:
        stack = [(block, iter(block.successors()))]
        seen.add(id(block))
        while stack:
            current, succs = stack[-1]
            advanced = False
            for succ in succs:
                if id(succ) not in seen:
                    seen.add(id(succ))
                    stack.append((succ, iter(succ.successors())))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    if fn.blocks:
        visit(fn.entry)
    return order


def reverse_postorder(fn: Function) -> List[BasicBlock]:
    """Reverse postorder — the canonical forward-dataflow iteration order."""
    return list(reversed(postorder(fn)))


def predecessors_map(fn: Function) -> Dict[int, List[BasicBlock]]:
    """Precomputed predecessor lists keyed by ``id(block)``."""
    preds: Dict[int, List[BasicBlock]] = {id(b): [] for b in fn.blocks}
    for block in fn.blocks:
        for succ in block.successors():
            lst = preds.get(id(succ))
            if lst is not None and block not in lst:
                lst.append(block)
    return preds


def remove_unreachable_blocks(fn: Function) -> bool:
    """Drop blocks not reachable from the entry; fix phis. Returns changed."""
    reachable = reachable_blocks(fn)
    dead = [b for b in fn.blocks if id(b) not in reachable]
    if not dead:
        return False
    dead_ids = {id(b) for b in dead}
    for block in fn.blocks:
        if id(block) in dead_ids:
            continue
        for phi in block.phis():
            for i in range(phi.num_incoming - 1, -1, -1):
                if id(phi.incoming_block(i)) in dead_ids:
                    phi.remove_operand(2 * i + 1)
                    phi.remove_operand(2 * i)
    from ..ir.values import UndefValue

    for block in dead:
        # Values defined in dead blocks may still be referenced from other
        # dead blocks (fine — all erased) or from phis already fixed above.
        for inst in block.instructions:
            if inst.has_uses:
                inst.replace_all_uses_with(UndefValue(inst.type))
        block.erase_from_parent()
    return True
