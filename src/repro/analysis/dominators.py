"""Dominator tree (Cooper–Harvey–Kennedy) and dominance frontiers.

Used by mem2reg/SROA (phi placement), the verifier (SSA dominance), CSE
scoping, LICM and GVN.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.instructions import Instruction, Phi
from ..ir.module import BasicBlock, Function
from ..ir.values import Argument, Constant, Value
from .cfg import postorder, predecessors_map


class DominatorTree:
    """Immediate-dominator tree over the reachable CFG of a function."""

    def __init__(self, fn: Function):
        self.fn = fn
        self.idom: Dict[int, Optional[BasicBlock]] = {}
        self._order_index: Dict[int, int] = {}
        self._children: Dict[int, List[BasicBlock]] = {}
        self._compute()

    def _compute(self) -> None:
        fn = self.fn
        if not fn.blocks:
            return
        order = postorder(fn)  # reachable blocks only
        rpo = list(reversed(order))
        index = {id(b): i for i, b in enumerate(order)}
        self._order_index = index
        preds = predecessors_map(fn)

        entry = fn.entry
        idom: Dict[int, Optional[BasicBlock]] = {id(b): None for b in rpo}
        idom[id(entry)] = entry

        def intersect(b1: BasicBlock, b2: BasicBlock) -> BasicBlock:
            while b1 is not b2:
                while index[id(b1)] < index[id(b2)]:
                    b1 = idom[id(b1)]  # type: ignore[assignment]
                while index[id(b2)] < index[id(b1)]:
                    b2 = idom[id(b2)]  # type: ignore[assignment]
            return b1

        changed = True
        while changed:
            changed = False
            for block in rpo:
                if block is entry:
                    continue
                new_idom: Optional[BasicBlock] = None
                for pred in preds.get(id(block), []):
                    if id(pred) not in index:
                        continue  # unreachable pred
                    if idom[id(pred)] is None:
                        continue
                    new_idom = (
                        pred if new_idom is None else intersect(pred, new_idom)
                    )
                if new_idom is not None and idom[id(block)] is not new_idom:
                    idom[id(block)] = new_idom
                    changed = True

        self.idom = idom
        self.idom[id(entry)] = None  # entry has no immediate dominator
        self._children = {id(b): [] for b in rpo}
        for block in rpo:
            parent = self.idom[id(block)]
            if parent is not None:
                self._children[id(parent)].append(block)

    # -- queries ----------------------------------------------------------
    def is_reachable(self, block: BasicBlock) -> bool:
        return id(block) in self.idom

    def immediate_dominator(self, block: BasicBlock) -> Optional[BasicBlock]:
        return self.idom.get(id(block))

    def children(self, block: BasicBlock) -> List[BasicBlock]:
        return self._children.get(id(block), [])

    def dominates_block(self, a: BasicBlock, b: BasicBlock) -> bool:
        """Does block ``a`` dominate block ``b`` (reflexively)?"""
        if not self.is_reachable(a) or not self.is_reachable(b):
            return False
        node: Optional[BasicBlock] = b
        while node is not None:
            if node is a:
                return True
            node = self.idom.get(id(node))
        return False

    def strictly_dominates_block(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates_block(a, b)

    def dominates(self, definition: Value, user: Instruction) -> bool:
        """Does SSA value ``definition`` dominate the use site ``user``?

        Arguments and constants dominate everything. For instruction defs,
        intra-block ordering is consulted; a use in a phi is checked against
        the end of the incoming block by callers (this method treats phi
        users as block-entry uses).
        """
        if isinstance(definition, (Argument, Constant)):
            return True
        if not isinstance(definition, Instruction):
            return True
        def_block = definition.parent
        use_block = user.parent
        assert def_block is not None and use_block is not None
        if def_block is use_block:
            if isinstance(user, Phi):
                return False
            insts = def_block.instructions
            return insts.index(definition) < insts.index(user)
        return self.dominates_block(def_block, use_block)

    def dominance_frontiers(self) -> Dict[int, Set[int]]:
        """Cytron-style dominance frontiers, keyed/valued by ``id(block)``."""
        frontiers: Dict[int, Set[int]] = {bid: set() for bid in self.idom}
        preds = predecessors_map(self.fn)
        for block in self.fn.blocks:
            if not self.is_reachable(block):
                continue
            block_preds = [p for p in preds.get(id(block), []) if self.is_reachable(p)]
            if len(block_preds) < 2:
                continue
            for pred in block_preds:
                runner: Optional[BasicBlock] = pred
                while runner is not None and runner is not self.idom[id(block)]:
                    frontiers[id(runner)].add(id(block))
                    runner = self.idom[id(runner)]
        return frontiers

    def dfs_preorder(self) -> List[BasicBlock]:
        """Preorder walk of the dominator tree (entry first)."""
        if not self.fn.blocks:
            return []
        order: List[BasicBlock] = []
        stack = [self.fn.entry]
        while stack:
            block = stack.pop()
            order.append(block)
            stack.extend(reversed(self.children(block)))
        return order
