"""Lightweight alias analysis and memory-dependence queries.

The rules are deliberately conservative but capture the cases our passes
need: distinct allocas never alias, distinct globals never alias, an alloca
whose address does not escape cannot alias anything external, GEPs with
distinct constant offsets off the same base do not alias.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..ir.instructions import (
    Alloca,
    Call,
    Cast,
    GetElementPtr,
    Instruction,
    Load,
    Phi,
    Select,
    Store,
)
from ..ir.module import Function
from ..ir.values import Argument, GlobalVariable, Value


def underlying_object(pointer: Value, max_depth: int = 12) -> Value:
    """Strip GEPs and pointer casts to find the base object."""
    current = pointer
    for _ in range(max_depth):
        if isinstance(current, GetElementPtr):
            current = current.pointer
        elif isinstance(current, Cast) and current.opcode in ("bitcast", "inttoptr"):
            current = current.value
        else:
            break
    return current


def _is_identified_object(value: Value) -> bool:
    """Objects with a known, distinct identity."""
    return isinstance(value, (Alloca, GlobalVariable))


def _constant_offset_of(pointer: Value) -> Optional[Tuple[Value, int]]:
    """Decompose ``pointer`` into (base, constant byte offset) if possible."""
    if isinstance(pointer, GetElementPtr):
        offset = pointer.constant_offset()
        if offset is None:
            return None
        inner = _constant_offset_of(pointer.pointer)
        if inner is None:
            return (pointer.pointer, offset)
        base, base_off = inner
        return (base, base_off + offset)
    return (pointer, 0)


def must_alias(a: Value, b: Value) -> bool:
    """True only when the two pointers definitely refer to the same address."""
    if a is b:
        return True
    da = _constant_offset_of(a)
    db = _constant_offset_of(b)
    if da is not None and db is not None:
        return da[0] is db[0] and da[1] == db[1]
    return False


def may_alias(a: Value, b: Value) -> bool:
    """True unless the two pointers provably never overlap."""
    if a is b:
        return True
    base_a = underlying_object(a)
    base_b = underlying_object(b)
    if _is_identified_object(base_a) and _is_identified_object(base_b):
        if base_a is not base_b:
            return False
        # Same base: compare constant offsets when both are known.
        da = _constant_offset_of(a)
        db = _constant_offset_of(b)
        if da is not None and db is not None and da[0] is db[0]:
            size_a = _access_size(a)
            size_b = _access_size(b)
            if size_a is not None and size_b is not None:
                return not (
                    da[1] + size_a <= db[1] or db[1] + size_b <= da[1]
                )
        return True
    return True


def _access_size(pointer: Value) -> Optional[int]:
    from ..ir.types import PointerType

    if isinstance(pointer.type, PointerType):
        ty = pointer.type.pointee
        try:
            return ty.size
        except (TypeError, NotImplementedError):
            return None
    return None


def written_pointer(inst: Instruction) -> Optional[Value]:
    """The pointer written by ``inst``, if it writes exactly one location."""
    if isinstance(inst, Store):
        return inst.pointer
    return None


def pointer_escapes(alloca: Alloca) -> bool:
    """Conservative escape check: the address leaves the function if it is
    used by anything but direct loads/stores/GEPs/casts (recursively)."""
    worklist: List[Value] = [alloca]
    seen = set()
    while worklist:
        pointer = worklist.pop()
        if id(pointer) in seen:
            continue
        seen.add(id(pointer))
        for use in pointer.uses:
            user = use.user
            if isinstance(user, Load):
                continue
            if isinstance(user, Store):
                if user.value is pointer:
                    return True  # the address itself is stored somewhere
                continue
            if isinstance(user, (GetElementPtr, Cast, Phi, Select)):
                worklist.append(user)  # derived pointer: keep chasing
                continue
            return True  # calls, ptrtoint, returns, comparisons, ...
    return False


def clobbers_between(
    start: Instruction, end: Instruction, pointer: Value
) -> bool:
    """May any instruction strictly between ``start`` and ``end`` (same
    block) write memory that aliases ``pointer``?"""
    block = start.parent
    assert block is not None and block is end.parent
    insts = block.instructions
    lo = insts.index(start) + 1
    hi = insts.index(end)
    for inst in insts[lo:hi]:
        if isinstance(inst, Store) and may_alias(inst.pointer, pointer):
            return True
        if isinstance(inst, Call) and inst.may_write_memory:
            base = underlying_object(pointer)
            if isinstance(base, Alloca) and not pointer_escapes(base):
                continue  # non-escaping locals are invisible to calls
            return True
    return False
