"""Call graph construction and bottom-up SCC ordering.

The inliner and the function-attribute passes walk the call graph in
post-order (callees before callers), with SCCs collapsed so mutual
recursion is handled once.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import networkx as nx

from ..ir.instructions import Call
from ..ir.module import Function, Module


class CallGraph:
    """Directed multigraph of who-calls-whom, plus address-taken facts."""

    def __init__(self, module: Module):
        self.module = module
        self.graph: "nx.DiGraph" = nx.DiGraph()
        self.call_sites: Dict[str, List[Call]] = {}
        self.address_taken: Set[str] = set()
        self._compute()

    def _compute(self) -> None:
        for fn in self.module.functions:
            self.graph.add_node(fn.name)
            self.call_sites[fn.name] = []

        for fn in self.module.functions:
            for inst in fn.instructions():
                if isinstance(inst, Call):
                    callee = inst.called_function
                    if callee is not None:
                        self.graph.add_edge(fn.name, callee.name)
                        self.call_sites[callee.name].append(inst)

        # A function whose value is used other than as a direct callee has
        # its address taken (indirect calls / stored function pointers).
        for fn in self.module.functions:
            for use in fn.uses:
                user = use.user
                if isinstance(user, Call) and use.index == 0:
                    continue
                self.address_taken.add(fn.name)
                break

    # -- queries -----------------------------------------------------------
    def callers_of(self, fn: Function) -> List[Call]:
        return list(self.call_sites.get(fn.name, []))

    def is_dead(self, fn: Function) -> bool:
        """Internal, never called, address never taken."""
        return (
            fn.is_internal
            and not self.call_sites.get(fn.name)
            and fn.name not in self.address_taken
        )

    def is_recursive(self, fn: Function) -> bool:
        return self.graph.has_edge(fn.name, fn.name) or any(
            fn.name in scc and len(scc) > 1 for scc in nx.strongly_connected_components(self.graph)
        )

    def bottom_up_order(self) -> List[Function]:
        """Defined functions, callees before callers (SCCs collapsed)."""
        condensed = nx.condensation(self.graph)
        order: List[Function] = []
        for scc_id in nx.topological_sort(condensed):
            members = condensed.nodes[scc_id]["members"]
            for name in sorted(members):
                fn = self.module.get_function(name)
                if fn is not None and not fn.is_declaration:
                    order.append(fn)
        # topological_sort of the condensation yields callers-first for
        # edges caller->callee, so reverse for bottom-up.
        return list(reversed(order))
