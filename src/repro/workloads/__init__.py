"""Synthetic benchmark workloads (SPEC/MiBench/llvm-test-suite stand-ins)."""

from .generator import ProgramGenerator, ProgramProfile, generate_program
from .suites import (
    MIBENCH_PROFILES,
    SPEC2006_PROFILES,
    SPEC2017_PROFILES,
    SUITES,
    llvm_test_suite,
    load_suite,
    mibench,
    spec2006,
    spec2017,
)

__all__ = [
    "MIBENCH_PROFILES",
    "ProgramGenerator",
    "ProgramProfile",
    "SPEC2006_PROFILES",
    "SPEC2017_PROFILES",
    "SUITES",
    "generate_program",
    "llvm_test_suite",
    "load_suite",
    "mibench",
    "spec2006",
    "spec2017",
]
