"""Deterministic synthetic-program generator.

Stands in for the paper's benchmark sources (SPEC CPU 2017/2006, MiBench,
llvm-test-suite). Each :class:`ProgramProfile` controls the *mix of
optimization opportunities* a program exposes — redundant expressions for
CSE/GVN, dead code for DCE, promotable locals and aggregates for
mem2reg/SROA, zeroing/copy loops for loop-idiom, invariant work and
invariant branches for LICM/unswitch, unit-stride arithmetic loops for the
vectorizer, short constant-trip loops for the unroller, small pure helpers
(some with dead parameters, some never called) for the IPO passes, and
constant-foldable branch webs for SCCP/jump-threading.

Programs are fully deterministic given a seed, interpreter-executable (no
undefined behaviour: every alloca is initialized before use, divisors are
guarded), and sized so episodes stay fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ir.builder import IRBuilder
from ..ir.instructions import Phi
from ..ir.module import BasicBlock, Function, Module
from ..ir.types import ArrayType, F64, FunctionType, I1, I32, I64, PointerType
from ..ir.values import ConstantFloat, ConstantInt, GlobalVariable, Value


@dataclass(frozen=True)
class ProgramProfile:
    """Knobs controlling the construct mix of one generated program."""

    name: str = "prog"
    seed: int = 0
    #: number of top-level construct segments in the root function
    segments: int = 8
    #: number of small helper callees (inliner food)
    helpers: int = 3
    #: helpers get an extra never-used parameter (deadargelim food)
    dead_args: bool = True
    #: emit an internal never-called helper (globaldce food)
    dead_helper: bool = True
    #: emit a self-recursive accumulator helper (tailcallelim food)
    recursive_helper: bool = False
    #: construct weights (relative)
    w_arith: float = 2.0
    w_branch: float = 1.5
    w_zero_loop: float = 1.0
    w_copy_loop: float = 0.6
    w_compute_loop: float = 1.5
    w_small_loop: float = 0.8
    w_invariant_loop: float = 1.0
    w_switch: float = 0.5
    w_call: float = 1.5
    w_fp: float = 0.7
    #: array length used by the loops (kept multiple of 4 for the
    #: vectorizer; bounded for interpreter speed)
    array_len: int = 32
    #: fraction of extra dead/redundant instructions in arithmetic blocks
    redundancy: float = 0.5
    #: duplicate constant globals (constmerge food)
    duplicate_globals: int = 2


class _Builder:
    """Stateful construction of one function's body along a block chain."""

    def __init__(self, generator: "ProgramGenerator", fn: Function,
                 rng: np.random.RandomState):
        self.gen = generator
        self.fn = fn
        self.rng = rng
        self.b = IRBuilder(fn.add_block("entry"))
        #: i32 values valid at the current insertion point
        self.pool: List[Value] = []
        #: f64 values valid at the current insertion point
        self.fpool: List[Value] = []
        #: (pointer, element count) int arrays usable by loops
        self.arrays: List[Tuple[Value, int]] = []

    # -- small utilities ----------------------------------------------------
    def _c(self, value: int) -> ConstantInt:
        return ConstantInt(I32, value)

    def pick(self) -> Value:
        if not self.pool or self.rng.random_sample() < 0.15:
            return self._c(int(self.rng.randint(-40, 41)))
        return self.pool[int(self.rng.randint(len(self.pool)))]

    def pick_fp(self) -> Value:
        if not self.fpool or self.rng.random_sample() < 0.25:
            return ConstantFloat(F64, float(self.rng.randint(1, 9)))
        return self.fpool[int(self.rng.randint(len(self.fpool)))]

    def fresh_block(self, hint: str) -> BasicBlock:
        return self.fn.add_block(self.fn.next_name(hint))

    def continue_in(self, block: BasicBlock) -> None:
        self.b.set_insert_point(block)

    # -- constructs ------------------------------------------------------------
    def emit_arith(self) -> None:
        """Straight-line arithmetic with deliberate redundancy/dead code."""
        rng = self.rng
        ops = ["add", "sub", "mul", "and", "or", "xor", "shl"]
        produced: List[Value] = []
        for _ in range(int(rng.randint(3, 7))):
            op = ops[int(rng.randint(len(ops)))]
            lhs, rhs = self.pick(), self.pick()
            if op == "shl":
                rhs = self._c(int(rng.randint(0, 5)))
            value = self.b.binary(op, lhs, rhs)
            produced.append(value)
            if rng.random_sample() < self.gen.profile.redundancy:
                # An exact duplicate (CSE food) ...
                dup = self.b.binary(op, lhs, rhs)
                keep = self.b.add(dup, self._c(0))
                produced.append(keep)
            if rng.random_sample() < self.gen.profile.redundancy * 0.6:
                # ... and a dead computation (DCE food).
                self.b.mul(self.pick(), self.pick())
        # Guarded division (sdiv strength-reduction / div-rem-pairs food).
        if rng.random_sample() < 0.6 and produced:
            num = produced[-1]
            den_raw = self.pick()
            den = self.b.or_(den_raw, self._c(1))  # never zero
            q = self.b.sdiv(num, den)
            r = self.b.srem(num, den)
            produced.append(self.b.add(q, r))
        self.pool.extend(produced)

    def emit_fp(self) -> None:
        """Float chain ending in an int conversion (float2int food)."""
        rng = self.rng
        a = self.b.sitofp(self.pick(), F64)
        bb = self.b.sitofp(self.pick(), F64)
        acc = self.b.fadd(a, bb)
        for _ in range(int(rng.randint(1, 3))):
            nxt = self.b.sitofp(self.pick(), F64)
            acc = self.b.fsub(acc, nxt) if rng.random_sample() < 0.5 else self.b.fadd(acc, nxt)
        self.fpool.append(acc)
        self.pool.append(self.b.fptosi(acc, I32))
        if rng.random_sample() < 0.5:
            x = self.b.fmul(self.pick_fp(), ConstantFloat(F64, 1.5))
            self.fpool.append(x)

    def emit_branch(self) -> None:
        """A diamond with small speculatable sides (select-conversion food)."""
        cond = self.b.icmp("slt", self.pick(), self.pick())
        then_b = self.fresh_block("then")
        else_b = self.fresh_block("else")
        merge = self.fresh_block("merge")
        self.b.cond_br(cond, then_b, else_b)

        self.continue_in(then_b)
        tval = self.b.add(self.pick(), self.pick())
        self.b.br(merge)
        then_end = self.b.block

        self.continue_in(else_b)
        fval = self.b.xor(self.pick(), self._c(int(self.rng.randint(1, 16))))
        self.b.br(merge)
        else_end = self.b.block

        self.continue_in(merge)
        phi = self.b.phi(I32)
        phi.add_incoming(tval, then_end)
        phi.add_incoming(fval, else_end)
        self.pool.append(phi)

    def emit_switch(self) -> None:
        """A small switch over a value (simplifycfg/sccp food)."""
        value = self.b.and_(self.pick(), self._c(3))
        cases = []
        blocks = []
        merge = self.fresh_block("swmerge")
        default = self.fresh_block("swdef")
        for i in range(2):
            blocks.append(self.fresh_block(f"case{i}"))
            cases.append((self._c(i), blocks[-1]))
        self.b.switch(value, default, cases)
        incomings = []
        for i, block in enumerate(blocks):
            self.continue_in(block)
            v = self.b.mul(self.pick(), self._c(i + 2))
            self.b.br(merge)
            incomings.append((v, self.b.block))
        self.continue_in(default)
        dv = self.b.sub(self.pick(), self._c(7))
        self.b.br(merge)
        incomings.append((dv, self.b.block))
        self.continue_in(merge)
        phi = self.b.phi(I32)
        for v, blk in incomings:
            phi.add_incoming(v, blk)
        self.pool.append(phi)

    def _make_array(self, initialize: bool) -> Tuple[Value, int]:
        """A stack array; optionally scalar-initialized (so reads are
        defined even before any zeroing loop runs)."""
        n = self.gen.profile.array_len
        arr = self.b.alloca(ArrayType(I32, n))
        if initialize:
            # Element-by-element zero of a prefix: memcpyopt food when the
            # stores are adjacent; keeps everything initialized.
            for i in range(n):
                p = self.b.gep(arr, [self._c(0), self._c(i)])
                self.b.store(self._c(0), p)
        self.arrays.append((arr, n))
        return arr, n

    def _counting_loop(
        self, trip: Value, hint: str
    ) -> Tuple[BasicBlock, Phi, Value, BasicBlock]:
        """Open a bottom-test counting loop. Returns (header, iv, iv_next,
        exit_block); caller must emit the body in the header (single-block
        loop) before :meth:`_close_loop` seals it."""
        pre = self.b.block
        header = self.fresh_block(hint)
        exit_block = self.fresh_block(hint + ".exit")
        self.b.br(header)
        self.continue_in(header)
        iv = self.b.phi(I32)
        iv_next = None  # created at close
        return header, iv, trip, exit_block

    def _close_loop(
        self,
        header: BasicBlock,
        iv: Phi,
        trip: Value,
        exit_block: BasicBlock,
        preheader: BasicBlock,
    ) -> None:
        iv_next = self.b.add(iv, self._c(1))
        cond = self.b.icmp("slt", iv_next, trip)
        self.b.cond_br(cond, header, exit_block)
        iv.add_incoming(self._c(0), preheader)
        iv.add_incoming(iv_next, header)
        self.continue_in(exit_block)

    def emit_zero_loop(self) -> None:
        """for i in 0..n: a[i] = 0   (loop-idiom memset food)."""
        arr, n = self._make_array(initialize=False)
        pre = self.b.block
        header, iv, trip, exit_block = self._counting_loop(self._c(n), "zloop")
        p = self.b.gep(arr, [self._c(0), iv])
        self.b.store(self._c(0), p)
        self._close_loop(header, iv, self._c(n), exit_block, pre)

    def emit_copy_loop(self) -> None:
        """dst[i] = src[i]  (loop-idiom memcpy food)."""
        if not self.arrays:
            self.emit_zero_loop()
        src, n = self.arrays[int(self.rng.randint(len(self.arrays)))]
        dst, _ = self._make_array(initialize=False)
        pre = self.b.block
        header, iv, _, exit_block = self._counting_loop(self._c(n), "cploop")
        sp = self.b.gep(src, [self._c(0), iv])
        value = self.b.load(sp)
        dp = self.b.gep(dst, [self._c(0), iv])
        self.b.store(value, dp)
        self._close_loop(header, iv, self._c(n), exit_block, pre)

    def emit_compute_loop(self) -> None:
        """a[i] = b[i] * k + i  (vectorizer/distribute food) followed by a
        reduction read-back so the stores stay live."""
        if not self.arrays:
            self.emit_zero_loop()
        src, n = self.arrays[int(self.rng.randint(len(self.arrays)))]
        dst, _ = self._make_array(initialize=False)
        k = self.pick()
        pre = self.b.block
        header, iv, _, exit_block = self._counting_loop(self._c(n), "vloop")
        sp = self.b.gep(src, [self._c(0), iv])
        value = self.b.load(sp)
        scaled = self.b.mul(value, k)
        total = self.b.add(scaled, iv)
        dp = self.b.gep(dst, [self._c(0), iv])
        self.b.store(total, dp)
        self._close_loop(header, iv, self._c(n), exit_block, pre)
        self._reduce_array(dst, n)

    def _reduce_array(self, arr: Value, n: int) -> None:
        """acc = sum(arr[0..n))  — makes prior stores observable."""
        pre = self.b.block
        header = self.fresh_block("red")
        exit_block = self.fresh_block("red.exit")
        self.b.br(header)
        self.continue_in(header)
        iv = self.b.phi(I32)
        acc = self.b.phi(I32)
        p = self.b.gep(arr, [self._c(0), iv])
        value = self.b.load(p)
        acc_next = self.b.add(acc, value)
        iv_next = self.b.add(iv, self._c(1))
        cond = self.b.icmp("slt", iv_next, self._c(n))
        self.b.cond_br(cond, header, exit_block)
        iv.add_incoming(self._c(0), pre)
        iv.add_incoming(iv_next, header)
        acc.add_incoming(self._c(0), pre)
        acc.add_incoming(acc_next, header)
        self.continue_in(exit_block)
        self.pool.append(acc_next)

    def emit_small_loop(self) -> None:
        """A constant-trip-4..6 accumulation loop (full-unroll food)."""
        trip = int(self.rng.randint(4, 7))
        start = self.pick()
        pre = self.b.block
        header = self.fresh_block("sloop")
        exit_block = self.fresh_block("sloop.exit")
        self.b.br(header)
        self.continue_in(header)
        iv = self.b.phi(I32)
        acc = self.b.phi(I32)
        term = self.b.mul(iv, self._c(3))
        acc_next = self.b.add(acc, term)
        iv_next = self.b.add(iv, self._c(1))
        cond = self.b.icmp("slt", iv_next, self._c(trip))
        self.b.cond_br(cond, header, exit_block)
        iv.add_incoming(self._c(0), pre)
        iv.add_incoming(iv_next, header)
        acc.add_incoming(start, pre)
        acc.add_incoming(acc_next, header)
        self.continue_in(exit_block)
        self.pool.append(acc_next)

    def emit_invariant_loop(self) -> None:
        """A while-shaped loop with hoistable work and an invariant branch
        (rotate + LICM + unswitch food)."""
        bound = self.b.and_(self.pick(), self._c(15))  # 0..15 iterations
        inv_a, inv_b = self.pick(), self.pick()
        flag = self.b.icmp("sgt", inv_a, inv_b)
        pre = self.b.block
        header = self.fresh_block("wloop")
        body = self.fresh_block("wbody")
        then_b = self.fresh_block("wthen")
        else_b = self.fresh_block("welse")
        latch = self.fresh_block("wlatch")
        exit_block = self.fresh_block("wexit")

        self.b.br(header)
        self.continue_in(header)
        iv = self.b.phi(I32)
        acc = self.b.phi(I32)
        enter = self.b.icmp("slt", iv, bound)  # top-test: rotate food
        self.b.cond_br(enter, body, exit_block)

        self.continue_in(body)
        invariant = self.b.mul(inv_a, self._c(5))  # LICM food
        hoistable = self.b.add(invariant, inv_b)
        self.b.cond_br(flag, then_b, else_b)  # unswitch food

        self.continue_in(then_b)
        tv = self.b.add(acc, hoistable)
        self.b.br(latch)
        self.continue_in(else_b)
        ev = self.b.sub(acc, iv)
        self.b.br(latch)

        self.continue_in(latch)
        acc_next = self.b.phi(I32)
        acc_next.add_incoming(tv, then_b)
        acc_next.add_incoming(ev, else_b)
        iv_next = self.b.add(iv, self._c(1))
        self.b.br(header)

        iv.add_incoming(self._c(0), pre)
        iv.add_incoming(iv_next, latch)
        acc.add_incoming(self.pick(), pre)
        acc.add_incoming(acc_next, latch)

        self.continue_in(exit_block)
        self.pool.append(acc)

    def emit_call(self) -> None:
        """Call a helper (inliner food)."""
        helper = self.gen.helpers[int(self.rng.randint(len(self.gen.helpers)))]
        args: List[Value] = []
        for i, param in enumerate(helper.ftype.params):
            value = self.pick()
            if i == 0 and helper.name == "sum_to":
                # Bound the recursion depth of the recursive helper.
                value = self.b.and_(value, self._c(31))
            args.append(value)
        result = self.b.call(helper, args)
        self.pool.append(result)

    def finish(self) -> None:
        """Combine the pool into the return value."""
        acc = self.pool[0] if self.pool else self._c(0)
        for value in self.pool[1:]:
            acc = self.b.add(acc, value)
        # Fold everything through a final mask so results stay bounded.
        out = self.b.and_(acc, self._c(0xFFFF))
        self.b.ret(out)


_CONSTRUCTS = [
    ("w_arith", "emit_arith"),
    ("w_branch", "emit_branch"),
    ("w_zero_loop", "emit_zero_loop"),
    ("w_copy_loop", "emit_copy_loop"),
    ("w_compute_loop", "emit_compute_loop"),
    ("w_small_loop", "emit_small_loop"),
    ("w_invariant_loop", "emit_invariant_loop"),
    ("w_switch", "emit_switch"),
    ("w_call", "emit_call"),
    ("w_fp", "emit_fp"),
]


class ProgramGenerator:
    """Generates one module per :class:`ProgramProfile`.

    Subclasses (e.g. the fuzzing generator in :mod:`repro.testing`) extend
    the construct mix by overriding :attr:`builder_cls` and
    :attr:`constructs` — each ``(weight_attr, method_name)`` entry is
    looked up on the profile / builder respectively, with missing weight
    attributes treated as 0.
    """

    #: builder class used for the root function body
    builder_cls: type = _Builder
    #: (profile weight attribute, builder method) construct table
    constructs: List[Tuple[str, str]] = _CONSTRUCTS

    def __init__(self, profile: ProgramProfile):
        self.profile = profile
        self.rng = np.random.RandomState(profile.seed)
        self.module = Module(profile.name)
        self.helpers: List[Function] = []

    def generate(self) -> Module:
        self._emit_globals()
        self._emit_helpers()
        self._emit_root()
        return self.module

    # -- pieces ------------------------------------------------------------
    def _emit_globals(self) -> None:
        p = self.profile
        for i in range(p.duplicate_globals):
            # Identical internal constants: constmerge food.
            self.module.add_global(
                GlobalVariable(
                    I32, f"kconst{i}", ConstantInt(I32, 12345), True, "internal"
                )
            )
        self.module.add_global(
            GlobalVariable(
                ArrayType(I32, p.array_len),
                "gtable",
                None,
                False,
                "internal",
            )
        )
        # An unused internal global: globaldce food.
        self.module.add_global(
            GlobalVariable(I32, "unused_g", ConstantInt(I32, 7), False, "internal")
        )

    def _helper_body(self, fn: Function, flavor: int) -> None:
        b = IRBuilder(fn.add_block("entry"))
        x = fn.args[0]
        y = fn.args[1] if len(fn.args) > 1 else x
        if flavor % 3 == 0:
            t = b.mul(x, ConstantInt(I32, 2))
            u = b.add(t, ConstantInt(I32, 1))
            b.ret(u)
        elif flavor % 3 == 1:
            c = b.icmp("slt", x, y)
            s = b.select(c, x, y)
            t = b.shl(s, ConstantInt(I32, 1))
            b.ret(t)
        else:
            t = b.xor(x, y)
            u = b.and_(t, ConstantInt(I32, 255))
            v = b.add(u, x)
            b.ret(v)

    def _emit_helpers(self) -> None:
        p = self.profile
        for i in range(p.helpers):
            params = [I32, I32]
            if p.dead_args:
                params.append(I32)  # never read: deadargelim food
            fn = Function(
                self.module,
                f"helper{i}",
                FunctionType(I32, params),
                linkage="internal",
                arg_names=["x", "y", "dead"][: len(params)],
            )
            self._helper_body(fn, i)
            self.helpers.append(fn)
        if p.dead_helper:
            fn = Function(
                self.module,
                "never_called",
                FunctionType(I32, [I32]),
                linkage="internal",
                arg_names=["x"],
            )
            self._helper_body(fn, 0)
        if p.recursive_helper:
            self._emit_recursive_helper()

    def _emit_recursive_helper(self) -> None:
        fn = Function(
            self.module,
            "sum_to",
            FunctionType(I32, [I32, I32]),
            linkage="internal",
            arg_names=["n", "acc"],
        )
        entry = fn.add_block("entry")
        recurse = fn.add_block("recurse")
        base = fn.add_block("base")
        b = IRBuilder(entry)
        n, acc = fn.args
        cond = b.icmp("sgt", n, ConstantInt(I32, 0))
        b.cond_br(cond, recurse, base)
        b.set_insert_point(recurse)
        n1 = b.sub(n, ConstantInt(I32, 1))
        a1 = b.add(acc, n)
        result = b.call(fn, [n1, a1], tail=True)
        b.ret(result)
        b.set_insert_point(base)
        b.ret(acc)
        self.helpers.append(fn)

    def _emit_root(self) -> None:
        p = self.profile
        fn = Function(
            self.module,
            "entry",
            FunctionType(I32, [I32]),
            linkage="external",
            arg_names=["n"],
        )
        builder = self.builder_cls(self, fn, self.rng)
        builder.pool.append(fn.args[0])
        self._emit_segments(builder)
        builder.finish()

    def _emit_segments(self, builder: "_Builder") -> None:
        p = self.profile
        table = self.constructs
        weights = np.array(
            [getattr(p, w, 0.0) for w, _ in table], dtype=float
        )
        weights = weights / weights.sum()
        for _ in range(p.segments):
            index = int(self.rng.choice(len(table), p=weights))
            getattr(builder, table[index][1])()


def generate_program(profile: ProgramProfile) -> Module:
    """Generate one deterministic module for ``profile``."""
    return ProgramGenerator(profile).generate()
