"""Named benchmark suites.

Synthetic stand-ins for the paper's evaluation corpora, with per-benchmark
profiles chosen to echo the real programs' character:

* **MiBench** — small embedded kernels (tight loops, little call depth);
* **SPEC CPU 2006** — mid-sized mixed int workloads;
* **SPEC CPU 2017** — larger, call- and branch-heavy programs (e.g.
  ``541.leela``/``520.omnetpp`` are branchy object-oriented code — modeled
  with heavy call/branch weights, which is also where the paper sees its
  biggest runtime wins);
* **llvm-test-suite** — the 130 single-source training programs.

All programs are deterministic in their suite-level seed.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Tuple

from ..ir.module import Module
from .generator import ProgramProfile, generate_program

Corpus = List[Tuple[str, Module]]


MIBENCH_PROFILES: Dict[str, ProgramProfile] = {
    name: profile
    for name, profile in [
        (
            "susan",
            ProgramProfile(
                name="susan", seed=101, segments=6, helpers=2,
                w_compute_loop=2.5, w_zero_loop=1.5, w_call=0.8, array_len=32,
            ),
        ),
        (
            "qsort",
            ProgramProfile(
                name="qsort", seed=102, segments=5, helpers=2,
                w_branch=2.5, w_call=1.5, w_compute_loop=1.0,
                recursive_helper=True,
            ),
        ),
        (
            "dijkstra",
            ProgramProfile(
                name="dijkstra", seed=103, segments=6, helpers=2,
                w_invariant_loop=2.0, w_branch=2.0, w_zero_loop=1.0,
            ),
        ),
        (
            "crc32",
            ProgramProfile(
                name="crc32", seed=104, segments=5, helpers=1,
                w_arith=3.0, w_small_loop=2.0, w_fp=0.0,
            ),
        ),
        (
            "fft",
            ProgramProfile(
                name="fft", seed=105, segments=6, helpers=2,
                w_fp=2.5, w_compute_loop=2.0, w_arith=1.5,
            ),
        ),
        (
            "stringsearch",
            ProgramProfile(
                name="stringsearch", seed=106, segments=5, helpers=2,
                w_branch=2.5, w_switch=1.5, w_copy_loop=1.2,
            ),
        ),
        (
            "bitcount",
            ProgramProfile(
                name="bitcount", seed=107, segments=5, helpers=1,
                w_arith=3.5, w_small_loop=1.5, w_fp=0.0,
            ),
        ),
        (
            "basicmath",
            ProgramProfile(
                name="basicmath", seed=108, segments=5, helpers=2,
                w_fp=2.0, w_arith=2.0,
            ),
        ),
    ]
}


SPEC2006_PROFILES: Dict[str, ProgramProfile] = {
    name: profile
    for name, profile in [
        (
            "401.bzip2",
            ProgramProfile(
                name="401.bzip2", seed=201, segments=12, helpers=4,
                w_branch=2.0, w_compute_loop=2.0, w_switch=1.0,
            ),
        ),
        (
            "429.mcf",
            ProgramProfile(
                name="429.mcf", seed=202, segments=10, helpers=3,
                w_invariant_loop=2.0, w_branch=2.0,
            ),
        ),
        (
            "445.gobmk",
            ProgramProfile(
                name="445.gobmk", seed=203, segments=14, helpers=5,
                w_call=2.5, w_branch=2.5, w_switch=1.5,
            ),
        ),
        (
            "456.hmmer",
            ProgramProfile(
                name="456.hmmer", seed=204, segments=12, helpers=3,
                w_compute_loop=2.5, w_zero_loop=1.5,
            ),
        ),
        (
            "458.sjeng",
            ProgramProfile(
                name="458.sjeng", seed=205, segments=12, helpers=4,
                w_branch=3.0, w_switch=2.0, w_call=1.5,
            ),
        ),
        (
            "462.libquantum",
            ProgramProfile(
                name="462.libquantum", seed=206, segments=10, helpers=3,
                w_compute_loop=2.5, w_arith=2.0,
            ),
        ),
        (
            "464.h264ref",
            ProgramProfile(
                name="464.h264ref", seed=207, segments=14, helpers=5,
                w_compute_loop=2.5, w_copy_loop=2.0, w_zero_loop=1.5,
            ),
        ),
        (
            "473.astar",
            ProgramProfile(
                name="473.astar", seed=208, segments=10, helpers=3,
                w_branch=2.5, w_invariant_loop=1.5,
            ),
        ),
        (
            "470.lbm",
            ProgramProfile(
                name="470.lbm", seed=209, segments=10, helpers=2,
                w_fp=3.0, w_compute_loop=2.5, w_call=0.5,
            ),
        ),
        (
            "483.xalancbmk",
            ProgramProfile(
                name="483.xalancbmk", seed=210, segments=16, helpers=6,
                w_call=3.0, w_branch=2.0, w_switch=1.5,
            ),
        ),
    ]
}


SPEC2017_PROFILES: Dict[str, ProgramProfile] = {
    name: profile
    for name, profile in [
        (
            "505.mcf_r",
            ProgramProfile(
                name="505.mcf_r", seed=301, segments=12, helpers=4,
                w_invariant_loop=2.5, w_branch=2.0,
            ),
        ),
        (
            "508.namd_r",
            ProgramProfile(
                name="508.namd_r", seed=302, segments=14, helpers=4,
                w_fp=3.0, w_compute_loop=2.5,
            ),
        ),
        (
            "511.povray_r",
            ProgramProfile(
                name="511.povray_r", seed=303, segments=14, helpers=5,
                w_fp=2.5, w_call=2.5, w_branch=2.0,
            ),
        ),
        (
            "519.lbm_r",
            ProgramProfile(
                name="519.lbm_r", seed=304, segments=12, helpers=2,
                w_fp=3.0, w_compute_loop=3.0, w_call=0.5,
            ),
        ),
        (
            "520.omnetpp_r",
            ProgramProfile(
                name="520.omnetpp_r", seed=305, segments=16, helpers=6,
                w_call=3.5, w_branch=2.5, w_switch=1.5,
            ),
        ),
        (
            "523.xalancbmk_r",
            ProgramProfile(
                name="523.xalancbmk_r", seed=306, segments=16, helpers=6,
                w_call=3.0, w_switch=2.0,
            ),
        ),
        (
            "525.x264_r",
            ProgramProfile(
                name="525.x264_r", seed=307, segments=14, helpers=5,
                w_compute_loop=3.0, w_copy_loop=2.0, w_zero_loop=1.5,
            ),
        ),
        (
            "531.deepsjeng_r",
            ProgramProfile(
                name="531.deepsjeng_r", seed=308, segments=12, helpers=4,
                w_branch=3.0, w_switch=2.0,
            ),
        ),
        (
            "541.leela_r",
            ProgramProfile(
                name="541.leela_r", seed=309, segments=16, helpers=6,
                w_call=3.5, w_branch=3.0, w_invariant_loop=1.5,
            ),
        ),
        (
            "557.xz_r",
            ProgramProfile(
                name="557.xz_r", seed=310, segments=12, helpers=4,
                w_arith=2.5, w_branch=2.0, w_copy_loop=1.5,
            ),
        ),
    ]
}


def _build(profiles: Dict[str, ProgramProfile]) -> Corpus:
    return [(name, generate_program(p)) for name, p in profiles.items()]


def mibench() -> Corpus:
    """The MiBench-like validation suite (8 programs)."""
    return _build(MIBENCH_PROFILES)


def spec2006() -> Corpus:
    """The SPEC CPU 2006-like validation suite (10 programs)."""
    return _build(SPEC2006_PROFILES)


def spec2017() -> Corpus:
    """The SPEC CPU 2017-like validation suite (10 programs)."""
    return _build(SPEC2017_PROFILES)


def llvm_test_suite(count: int = 130, seed: int = 9000) -> Corpus:
    """Training corpus: ``count`` small single-source programs (the paper
    trains on 130 files from llvm-test-suite/SingleSource)."""
    corpus: Corpus = []
    for i in range(count):
        profile = ProgramProfile(
            name=f"single-source-{i:03d}",
            seed=seed + i,
            segments=4 + (i % 5),
            helpers=1 + (i % 3),
            w_arith=1.0 + (i % 4) * 0.7,
            w_branch=0.8 + (i % 3) * 0.8,
            w_zero_loop=0.5 + (i % 2) * 1.2,
            w_copy_loop=0.4 + ((i // 2) % 2) * 0.8,
            w_compute_loop=0.8 + (i % 5) * 0.5,
            w_small_loop=0.5 + ((i // 3) % 2),
            w_invariant_loop=0.6 + ((i // 4) % 2),
            w_switch=0.3 + ((i // 5) % 2) * 0.6,
            w_call=0.8 + (i % 4) * 0.5,
            w_fp=((i // 6) % 2) * 1.2,
            recursive_helper=(i % 7 == 0),
            array_len=16 + 8 * (i % 3),
        )
        corpus.append((profile.name, generate_program(profile)))
    return corpus


SUITES = {
    "mibench": mibench,
    "spec2006": spec2006,
    "spec2017": spec2017,
    "llvm_test_suite": llvm_test_suite,
}


def load_suite(name: str) -> Corpus:
    try:
        factory = SUITES[name]
    except KeyError:
        raise KeyError(f"unknown suite {name!r}; available: {sorted(SUITES)}") from None
    return factory()
