"""Seed vocabulary for the IR2Vec-style encoder.

IR2Vec learns a seed embedding per IR *entity* (opcode, type, operand
kind) with a knowledge-graph method (TransE). Offline we substitute
deterministic pseudo-random unit vectors: what the downstream RL model
needs from the vocabulary is that distinct entities get stable,
well-separated directions — which high-dimensional random vectors provide
(near-orthogonality), and determinism makes runs reproducible.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

#: Embedding dimensionality — the paper uses 300-d program vectors.
DIMENSION = 300

OPCODES = [
    "add", "sub", "mul", "sdiv", "udiv", "srem", "urem",
    "and", "or", "xor", "shl", "lshr", "ashr",
    "fadd", "fsub", "fmul", "fdiv", "frem",
    "icmp", "fcmp", "alloca", "load", "store", "gep", "phi",
    "select", "call", "br", "switch", "ret", "unreachable",
    "trunc", "zext", "sext", "fptrunc", "fpext",
    "fptosi", "sitofp", "uitofp", "bitcast", "ptrtoint", "inttoptr",
    "extractelement", "insertelement",
]

TYPE_KINDS = [
    "void", "int1", "int8", "int16", "int32", "int64",
    "float", "double", "pointer", "array", "vector", "struct", "label",
]

OPERAND_KINDS = ["constant", "argument", "instruction", "global", "block", "function"]


def _seed_vector(entity: str, dimension: int = DIMENSION) -> np.ndarray:
    """Deterministic unit vector for an entity name."""
    digest = hashlib.sha256(entity.encode("utf-8")).digest()
    seed = int.from_bytes(digest[:8], "little") % (2**32)
    rng = np.random.RandomState(seed)
    vec = rng.standard_normal(dimension).astype(np.float64)
    return vec / np.linalg.norm(vec)


class Vocabulary:
    """Entity -> seed-vector lookup with an explicit out-of-vocabulary
    fallback (IR2Vec's OOV story is one of its selling points; ours simply
    derives a vector for any unseen entity deterministically)."""

    def __init__(self, dimension: int = DIMENSION):
        self.dimension = dimension
        self._cache: Dict[str, np.ndarray] = {}
        for name in OPCODES:
            self._cache[f"op:{name}"] = _seed_vector(f"op:{name}", dimension)
        for name in TYPE_KINDS:
            self._cache[f"ty:{name}"] = _seed_vector(f"ty:{name}", dimension)
        for name in OPERAND_KINDS:
            self._cache[f"arg:{name}"] = _seed_vector(f"arg:{name}", dimension)

    def _get(self, key: str) -> np.ndarray:
        vec = self._cache.get(key)
        if vec is None:
            vec = _seed_vector(key, self.dimension)
            self._cache[key] = vec
        return vec

    def opcode(self, name: str) -> np.ndarray:
        return self._get(f"op:{name}")

    def type_kind(self, name: str) -> np.ndarray:
        return self._get(f"ty:{name}")

    def operand_kind(self, name: str) -> np.ndarray:
        return self._get(f"arg:{name}")


_DEFAULT: Vocabulary = Vocabulary()


def default_vocabulary() -> Vocabulary:
    return _DEFAULT
