"""Flow-aware IR2Vec-style program embeddings.

Follows the IR2Vec construction: an instruction embedding combines its
opcode, type and operand-kind seed vectors with fixed weights
(``Wo=1, Wt=0.5, Wa=0.2``, the published IR2Vec values); flow awareness
mixes in the embeddings of reaching definitions (use-def chains over SSA
plus store→load reaching information); function embeddings sum their
instructions weighted by liveness span; the program embedding sums its
functions (a sum, as in IR2Vec, so magnitude tracks program size — the
signal the size reward pays for); the DQN consumes these as 300-d states.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..analysis.liveness import Liveness
from ..analysis.reaching import ReachingStores
from ..caching import LRUCache
from ..ir.fingerprint import function_fingerprint
from ..ir.flat import (
    OPCODE_TABLE,
    OPERAND_KINDS,
    TYPE_KIND_TABLE,
    FlatFunction,
    operand_kind_code,
    operand_kind_name,
    type_kind_name,
)
from ..ir.instructions import Instruction, Load
from ..ir.module import BasicBlock, Function, Module
from ..ir.types import Type
from ..ir.values import Value
from .vocabulary import DIMENSION, Vocabulary, default_vocabulary

#: IR2Vec composition weights.
W_OPCODE = 1.0
W_TYPE = 0.5
W_ARG = 0.2
#: Weight of flow (reaching-definition) context.
W_FLOW = 0.2
#: Extra weight per block a value stays live across (liveness emphasis).
W_LIVE = 0.1


def _type_kind(ty: Type) -> str:
    return type_kind_name(ty)


def _operand_kind(value: Value) -> str:
    return operand_kind_name(value)


def _weighted_reduce(rows: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """``Σ weights[i] * rows[i]`` — the one reduction both the object and
    flat embedding paths share, so a function embedding is the same bits
    no matter which path produced the (identical) inputs."""
    return np.add.reduce(weights[:, None] * rows, axis=0)


class IR2VecEncoder:
    """Produces instruction / function / program embeddings.

    ``function_cache`` (an :class:`~repro.caching.LRUCache`) memoizes
    function embeddings on the function's structural fingerprint, so a
    program embedding after a localized mutation re-encodes only the
    changed functions. Cached vectors are frozen (non-writeable) because
    they are shared between lookups.
    """

    def __init__(
        self,
        vocabulary: Optional[Vocabulary] = None,
        function_cache: Optional[LRUCache] = None,
    ):
        self.vocab = vocabulary or default_vocabulary()
        self.dimension = self.vocab.dimension
        self.function_cache = function_cache
        # Weight-premultiplied seed vectors (Wo·opcode, Wt·type, Wa·kind):
        # both the scalar and flat paths consume these products, so the
        # single table multiplication replaces one per accumulation.
        self._opcode_vecs: Dict[str, np.ndarray] = {}
        self._ty_vecs: Dict[str, np.ndarray] = {}
        self._kind_vecs = tuple(
            W_ARG * self.vocab.operand_kind(kind) for kind in OPERAND_KINDS
        )
        self._flat_mats: Optional[
            Tuple[Tuple[int, int], np.ndarray, np.ndarray, np.ndarray]
        ] = None

    # -- level 0: seed (syntactic) embeddings ------------------------------
    def seed_instruction(self, inst: Instruction) -> np.ndarray:
        """Seed = Wo·opcode + Wt·type + Wa·(operand-kind counts).

        Accumulates in place into one preallocated vector, with the vocab
        lookups hoisted into per-encoder tables. Operand contributions add
        in canonical :data:`~repro.ir.flat.OPERAND_KINDS` order (counted,
        not per-operand), the same order the flat gather kernel uses — the
        two paths therefore run the identical float-op sequence.
        """
        opv = self._opcode_vecs.get(inst.opcode)
        if opv is None:
            opv = W_OPCODE * self.vocab.opcode(inst.opcode)
            opv.setflags(write=False)
            self._opcode_vecs[inst.opcode] = opv
        vec = opv.copy()
        kind = _type_kind(inst.type)
        tyv = self._ty_vecs.get(kind)
        if tyv is None:
            tyv = W_TYPE * self.vocab.type_kind(kind)
            tyv.setflags(write=False)
            self._ty_vecs[kind] = tyv
        vec += tyv
        counts = [0.0] * len(OPERAND_KINDS)
        for op in inst.operands:
            counts[operand_kind_code(op)] += 1.0
        for k, kv in enumerate(self._kind_vecs):
            vec += counts[k] * kv
        return vec

    # -- level 1: flow-aware instruction embeddings --------------------------
    def function_instruction_embeddings(
        self, fn: Function
    ) -> Dict[int, np.ndarray]:
        seeds: Dict[int, np.ndarray] = {}
        for inst in fn.instructions():
            seeds[id(inst)] = self.seed_instruction(inst)

        reaching = ReachingStores(fn)
        flowed: Dict[int, np.ndarray] = {}
        for inst in fn.instructions():
            vec = seeds[id(inst)].copy()
            # Use-def flow: embeddings of SSA defs this instruction reads.
            for op in inst.operands:
                if isinstance(op, Instruction) and id(op) in seeds:
                    vec += W_FLOW * seeds[id(op)]
            # Memory flow: stores that may reach a load.
            if isinstance(inst, Load):
                for store in reaching.stores_for(inst):
                    if id(store) in seeds:
                        vec += W_FLOW * seeds[id(store)]
            flowed[id(inst)] = vec
        return flowed

    # -- level 2: function and program embeddings -----------------------------
    def function_embedding(
        self,
        fn: Function,
        fingerprint: Optional[str] = None,
        flat=None,
    ) -> np.ndarray:
        """Embedding of one function.

        ``fingerprint`` reuses a digest computed earlier this step (the
        cache key); ``flat`` (a :class:`~repro.ir.flat.FlatCore`) encodes
        through the gather/matmul kernel instead of the object walk.
        """
        if fn.is_declaration:
            return np.zeros(self.dimension)
        if self.function_cache is None and flat is None:
            return self._compute_function_embedding(fn)
        if fingerprint is None:
            fingerprint = function_fingerprint(fn)
        if self.function_cache is not None:
            cached = self.function_cache.get(fingerprint)
            if cached is None:
                if flat is not None:
                    cached = self.flat_function_embedding(
                        flat.get(fn, fingerprint)
                    )
                else:
                    cached = self._compute_function_embedding(fn)
                cached.setflags(write=False)
                self.function_cache.put(fingerprint, cached)
            return cached
        return self.flat_function_embedding(flat.get(fn, fingerprint))

    def _compute_function_embedding(self, fn: Function) -> np.ndarray:
        flowed = self.function_instruction_embeddings(fn)
        liveness = Liveness(fn)
        insts = [inst for block in fn.blocks for inst in block.instructions]
        if not insts:
            return np.zeros(self.dimension)
        rows = np.stack([flowed[id(inst)] for inst in insts])
        weights = np.empty(len(insts))
        for i, inst in enumerate(insts):
            weight = 1.0
            if not inst.type.is_void:
                weight += W_LIVE * liveness.live_across_blocks(inst)
            weights[i] = weight
        return _weighted_reduce(rows, weights)

    # -- flat path ---------------------------------------------------------
    def _flat_matrices(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vocab rows stacked for gathering by intern code; re-stacked when
        the (append-only) intern tables grow."""
        version = (len(OPCODE_TABLE), len(TYPE_KIND_TABLE))
        mats = self._flat_mats
        if mats is None or mats[0] != version:
            opm = W_OPCODE * np.stack(
                [self.vocab.opcode(name) for name in OPCODE_TABLE.names]
            ) if len(OPCODE_TABLE) else np.zeros((0, self.dimension))
            tym = W_TYPE * np.stack(
                [self.vocab.type_kind(name) for name in TYPE_KIND_TABLE.names]
            ) if len(TYPE_KIND_TABLE) else np.zeros((0, self.dimension))
            kindm = np.stack(self._kind_vecs)
            mats = (version, opm, tym, kindm)
            self._flat_mats = mats
        return mats[1], mats[2], mats[3]

    def flat_function_embedding(self, ff: FlatFunction) -> np.ndarray:
        """The object embedding as array kernels over a flat view.

        Seeds are one gather + scaled adds in canonical operand-kind
        order; the flow pass adds ``W_FLOW * seeds[src]`` to each
        destination round by round (destinations are unique within a
        round, and a destination's contributions arrive in its original
        operand order — the same float-op sequence as the scalar loop);
        the liveness-weighted reduction is the shared
        :func:`_weighted_reduce`. Bit-identical to
        :meth:`_compute_function_embedding` by construction.
        """
        opm, tym, kindm = self._flat_matrices()
        seeds = opm[ff.opcodes]  # the gather materializes the accumulator
        seeds += tym[ff.type_kinds]
        for k in range(kindm.shape[0]):
            seeds += ff.kind_counts[:, k, None] * kindm[k]

        flowed = seeds.copy()
        offs = ff.round_offsets
        for r in range(len(offs) - 1):
            s, e = offs[r], offs[r + 1]
            flowed[ff.flow_dst[s:e]] += W_FLOW * seeds[ff.flow_src[s:e]]

        weights = 1.0 + W_LIVE * ff.live_across
        weights[ff.is_void] = 1.0
        return _weighted_reduce(flowed, weights)

    def program_embedding(
        self,
        module: Module,
        fingerprints: Optional[Mapping[str, str]] = None,
        flat=None,
    ) -> np.ndarray:
        """The RL state vector: 300-d, float32.

        As in IR2Vec, the program embedding is the *sum* of function
        embeddings — magnitude therefore scales with program size, which
        is a first-class feature for the size-oriented agent (a mean would
        erase exactly the signal the reward pays for). A constant scale
        keeps values in a comfortable range for the Q-network.
        """
        total = np.zeros(self.dimension)
        for fn in module.functions:
            if not fn.is_declaration:
                fp = (
                    fingerprints.get(fn.name)
                    if fingerprints is not None
                    else None
                )
                total += self.function_embedding(fn, fingerprint=fp, flat=flat)
        return (total / 100.0).astype(np.float32)


_DEFAULT_ENCODER = IR2VecEncoder()


def program_embedding(module: Module) -> np.ndarray:
    """Encode a module with the default vocabulary."""
    return _DEFAULT_ENCODER.program_embedding(module)


def function_embedding(fn: Function) -> np.ndarray:
    return _DEFAULT_ENCODER.function_embedding(fn)
