"""Flow-aware IR2Vec-style program embeddings.

Follows the IR2Vec construction: an instruction embedding combines its
opcode, type and operand-kind seed vectors with fixed weights
(``Wo=1, Wt=0.5, Wa=0.2``, the published IR2Vec values); flow awareness
mixes in the embeddings of reaching definitions (use-def chains over SSA
plus store→load reaching information); function embeddings sum their
instructions weighted by liveness span; the program embedding sums its
functions (a sum, as in IR2Vec, so magnitude tracks program size — the
signal the size reward pays for); the DQN consumes these as 300-d states.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..analysis.liveness import Liveness
from ..analysis.reaching import ReachingStores
from ..caching import LRUCache
from ..ir.fingerprint import function_fingerprint
from ..ir.instructions import Instruction, Load
from ..ir.module import BasicBlock, Function, Module
from ..ir.types import (
    ArrayType,
    FloatType,
    IntType,
    LabelType,
    PointerType,
    StructType,
    Type,
    VectorType,
)
from ..ir.values import Argument, Constant, GlobalValue, Value
from .vocabulary import DIMENSION, Vocabulary, default_vocabulary

#: IR2Vec composition weights.
W_OPCODE = 1.0
W_TYPE = 0.5
W_ARG = 0.2
#: Weight of flow (reaching-definition) context.
W_FLOW = 0.2
#: Extra weight per block a value stays live across (liveness emphasis).
W_LIVE = 0.1


def _type_kind(ty: Type) -> str:
    if isinstance(ty, IntType):
        return f"int{ty.bits}"
    if isinstance(ty, FloatType):
        return "float" if ty.bits == 32 else "double"
    if isinstance(ty, PointerType):
        return "pointer"
    if isinstance(ty, ArrayType):
        return "array"
    if isinstance(ty, VectorType):
        return "vector"
    if isinstance(ty, StructType):
        return "struct"
    if isinstance(ty, LabelType):
        return "label"
    return "void"


def _operand_kind(value: Value) -> str:
    from ..ir.module import BasicBlock as BB, Function as Fn

    if isinstance(value, Fn):
        return "function"
    if isinstance(value, BB):
        return "block"
    if isinstance(value, GlobalValue):
        return "global"
    if isinstance(value, Constant):
        return "constant"
    if isinstance(value, Argument):
        return "argument"
    return "instruction"


class IR2VecEncoder:
    """Produces instruction / function / program embeddings.

    ``function_cache`` (an :class:`~repro.caching.LRUCache`) memoizes
    function embeddings on the function's structural fingerprint, so a
    program embedding after a localized mutation re-encodes only the
    changed functions. Cached vectors are frozen (non-writeable) because
    they are shared between lookups.
    """

    def __init__(
        self,
        vocabulary: Optional[Vocabulary] = None,
        function_cache: Optional[LRUCache] = None,
    ):
        self.vocab = vocabulary or default_vocabulary()
        self.dimension = self.vocab.dimension
        self.function_cache = function_cache

    # -- level 0: seed (syntactic) embeddings ------------------------------
    def seed_instruction(self, inst: Instruction) -> np.ndarray:
        vec = W_OPCODE * self.vocab.opcode(inst.opcode)
        vec = vec + W_TYPE * self.vocab.type_kind(_type_kind(inst.type))
        for op in inst.operands:
            vec = vec + W_ARG * self.vocab.operand_kind(_operand_kind(op))
        return vec

    # -- level 1: flow-aware instruction embeddings --------------------------
    def function_instruction_embeddings(
        self, fn: Function
    ) -> Dict[int, np.ndarray]:
        seeds: Dict[int, np.ndarray] = {}
        for inst in fn.instructions():
            seeds[id(inst)] = self.seed_instruction(inst)

        reaching = ReachingStores(fn)
        flowed: Dict[int, np.ndarray] = {}
        for inst in fn.instructions():
            vec = seeds[id(inst)].copy()
            # Use-def flow: embeddings of SSA defs this instruction reads.
            for op in inst.operands:
                if isinstance(op, Instruction) and id(op) in seeds:
                    vec += W_FLOW * seeds[id(op)]
            # Memory flow: stores that may reach a load.
            if isinstance(inst, Load):
                for store in reaching.stores_for(inst):
                    if id(store) in seeds:
                        vec += W_FLOW * seeds[id(store)]
            flowed[id(inst)] = vec
        return flowed

    # -- level 2: function and program embeddings -----------------------------
    def function_embedding(self, fn: Function) -> np.ndarray:
        if fn.is_declaration:
            return np.zeros(self.dimension)
        if self.function_cache is not None:
            key = function_fingerprint(fn)
            cached = self.function_cache.get(key)
            if cached is None:
                cached = self._compute_function_embedding(fn)
                cached.setflags(write=False)
                self.function_cache.put(key, cached)
            return cached
        return self._compute_function_embedding(fn)

    def _compute_function_embedding(self, fn: Function) -> np.ndarray:
        flowed = self.function_instruction_embeddings(fn)
        liveness = Liveness(fn)
        total = np.zeros(self.dimension)
        for inst in fn.instructions():
            weight = 1.0
            if not inst.type.is_void:
                weight += W_LIVE * liveness.live_across_blocks(inst)
            total += weight * flowed[id(inst)]
        return total

    def program_embedding(self, module: Module) -> np.ndarray:
        """The RL state vector: 300-d, float32.

        As in IR2Vec, the program embedding is the *sum* of function
        embeddings — magnitude therefore scales with program size, which
        is a first-class feature for the size-oriented agent (a mean would
        erase exactly the signal the reward pays for). A constant scale
        keeps values in a comfortable range for the Q-network.
        """
        total = np.zeros(self.dimension)
        for fn in module.functions:
            if not fn.is_declaration:
                total += self.function_embedding(fn)
        return (total / 100.0).astype(np.float32)


_DEFAULT_ENCODER = IR2VecEncoder()


def program_embedding(module: Module) -> np.ndarray:
    """Encode a module with the default vocabulary."""
    return _DEFAULT_ENCODER.program_embedding(module)


def function_embedding(fn: Function) -> np.ndarray:
    return _DEFAULT_ENCODER.function_embedding(fn)
