"""IR2Vec-style program embeddings (the RL state representation)."""

from .ir2vec import (
    IR2VecEncoder,
    W_ARG,
    W_FLOW,
    W_LIVE,
    W_OPCODE,
    W_TYPE,
    function_embedding,
    program_embedding,
)
from .vocabulary import DIMENSION, Vocabulary, default_vocabulary

__all__ = [
    "DIMENSION",
    "IR2VecEncoder",
    "Vocabulary",
    "W_ARG",
    "W_FLOW",
    "W_LIVE",
    "W_OPCODE",
    "W_TYPE",
    "default_vocabulary",
    "function_embedding",
    "program_embedding",
]
