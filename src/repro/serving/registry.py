"""Versioned model registry for the optimization service.

A :class:`ModelRegistry` holds named :class:`RegisteredModel` versions —
a :class:`~repro.rl.network.QNetwork` plus the metadata the serving layer
needs to drive it correctly (action-space name, state dimension, training
provenance) — and designates exactly one *active* version at a time.

Activation is an atomic swap under a lock: requests admitted before the
swap keep the model they were pinned to, requests admitted after see the
new version, and nothing in flight is dropped (the scheduler groups its
batched forwards by pinned model, so both generations can coexist within
one batch tick during a hot reload).

Checkpoints written by :meth:`repro.core.agent_api.PosetRL.save` embed
their own metadata (see :meth:`QNetwork.load_metadata`), so
:meth:`ModelRegistry.register_checkpoint` can configure a serving model
from the ``.npz`` file alone.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from ..core.environment import ActionSpace, DEFAULT_EPISODE_LENGTH, make_action_space
from ..rl.network import QNetwork


@dataclass
class RegisteredModel:
    """One immutable, servable model version."""

    version: str
    network: QNetwork
    action_space_kind: str
    action_space: ActionSpace
    episode_length: int = DEFAULT_EPISODE_LENGTH
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def state_dim(self) -> int:
        return self.network.state_dim

    @property
    def num_actions(self) -> int:
        return self.network.num_actions

    def act(self, states: np.ndarray) -> np.ndarray:
        """Greedy actions for a ``(n, state_dim)`` batch — one forward."""
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        return self.network.predict(states).argmax(axis=1)

    def describe(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "action_space": self.action_space_kind,
            "state_dim": self.state_dim,
            "num_actions": self.num_actions,
            "episode_length": self.episode_length,
            **{f"meta.{k}": v for k, v in sorted(self.metadata.items())},
        }


class ModelRegistry:
    """Thread-safe map of model versions with one active serving model."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._models: Dict[str, RegisteredModel] = {}
        self._active: Optional[RegisteredModel] = None
        self._counter = itertools.count(1)
        self._pinned: set = set()

    # -- registration -------------------------------------------------------
    def register(
        self,
        network: QNetwork,
        *,
        action_space: str = "odg",
        version: Optional[str] = None,
        episode_length: int = DEFAULT_EPISODE_LENGTH,
        metadata: Optional[Dict[str, Any]] = None,
        activate: Optional[bool] = None,
    ) -> str:
        """Add a model version; returns its version id.

        ``activate=None`` (the default) activates the model only when no
        version is active yet — registering a candidate next to a serving
        model is a no-op for traffic until :meth:`activate` is called.
        """
        space = make_action_space(action_space)
        if len(space) != network.num_actions:
            raise ValueError(
                f"network has {network.num_actions} actions but action "
                f"space {action_space!r} has {len(space)}"
            )
        with self._lock:
            if version is None:
                version = f"v{next(self._counter)}"
            if version in self._models:
                raise ValueError(f"model version {version!r} already registered")
            model = RegisteredModel(
                version=version,
                network=network,
                action_space_kind=action_space,
                action_space=space,
                episode_length=episode_length,
                metadata=dict(metadata or {}),
            )
            self._models[version] = model
            if activate or (activate is None and self._active is None):
                self._active = model
            return version

    def register_checkpoint(
        self,
        path: str,
        *,
        action_space: Optional[str] = None,
        version: Optional[str] = None,
        episode_length: Optional[int] = None,
        activate: Optional[bool] = None,
    ) -> str:
        """Load an ``.npz`` checkpoint and register it.

        Action space and episode length default to the metadata embedded
        by :meth:`PosetRL.save`; explicit arguments override it. Legacy
        checkpoints without metadata require an explicit ``action_space``
        (or accept the ``"odg"`` default when their action count matches).
        """
        network = QNetwork.load(path)
        metadata = QNetwork.load_metadata(path)
        metadata.setdefault("checkpoint", path)
        if action_space is None:
            action_space = str(metadata.get("action_space", "odg"))
        if episode_length is None:
            episode_length = int(
                metadata.get("episode_length", DEFAULT_EPISODE_LENGTH)
            )
        return self.register(
            network,
            action_space=action_space,
            version=version,
            episode_length=episode_length,
            metadata=metadata,
            activate=activate,
        )

    # -- activation / lookup ------------------------------------------------
    def activate(self, version: str) -> RegisteredModel:
        """Atomically make ``version`` the serving model (hot reload)."""
        with self._lock:
            model = self._models.get(version)
            if model is None:
                raise KeyError(f"unknown model version {version!r}")
            self._active = model
            return model

    @property
    def active(self) -> RegisteredModel:
        with self._lock:
            if self._active is None:
                raise LookupError("model registry has no active model")
            return self._active

    @property
    def has_active(self) -> bool:
        with self._lock:
            return self._active is not None

    def get(self, version: str) -> RegisteredModel:
        with self._lock:
            model = self._models.get(version)
        if model is None:
            raise KeyError(f"unknown model version {version!r}")
        return model

    def versions(self) -> List[str]:
        with self._lock:
            return list(self._models)

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    # -- retention ----------------------------------------------------------
    def pin(self, version: str) -> None:
        """Protect ``version`` from :meth:`prune` (e.g. a base checkpoint)."""
        with self._lock:
            if version not in self._models:
                raise KeyError(f"unknown model version {version!r}")
            self._pinned.add(version)

    def unpin(self, version: str) -> None:
        with self._lock:
            self._pinned.discard(version)

    def pinned(self) -> List[str]:
        with self._lock:
            return sorted(self._pinned)

    def prune(self, keep_last: int = 2, *, keep: Iterable[str] = ()) -> List[str]:
        """Drop old versions, returning the ones removed.

        Retained unconditionally: pinned versions, the active (incumbent)
        version, anything named in ``keep`` (e.g. the rollback target),
        and the ``keep_last`` most recently registered versions. A
        long-running trainer that registers a candidate per cycle calls
        this to keep the registry bounded.
        """
        if keep_last < 0:
            raise ValueError("keep_last must be >= 0")
        with self._lock:
            order = list(self._models)  # insertion order == registration order
            protected = set(self._pinned)
            protected.update(keep)
            if self._active is not None:
                protected.add(self._active.version)
            if keep_last:
                protected.update(order[-keep_last:])
            removed = [v for v in order if v not in protected]
            for version in removed:
                del self._models[version]
            return removed
