"""Horizontally sharded serving gateway: one front door, N shard workers.

A single :class:`~repro.serving.service.OptimizationService` is bounded
by one Python process — one scheduler thread runs every pass pipeline and
measurement under the GIL, no matter how many clients submit.
:class:`ShardedGateway` removes that ceiling the way AutoPhase scales its
phase-ordering evaluation: N worker *processes*, each running a full
``OptimizationService``, behind a socketless front door that owns

* **admission control** — a bounded in-flight window. When
  ``max_pending`` requests are outstanding, new arrivals are *shed*
  immediately (a 429-style ``rejected`` result whose reason starts with
  ``shed:``) instead of queueing without bound, so overload degrades
  into bounded latency plus an explicit shed rate.
* **per-tenant rate limits** — a token bucket per tenant
  (``tenant_rate`` requests/second, ``tenant_burst`` capacity); a tenant
  exceeding its budget is shed without touching any shared queue, so one
  noisy tenant cannot move another tenant's p99.
* **fingerprint-affine routing** — ``shard =
  int(module_fingerprint, 16) % n_shards``. The structural fingerprint
  is deterministic across processes (no salted ``hash()``), so the same
  module always lands on the same shard and that shard's
  ``ResultCache``, environment pool and ``FlatCore`` LRU stay hot for
  its slice of the keyspace: sharding does not cold-split the caches.
  An exact-text routing memo in front of the fingerprint means repeat
  requests (the common serving case) are routed without re-parsing.

Workers are subprocesses reached over :mod:`multiprocessing` pipes —
IR crosses as text, results come back as pickled
:class:`~repro.serving.service.OptimizeResult`\\ s, the same crossing the
``vector_env`` subprocess workers proved out. The gateway heartbeats
every worker; a crashed or wedged worker is **restarted** and its
in-flight requests are **failed over** to a sibling shard (a request
that survives two worker losses resolves as ``rejected`` rather than
hanging). :meth:`hot_reload` broadcasts a new model version to every
shard atomically-per-worker, and :meth:`stop` drains: each worker stops
accepting, flushes its in-flight batches and reports final counters.

Observability lands in the process-wide registry as ``repro_gateway_*``
(in-flight depth, per-shard occupancy, shed/rejection counters, routing
memo hit ratio, worker restarts, end-to-end latency). Per-shard engine
metrics live in the worker processes; give each worker a
``shard_metrics_out`` path and merge the snapshots with
``python -m repro.tools.stats shard0.json shard1.json ...``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from ..core.environment import DEFAULT_EPISODE_LENGTH
from ..ir.fingerprint import module_fingerprint
from ..ir.parser import parse_module
from ..observability import get_registry
from ..rl.network import QNetwork
from .cache import text_key
from .registry import ModelRegistry
from .service import OptimizationService, OptimizeRequest, OptimizeResult

__all__ = [
    "GatewayStats",
    "ShardSpec",
    "ShardedGateway",
    "TokenBucket",
    "shard_for_fingerprint",
    "route_text",
]


def shard_for_fingerprint(fingerprint: str, n_shards: int) -> int:
    """Deterministic shard for a module fingerprint (hex digest).

    Stable across processes and interpreter runs: the fingerprint is a
    content hash, and no salted ``hash()`` is involved.
    """
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    return int(fingerprint[:16], 16) % n_shards


def route_text(ir_text: str, n_shards: int) -> int:
    """Parse + fingerprint + :func:`shard_for_fingerprint` (test helper)."""
    return shard_for_fingerprint(
        module_fingerprint(parse_module(ir_text)), n_shards
    )


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second up to ``burst``."""

    __slots__ = ("rate", "burst", "tokens", "last")

    def __init__(self, rate: float, burst: float):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last = time.monotonic()

    def try_acquire(self, now: Optional[float] = None) -> bool:
        if now is None:
            now = time.monotonic()
        self.tokens = min(
            self.burst, self.tokens + (now - self.last) * self.rate
        )
        self.last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass
class ShardSpec:
    """Picklable recipe for one shard worker's ``OptimizationService``.

    Exactly one of ``checkpoint`` / ``network`` provides the model: a
    ``.npz`` path loaded worker-side, or a (small, numpy-only, hence
    picklable) :class:`QNetwork` shipped by value.
    """

    checkpoint: Optional[str] = None
    network: Optional[QNetwork] = None
    action_space: str = "odg"
    episode_length: int = DEFAULT_EPISODE_LENGTH
    model_version: str = "v1"
    model_metadata: Dict[str, Any] = field(default_factory=dict)
    target: str = "x86-64"
    max_batch: int = 8
    batch_window_s: float = 0.005
    request_timeout_s: float = 60.0
    max_instructions: int = 100_000
    result_cache_size: Optional[int] = 1024
    include_ir: bool = True
    verify: bool = True
    semantic_check: bool = False
    #: Per-shard observability: when set, the worker enables a fresh
    #: registry and writes a snapshot here on drain/close (format as in
    #: ``--metrics-out``; merge shards with ``repro.tools.stats``).
    metrics_out: Optional[str] = None
    #: Experience journal directory for closed-loop learning: when set,
    #: the worker logs verified rollouts there via an
    #: :class:`~repro.learning.tap.ExperienceTap` (the gateway gives each
    #: shard its own subdirectory — see :meth:`ShardedGateway._spec_for`).
    journal_dir: Optional[str] = None
    journal_segment_size: int = 64


def _build_worker_service(spec: ShardSpec) -> OptimizationService:
    registry = ModelRegistry()
    if spec.checkpoint is not None:
        registry.register_checkpoint(
            spec.checkpoint,
            action_space=spec.action_space,
            version=spec.model_version,
        )
    elif spec.network is not None:
        registry.register(
            spec.network,
            action_space=spec.action_space,
            version=spec.model_version,
            episode_length=spec.episode_length,
            metadata=dict(spec.model_metadata),
        )
    else:
        raise ValueError("ShardSpec needs a checkpoint or a network")
    experience_tap = None
    if spec.journal_dir is not None:
        from ..learning import ExperienceJournal, ExperienceTap

        experience_tap = ExperienceTap(
            ExperienceJournal(
                spec.journal_dir, segment_size=spec.journal_segment_size
            )
        )
    return OptimizationService(
        registry,
        target=spec.target,
        max_batch=spec.max_batch,
        batch_window_s=spec.batch_window_s,
        request_timeout_s=spec.request_timeout_s,
        max_instructions=spec.max_instructions,
        result_cache_size=spec.result_cache_size,
        include_ir=spec.include_ir,
        verify=spec.verify,
        semantic_check=spec.semantic_check,
        experience_tap=experience_tap,
    )


def _register_in_worker(registry: ModelRegistry, payload: Dict[str, Any]) -> str:
    if payload.get("activate_only"):
        # Rollback path: re-activate a version the worker already holds
        # (no weights cross the pipe).
        return registry.activate(payload["version"]).version
    if payload.get("checkpoint") is not None:
        return registry.register_checkpoint(
            payload["checkpoint"],
            action_space=payload.get("action_space"),
            version=payload.get("version"),
            activate=bool(payload.get("activate", True)),
        )
    return registry.register(
        payload["network"],
        action_space=payload.get("action_space", "odg"),
        version=payload.get("version"),
        episode_length=payload.get(
            "episode_length", DEFAULT_EPISODE_LENGTH
        ),
        metadata=payload.get("metadata"),
        activate=bool(payload.get("activate", True)),
    )


def _shard_worker_main(conn, spec: ShardSpec) -> None:
    """Worker-process loop: a full ``OptimizationService`` behind a pipe.

    Parent → worker messages (tuples):

    * ``("submit", req_id, name, ir_text)`` — enqueue; the result comes
      back asynchronously as ``("result", req_id, OptimizeResult)``.
    * ``("ping", seq)`` → ``("pong", seq, counters)`` liveness probe.
    * ``("register", payload)`` → ``("registered", version_or_None,
      error_or_None)`` — hot-reload broadcast (new model version).
    * ``("drain",)`` → flush in-flight, ``("drained", final)`` then exit.
    * ``("close",)`` — exit without flushing.
    """
    # Fresh observability in the child: the forked registry/tracer (and
    # their locks) belong to the parent's threads.
    from .. import observability as obs

    if spec.metrics_out:
        obs.enable()
    else:
        obs.disable()

    service = _build_worker_service(spec)
    service.start()
    send_lock = threading.Lock()

    def send(msg: Tuple) -> None:
        with send_lock:
            try:
                conn.send(msg)
            except (BrokenPipeError, OSError):  # parent died
                pass

    def completion(req_id: int):
        def callback(future: "Future[OptimizeResult]") -> None:
            try:
                result = future.result()
            except Exception as exc:  # pragma: no cover - defensive
                result = OptimizeResult(
                    name="<module>", status="rejected",
                    reason=f"worker_error: {exc}",
                )
            send(("result", req_id, result))

        return callback

    def export_metrics() -> None:
        if spec.metrics_out:
            try:
                obs.export_snapshot(spec.metrics_out)
            except OSError:  # pragma: no cover - disk trouble
                pass

    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):  # parent died
                return
            cmd = msg[0]
            if cmd == "submit":
                _, req_id, name, ir_text = msg
                try:
                    future = service.submit(ir_text, name=name)
                except Exception as exc:
                    send(("result", req_id, OptimizeResult(
                        name=name, status="rejected",
                        reason=f"worker_error: {exc}",
                    )))
                else:
                    future.add_done_callback(completion(req_id))
            elif cmd == "ping":
                with service._memo_lock:
                    counters = dict(service.counters)
                send(("pong", msg[1], counters))
            elif cmd == "register":
                try:
                    version = _register_in_worker(service.registry, msg[1])
                except Exception as exc:
                    send(("registered", None, str(exc)))
                else:
                    send(("registered", version, None))
            elif cmd == "drain":
                final = service.drain()
                export_metrics()
                send(("drained", final))
                return
            elif cmd == "close":
                service.drain(timeout=5.0)
                export_metrics()
                return
    except KeyboardInterrupt:  # pragma: no cover - interrupted run
        return
    finally:
        conn.close()


class _Pending:
    """One request the gateway has dispatched but not yet answered."""

    __slots__ = (
        "req_id", "future", "name", "tenant", "ir_text", "shard",
        "arrival", "retried", "key", "waiters",
    )

    def __init__(self, req_id, future, name, tenant, ir_text, shard, arrival):
        self.req_id = req_id
        self.future = future
        self.name = name
        self.tenant = tenant
        self.ir_text = ir_text
        self.shard = shard
        self.arrival = arrival
        self.retried = False
        #: Exact-text key for request coalescing (``None`` when the
        #: request was never registered for coalescing).
        self.key: Optional[str] = None
        #: Duplicate in-flight submissions riding on this computation:
        #: ``(future, name, arrival)`` per coalesced request.
        self.waiters: List[Tuple] = []


class _ShardHandle:
    """Parent-side state for one worker process."""

    __slots__ = (
        "index", "proc", "conn", "send_lock", "receiver", "last_pong",
        "ping_seq", "worker_counters", "draining", "dead", "drained",
        "final_counters", "restarts",
    )

    def __init__(self, index: int):
        self.index = index
        self.proc = None
        self.conn = None
        self.send_lock = threading.Lock()
        self.receiver: Optional[threading.Thread] = None
        self.last_pong = time.monotonic()
        self.ping_seq = 0
        self.worker_counters: Dict[str, int] = {}
        self.draining = False
        self.dead = False
        self.drained = threading.Event()
        self.final_counters: Optional[Dict[str, Any]] = None
        self.restarts = 0


@dataclass
class GatewayStats:
    """One coherent snapshot of gateway + per-shard worker counters."""

    counters: Dict[str, int]
    shed_reasons: Dict[str, int]
    per_shard: Dict[int, Dict[str, Any]]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "shed_reasons": dict(self.shed_reasons),
            "per_shard": {
                str(k): dict(v) for k, v in sorted(self.per_shard.items())
            },
        }


class _GatewayInstruments:
    """``repro_gateway_*`` handles, bound once at construction."""

    __slots__ = (
        "requests", "latency", "shed", "in_flight", "occupancy",
        "memo_hits", "memo_misses", "restarts", "failovers", "coalesced",
    )

    def __init__(self, registry, n_shards: int):
        self.requests = {
            s: registry.counter(
                "repro_gateway_requests_total",
                "gateway requests by outcome",
                labels={"status": s},
            )
            for s in ("ok", "fallback", "rejected", "shed")
        }
        self.latency = {
            s: registry.histogram(
                "repro_gateway_latency_seconds",
                "gateway end-to-end latency",
                labels={"status": s},
            )
            for s in ("ok", "fallback", "rejected")
        }
        self.shed = {
            r: registry.counter(
                "repro_gateway_shed_total",
                "requests shed by admission control",
                labels={"reason": r},
            )
            for r in ("queue_full", "rate_limited")
        }
        self.in_flight = registry.gauge(
            "repro_gateway_queue_depth",
            "requests dispatched and awaiting results",
        )
        self.occupancy = {
            i: registry.gauge(
                "repro_gateway_shard_occupancy",
                "in-flight requests per shard",
                labels={"shard": str(i)},
            )
            for i in range(n_shards)
        }
        self.memo_hits = registry.counter(
            "repro_gateway_routing_memo_hits_total",
            "requests routed from the exact-text memo (no re-parse)",
        )
        self.memo_misses = registry.counter(
            "repro_gateway_routing_memo_misses_total",
            "requests that paid a parse+fingerprint to route",
        )
        self.restarts = registry.counter(
            "repro_gateway_worker_restarts_total",
            "shard workers restarted after a crash or missed heartbeats",
        )
        self.failovers = registry.counter(
            "repro_gateway_failovers_total",
            "in-flight requests re-dispatched to a sibling shard",
        )
        self.coalesced = registry.counter(
            "repro_gateway_coalesced_total",
            "duplicate in-flight requests that shared one computation",
        )


class ShardedGateway:
    """Multi-process front door over N ``OptimizationService`` shards."""

    def __init__(
        self,
        spec: ShardSpec,
        n_shards: int = 2,
        *,
        max_pending: int = 64,
        tenant_rate: Optional[float] = None,
        tenant_burst: Optional[float] = None,
        tenant_rates: Optional[Dict[str, float]] = None,
        heartbeat_interval_s: float = 0.25,
        heartbeat_timeout_s: float = 5.0,
        max_restarts_per_shard: int = 100,
        route_memo_size: int = 65536,
        shard_metrics_template: Optional[str] = None,
        coalesce: bool = True,
    ):
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        if max_pending <= 0:
            raise ValueError("max_pending must be positive")
        self.spec = spec
        self.n_shards = n_shards
        self.max_pending = max_pending
        self.request_timeout_s = spec.request_timeout_s
        self.max_instructions = spec.max_instructions
        self.tenant_rate = tenant_rate
        self.tenant_burst = tenant_burst
        self.tenant_rates = dict(tenant_rates or {})
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.max_restarts_per_shard = max_restarts_per_shard
        #: ``str.format``-able template with ``{shard}``, e.g.
        #: ``"metrics-shard{shard}.json"`` — per-worker snapshot paths.
        self.shard_metrics_template = shard_metrics_template
        #: Share one computation across byte-identical in-flight requests.
        #: Coalesced duplicates bypass the ``max_pending`` window (they
        #: add no shard load), so disable this when client-side
        #: outstanding-future counts must stay inside the window.
        self.coalesce = coalesce

        self._ctx = mp.get_context()
        self._lock = threading.Lock()
        self._handles: List[_ShardHandle] = [
            _ShardHandle(i) for i in range(n_shards)
        ]
        self._pending: Dict[int, _Pending] = {}
        # Request coalescing: exact-text key -> req_id of the in-flight
        # computation duplicates should ride on. Entries live exactly as
        # long as their pending request (same lock).
        self._coalesce: Dict[str, int] = {}
        self._req_counter = 0
        self._started = False
        self._closed = False
        self._monitor: Optional[threading.Thread] = None
        self._monitor_stop = threading.Event()
        # Exact-text routing memo: text key -> ("s", shard) | ("r", reason).
        # Bounded LRU — stranded entries age out; values are tiny.
        from ..caching import LRUCache

        self._route_memo = LRUCache(route_memo_size)
        self._route_lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}
        self._bucket_lock = threading.Lock()
        self._reload_events: Dict[int, Tuple[threading.Event, List]] = {}
        self.model_version = spec.model_version

        self.counters: Dict[str, int] = {
            "requests": 0, "ok": 0, "fallback": 0, "rejected": 0,
            "shed": 0, "routed_memo_hits": 0, "routed_memo_misses": 0,
            "worker_restarts": 0, "failovers": 0, "coalesced": 0,
        }
        self.shed_reasons: Dict[str, int] = {}

        registry = get_registry()
        self._observe = registry.enabled
        self._instruments = (
            _GatewayInstruments(registry, n_shards) if self._observe else None
        )

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_agent(
        cls, agent, n_shards: int = 2, *, version: str = "v1", **kwargs
    ) -> "ShardedGateway":
        """Shard a :class:`~repro.core.agent_api.PosetRL` facade's policy.

        The online network is frozen (copied) into the spec, so continued
        training of the facade cannot mutate the serving weights.
        Keyword arguments splitting: :class:`ShardSpec` field names
        configure the per-worker services, the rest configures the
        gateway itself.
        """
        network = agent.agent.online
        frozen = QNetwork(
            network.state_dim, network.num_actions,
            network.hidden, network.learning_rate,
        )
        frozen.copy_from(network)
        spec_kwargs, gateway_kwargs = cls._split_kwargs(kwargs)
        spec = ShardSpec(
            network=frozen,
            action_space=agent.action_space_kind,
            episode_length=agent.episode_length,
            model_version=version,
            model_metadata=agent.checkpoint_metadata(),
            target=agent.target,
            **spec_kwargs,
        )
        return cls(spec, n_shards, **gateway_kwargs)

    @classmethod
    def from_checkpoint(
        cls,
        path: str,
        n_shards: int = 2,
        *,
        action_space: Optional[str] = None,
        version: str = "v1",
        **kwargs,
    ) -> "ShardedGateway":
        """Shard a saved ``.npz`` checkpoint (loaded worker-side)."""
        metadata = QNetwork.load_metadata(path)
        if action_space is None:
            action_space = str(metadata.get("action_space", "odg"))
        spec_kwargs, gateway_kwargs = cls._split_kwargs(kwargs)
        spec_kwargs.setdefault("target", str(metadata.get("target", "x86-64")))
        spec = ShardSpec(
            checkpoint=path,
            action_space=action_space,
            episode_length=int(
                metadata.get("episode_length", DEFAULT_EPISODE_LENGTH)
            ),
            model_version=version,
            **spec_kwargs,
        )
        return cls(spec, n_shards, **gateway_kwargs)

    _SPEC_FIELDS = frozenset(ShardSpec.__dataclass_fields__)

    @classmethod
    def _split_kwargs(cls, kwargs: Dict[str, Any]):
        spec_kwargs = {
            k: kwargs.pop(k) for k in list(kwargs) if k in cls._SPEC_FIELDS
        }
        return spec_kwargs, kwargs

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "ShardedGateway":
        with self._lock:
            if self._closed:
                raise RuntimeError("gateway has been stopped")
            if self._started:
                return self
            self._started = True
        for handle in self._handles:
            self._spawn_worker(handle)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-gateway-monitor",
            daemon=True,
        )
        self._monitor.start()
        return self

    def _spec_for(self, shard: int) -> ShardSpec:
        spec = self.spec
        if self.shard_metrics_template:
            spec = replace(
                spec,
                metrics_out=self.shard_metrics_template.format(shard=shard),
            )
        if spec.journal_dir is not None:
            # One journal subdirectory per shard: writers never contend,
            # and the trainer's JournalReader just lists every subdir.
            spec = replace(
                spec,
                journal_dir=os.path.join(spec.journal_dir, f"shard{shard}"),
            )
        return spec

    def _spawn_worker(self, handle: _ShardHandle) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, self._spec_for(handle.index)),
            daemon=True,
            name=f"repro-shard-{handle.index}",
        )
        proc.start()
        child_conn.close()
        handle.proc = proc
        handle.conn = parent_conn
        handle.dead = False
        handle.last_pong = time.monotonic()
        receiver = threading.Thread(
            target=self._receiver_loop, args=(handle, proc),
            name=f"repro-gateway-recv-{handle.index}", daemon=True,
        )
        handle.receiver = receiver
        receiver.start()

    def stop(self, timeout: float = 30.0) -> Dict[int, Dict[str, Any]]:
        """Graceful drain: flush every shard, return per-shard counters.

        Each worker stops accepting, completes its in-flight batches
        (results keep flowing back while it drains) and reports final
        counters before exiting. Unresolved futures (worker lost at the
        wrong moment) resolve as ``rejected: gateway_shutdown``.
        """
        with self._lock:
            if self._closed:
                return {
                    h.index: h.final_counters or {} for h in self._handles
                }
            self._closed = True
            handles = list(self._handles)
        self._monitor_stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
        for handle in handles:
            handle.draining = True
            self._send(handle, ("drain",))
        deadline = time.monotonic() + timeout
        for handle in handles:
            handle.drained.wait(max(0.0, deadline - time.monotonic()))
            if handle.proc is not None:
                handle.proc.join(timeout=max(0.1, deadline - time.monotonic()))
                if handle.proc.is_alive():  # pragma: no cover - defensive
                    handle.proc.terminate()
        # Fail anything still unresolved (e.g. a worker died mid-drain).
        with self._lock:
            leftovers = list(self._pending.values())
            self._pending.clear()
            self._coalesce.clear()
        for pending in leftovers:
            self._resolve_shed(pending.future, pending.name,
                               "gateway_shutdown: request abandoned",
                               arrival=pending.arrival, status="rejected")
            for w_future, w_name, w_arrival in pending.waiters:
                self._resolve_shed(w_future, w_name,
                                   "gateway_shutdown: request abandoned",
                                   arrival=w_arrival, status="rejected")
        return {
            h.index: h.final_counters or {} for h in self._handles
        }

    def __enter__(self) -> "ShardedGateway":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- client API ---------------------------------------------------------
    def submit(
        self,
        ir_text: str,
        name: str = "<module>",
        tenant: str = "default",
    ) -> "Future[OptimizeResult]":
        """Route one module to its shard; returns a future for the result.

        Admission runs on the caller's thread in cost order: token-bucket
        rate limit (no shared state beyond the tenant's bucket), bounded
        in-flight window (one dict length check — shedding under
        overload is deliberately the cheapest path through the gateway),
        then the routing memo / parse+fingerprint.
        """
        if self._closed:
            raise RuntimeError("gateway has been stopped")
        if not self._started:
            self.start()
        future: "Future[OptimizeResult]" = Future()
        arrival = time.monotonic()
        self._count("requests")

        rate = self.tenant_rates.get(tenant, self.tenant_rate)
        if rate is not None and not self._admit_tenant(tenant, rate):
            self._shed(future, name, arrival, "rate_limited",
                       f"shed: rate_limited tenant={tenant}")
            return future

        # Coalescing: a byte-identical request already in flight answers
        # this one too — one rollout, N futures. Checked before the
        # depth gate (a coalesced duplicate adds no shard load), after
        # the rate limit (each duplicate still spends a tenant token).
        key = text_key(ir_text)
        if self.coalesce:
            with self._lock:
                leader_id = self._coalesce.get(key)
                leader = (
                    self._pending.get(leader_id)
                    if leader_id is not None else None
                )
                if leader is not None:
                    leader.waiters.append((future, name, arrival))
                    self.counters["coalesced"] += 1
            if leader is not None:
                if self._observe:
                    self._instruments.coalesced.inc()
                return future
        with self._lock:
            depth = len(self._pending)
        if depth >= self.max_pending:
            self._shed(future, name, arrival, "queue_full",
                       f"shed: queue_full {depth} in flight "
                       f"(max_pending={self.max_pending})")
            return future

        route = self._route(ir_text, key=key)
        if route[0] == "r":
            self._resolve_shed(future, name, route[1], arrival=arrival,
                               status="rejected")
            self._count("rejected")
            return future
        shard = route[1]
        self._dispatch(
            future, name, tenant, ir_text, shard, arrival,
            key=key if self.coalesce else None,
        )
        return future

    def submit_request(
        self, request: OptimizeRequest, tenant: str = "default"
    ) -> "Future[OptimizeResult]":
        return self.submit(request.ir_text, name=request.name, tenant=tenant)

    def optimize(
        self,
        ir_text: str,
        name: str = "<module>",
        tenant: str = "default",
        timeout: Optional[float] = None,
    ) -> OptimizeResult:
        """Synchronous convenience: submit and wait (auto-starts)."""
        self.start()
        budget = (
            timeout if timeout is not None else self.request_timeout_s + 60.0
        )
        return self.submit(ir_text, name=name, tenant=tenant).result(
            timeout=budget
        )

    # -- admission ----------------------------------------------------------
    def _admit_tenant(self, tenant: str, rate: float) -> bool:
        with self._bucket_lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                burst = (
                    self.tenant_burst
                    if self.tenant_burst is not None
                    else max(1.0, rate)
                )
                bucket = TokenBucket(rate, burst)
                self._buckets[tenant] = bucket
            return bucket.try_acquire()

    def _route(
        self, ir_text: str, key: Optional[str] = None
    ) -> Tuple[str, Any]:
        """``("s", shard)`` or ``("r", reason)``, memoized on exact text."""
        if key is None:
            key = text_key(ir_text)
        with self._route_lock:
            memo = self._route_memo.get(key)
        if memo is not None:
            self._count("routed_memo_hits")
            if self._observe:
                self._instruments.memo_hits.inc()
            return memo
        self._count("routed_memo_misses")
        if self._observe:
            self._instruments.memo_misses.inc()
        try:
            module = parse_module(ir_text)
        except Exception as exc:
            memo = ("r", f"parse_error: {exc}")
        else:
            count = module.instruction_count
            if count > self.max_instructions:
                memo = (
                    "r",
                    f"oversized: {count} instructions exceed the "
                    f"gateway limit of {self.max_instructions}",
                )
            else:
                fingerprint = module_fingerprint(module)
                memo = ("s", shard_for_fingerprint(fingerprint, self.n_shards))
        with self._route_lock:
            self._route_memo.put(key, memo)
        return memo

    def shard_for(self, ir_text: str) -> int:
        """The shard this text routes to (raises on unroutable input)."""
        route = self._route(ir_text)
        if route[0] != "s":
            raise ValueError(route[1])
        return route[1]

    # -- dispatch and completion --------------------------------------------
    def _dispatch(
        self, future, name, tenant, ir_text, shard, arrival,
        retried: bool = False,
        key: Optional[str] = None,
        waiters: Optional[List[Tuple]] = None,
    ) -> None:
        with self._lock:
            handle = self._live_handle(shard)
            self._req_counter += 1
            req_id = self._req_counter
            pending = _Pending(
                req_id, future, name, tenant, ir_text, handle.index, arrival
            )
            pending.retried = retried
            if key is not None:
                pending.key = key
                self._coalesce[key] = req_id
            if waiters:
                pending.waiters = waiters
            self._pending[req_id] = pending
            self._publish_depth()
        self._send(handle, ("submit", req_id, name, ir_text))

    def _live_handle(self, shard: int) -> _ShardHandle:
        """Preferred shard, or the next sibling that is not failed.

        Called under ``self._lock``.
        """
        for offset in range(self.n_shards):
            handle = self._handles[(shard + offset) % self.n_shards]
            if not handle.dead:
                return handle
        # Every shard is momentarily dead (all mid-restart): keep the
        # preferred one — the death handler will fail the request over
        # once more when the send breaks, or restart wins the race.
        return self._handles[shard % self.n_shards]

    def _send(self, handle: _ShardHandle, msg: Tuple) -> None:
        try:
            with handle.send_lock:
                handle.conn.send(msg)
        except (BrokenPipeError, OSError, ValueError):
            # The receiver/monitor will notice the death and fail over
            # anything pending, including what we just tried to send.
            self._on_worker_death(handle)

    def _receiver_loop(self, handle: _ShardHandle, proc) -> None:
        conn = handle.conn
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                if not (handle.draining or self._closed):
                    self._on_worker_death(handle, proc=proc)
                return
            kind = msg[0]
            if kind == "result":
                self._complete(handle, msg[1], msg[2])
            elif kind == "pong":
                handle.last_pong = time.monotonic()
                handle.worker_counters = msg[2]
            elif kind == "registered":
                slot = self._reload_events.pop(handle.index, None)
                if slot is not None:
                    slot[1].extend(msg[1:])
                    slot[0].set()
            elif kind == "drained":
                handle.final_counters = msg[1]
                handle.worker_counters = dict(
                    msg[1].get("counters", {})
                )
                handle.drained.set()

    def _complete(
        self, handle: _ShardHandle, req_id: int, result: OptimizeResult
    ) -> None:
        with self._lock:
            pending = self._pending.pop(req_id, None)
            if pending is not None:
                self._drop_coalesce(pending)
            self._publish_depth()
        if pending is None:  # already failed over / shutdown
            return
        now = time.monotonic()
        latency_s = now - pending.arrival
        out = replace(
            result, name=pending.name, shard=handle.index,
            latency_s=latency_s,
        )
        status = out.status
        self._count(status if status in self.counters else "rejected")
        if self._observe:
            self._instruments.requests[
                status if status in self._instruments.requests else "rejected"
            ].inc()
            bucket = self._instruments.latency.get(status)
            if bucket is not None:
                bucket.observe(latency_s)
        pending.future.set_result(out)
        # One computation, N futures: every coalesced duplicate gets the
        # same result under its own name and latency.
        for w_future, w_name, w_arrival in pending.waiters:
            w_latency = now - w_arrival
            self._count(status if status in self.counters else "rejected")
            if self._observe:
                self._instruments.requests[
                    status if status in self._instruments.requests
                    else "rejected"
                ].inc()
                bucket = self._instruments.latency.get(status)
                if bucket is not None:
                    bucket.observe(w_latency)
            w_future.set_result(replace(
                result, name=w_name, shard=handle.index, latency_s=w_latency,
            ))

    def _drop_coalesce(self, pending: _Pending) -> None:
        """Remove the coalesce entry owned by ``pending`` (under lock)."""
        if (
            pending.key is not None
            and self._coalesce.get(pending.key) == pending.req_id
        ):
            del self._coalesce[pending.key]

    # -- shedding -----------------------------------------------------------
    def _shed(self, future, name, arrival, tag: str, reason: str) -> None:
        self._count("shed")
        with self._lock:
            self.shed_reasons[tag] = self.shed_reasons.get(tag, 0) + 1
        if self._observe:
            self._instruments.requests["shed"].inc()
            self._instruments.shed[tag].inc()
        self._resolve_shed(future, name, reason, arrival=arrival,
                           status="rejected")

    def _resolve_shed(
        self, future, name, reason, *, arrival: float, status: str
    ) -> None:
        future.set_result(OptimizeResult(
            name=name, status=status, reason=reason,
            latency_s=time.monotonic() - arrival,
        ))

    # -- liveness: heartbeat, restart, failover ------------------------------
    def _monitor_loop(self) -> None:
        while not self._monitor_stop.wait(self.heartbeat_interval_s):
            now = time.monotonic()
            for handle in self._handles:
                if handle.dead or handle.draining:
                    continue
                proc = handle.proc
                if proc is not None and not proc.is_alive():
                    self._on_worker_death(handle, proc=proc)
                    continue
                if now - handle.last_pong > self.heartbeat_timeout_s:
                    # Wedged (alive but unresponsive): kill, then the
                    # standard death path restarts it.
                    if proc is not None:
                        proc.kill()
                    self._on_worker_death(handle, proc=proc)
                    continue
                handle.ping_seq += 1
                self._send(handle, ("ping", handle.ping_seq))

    def _on_worker_death(self, handle: _ShardHandle, proc=None) -> None:
        """Mark dead, restart the worker, fail pending over to a sibling.

        Race-safe: the receiver thread (EOF) and the monitor (is_alive /
        heartbeat) can both report the same death; only the first caller
        acts, and a death of the *previous* process generation observed
        late is ignored.
        """
        with self._lock:
            if self._closed or handle.draining:
                return
            if proc is not None and proc is not handle.proc:
                return  # stale: a newer generation is already running
            if handle.dead:
                return
            handle.dead = True
            orphans = [
                p for p in self._pending.values() if p.shard == handle.index
            ]
            for p in orphans:
                del self._pending[p.req_id]
                self._drop_coalesce(p)
            self._publish_depth()

        if handle.proc is not None:
            try:
                handle.proc.kill()
            except (OSError, ValueError):  # pragma: no cover
                pass
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover
            pass

        restart = handle.restarts < self.max_restarts_per_shard
        if restart:
            handle.restarts += 1
            self._count("worker_restarts")
            if self._observe:
                self._instruments.restarts.inc()
            self._spawn_worker(handle)

        # Fail over the orphans to the next shard (the restarted worker
        # itself when n_shards == 1 — its caches are cold but it lives).
        sibling = (handle.index + 1) % self.n_shards if self.n_shards > 1 \
            else handle.index
        for p in orphans:
            if p.retried:
                reason = f"worker_lost: shard {handle.index} died twice"
                self._count("rejected")
                self._resolve_shed(
                    p.future, p.name, reason,
                    arrival=p.arrival, status="rejected",
                )
                for w_future, w_name, w_arrival in p.waiters:
                    self._count("rejected")
                    self._resolve_shed(
                        w_future, w_name, reason,
                        arrival=w_arrival, status="rejected",
                    )
                continue
            self._count("failovers")
            if self._observe:
                self._instruments.failovers.inc()
            self._dispatch(
                p.future, p.name, p.tenant, p.ir_text, sibling, p.arrival,
                retried=True, key=p.key, waiters=p.waiters,
            )

    # -- observability ------------------------------------------------------
    def _count(self, key: str, n: int = 1) -> None:
        with self._lock:
            self.counters[key] = self.counters.get(key, 0) + n

    def _publish_depth(self) -> None:
        """Refresh depth/occupancy gauges. Called under ``self._lock``."""
        if not self._observe:
            return
        self._instruments.in_flight.set(len(self._pending))
        per_shard = [0] * self.n_shards
        for p in self._pending.values():
            per_shard[p.shard] += 1
        for i, gauge in self._instruments.occupancy.items():
            gauge.set(per_shard[i])

    def stats(self) -> GatewayStats:
        """Gateway counters plus the latest per-shard worker counters.

        Worker counters refresh on every heartbeat pong and become final
        totals after :meth:`stop` (drain reports them synchronously).
        """
        with self._lock:
            counters = dict(self.counters)
            shed = dict(self.shed_reasons)
            per_shard = {
                h.index: {
                    "counters": dict(h.worker_counters),
                    "restarts": h.restarts,
                    "alive": bool(h.proc is not None and h.proc.is_alive()),
                }
                for h in self._handles
            }
        return GatewayStats(
            counters=counters, shed_reasons=shed, per_shard=per_shard
        )

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._pending)

    # -- hot reload ---------------------------------------------------------
    def hot_reload(
        self,
        *,
        checkpoint: Optional[str] = None,
        network: Optional[QNetwork] = None,
        version: str,
        action_space: Optional[str] = None,
        episode_length: Optional[int] = None,
        metadata: Optional[Dict[str, Any]] = None,
        activate: bool = True,
        timeout: float = 30.0,
    ) -> Dict[int, Optional[str]]:
        """Broadcast a new model version to every shard worker.

        Per-worker semantics match a single service's hot reload:
        registration + activation is atomic inside each worker, requests
        already admitted keep their pinned version, and the per-shard
        ``ResultCache`` keys on ``(fingerprint, model version)`` so no
        stale sequences are served. Returns ``{shard: error_or_None}``.
        """
        if (checkpoint is None) == (network is None):
            raise ValueError("provide exactly one of checkpoint / network")
        payload = {
            "checkpoint": checkpoint,
            "network": network,
            "version": version,
            "action_space": action_space or self.spec.action_space,
            "episode_length": episode_length or self.spec.episode_length,
            "metadata": metadata,
            "activate": activate,
        }
        return self._broadcast_register(
            payload, version=version, activate=activate, timeout=timeout
        )

    def activate_version(
        self, version: str, timeout: float = 30.0
    ) -> Dict[int, Optional[str]]:
        """Re-activate a version every worker already holds (rollback).

        No weights cross the pipe: each worker's registry still has the
        previously registered version and simply switches back to it.
        Returns ``{shard: error_or_None}`` like :meth:`hot_reload`.
        """
        payload = {"activate_only": True, "version": version}
        return self._broadcast_register(
            payload, version=version, activate=True, timeout=timeout
        )

    def _broadcast_register(
        self,
        payload: Dict[str, Any],
        *,
        version: str,
        activate: bool,
        timeout: float,
    ) -> Dict[int, Optional[str]]:
        self.start()
        outcomes: Dict[int, Optional[str]] = {}
        waits: List[Tuple[_ShardHandle, threading.Event, List]] = []
        for handle in self._handles:
            event = threading.Event()
            replies: List = []
            self._reload_events[handle.index] = (event, replies)
            self._send(handle, ("register", payload))
            waits.append((handle, event, replies))
        deadline = time.monotonic() + timeout
        for handle, event, replies in waits:
            if not event.wait(max(0.0, deadline - time.monotonic())):
                outcomes[handle.index] = "timeout waiting for registration"
                self._reload_events.pop(handle.index, None)
                continue
            registered_version, error = replies
            outcomes[handle.index] = error
        if activate and all(e is None for e in outcomes.values()):
            self.model_version = version
        return outcomes
