"""Load generators for the serving stack: closed-loop and open-loop.

:func:`run_load` is the **closed-loop** harness: ``concurrency`` client
threads submit back-to-back (each waits for its result before sending
the next), so offered load adapts to service throughput. Good for
measuring capacity; useless for studying overload, because a saturated
service automatically throttles its own clients.

:func:`run_open_loop` is the **open-loop** harness: arrivals follow a
Poisson process at a fixed offered rate, *independent of completions* —
exactly the regime where queues grow without bound unless admission
control sheds. It models tenant mixes (weighted traffic shares with an
optional per-tenant hint passed through to a gateway's rate limiter)
and bursts (periodic windows where the arrival rate is multiplied), and
reports goodput vs offered load, shed rate, per-tenant percentiles and
the in-flight high-water mark. Per-request latencies are recorded from
submit to result; reports serialize for
``benchmarks/results/perf_serving.json`` / ``perf_gateway.json``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .service import OptimizationService, OptimizeRequest, OptimizeResult


@dataclass
class LoadReport:
    """Aggregate outcome of one load run."""

    requests: int
    concurrency: int
    wall_seconds: float
    latencies_s: List[float] = field(default_factory=list)
    status_counts: Dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.wall_seconds if self.wall_seconds else 0.0

    def latency_percentile(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_s), q))

    @property
    def p50_ms(self) -> float:
        return 1e3 * self.latency_percentile(50)

    @property
    def p95_ms(self) -> float:
        return 1e3 * self.latency_percentile(95)

    @property
    def p99_ms(self) -> float:
        return 1e3 * self.latency_percentile(99)

    def as_dict(self) -> Dict[str, object]:
        lat = np.asarray(self.latencies_s) if self.latencies_s else np.zeros(1)
        return {
            "requests": self.requests,
            "concurrency": self.concurrency,
            "wall_seconds": round(self.wall_seconds, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "latency_ms": {
                "mean": round(1e3 * float(lat.mean()), 3),
                "p50": round(self.p50_ms, 3),
                "p95": round(self.p95_ms, 3),
                "p99": round(self.p99_ms, 3),
                "max": round(1e3 * float(lat.max()), 3),
            },
            "status_counts": dict(self.status_counts),
            "cache_hits": self.cache_hits,
        }


def run_load(
    service: OptimizationService,
    requests: Sequence[OptimizeRequest],
    concurrency: int = 8,
    collect_results: bool = False,
) -> LoadReport:
    """Drive ``requests`` through ``service`` with closed-loop clients.

    Requests are consumed in order from a shared index; thread ``k`` does
    not own a fixed slice, so a slow request never idles the other
    clients. The service must already be constructed; it is started if
    needed and left running.
    """
    if not requests:
        raise ValueError("request pool is empty")
    concurrency = max(1, min(concurrency, len(requests)))
    service.start()

    next_index = [0]
    index_lock = threading.Lock()
    latencies: List[List[float]] = [[] for _ in range(concurrency)]
    outcomes: List[List[OptimizeResult]] = [[] for _ in range(concurrency)]
    errors: List[BaseException] = []

    def client(slot: int) -> None:
        while True:
            with index_lock:
                i = next_index[0]
                if i >= len(requests):
                    return
                next_index[0] = i + 1
            request = requests[i]
            start = time.monotonic()
            try:
                result = service.submit_request(request).result(
                    timeout=service.request_timeout_s + 60.0
                )
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)
                return
            latencies[slot].append(time.monotonic() - start)
            outcomes[slot].append(result)

    threads = [
        threading.Thread(target=client, args=(slot,), daemon=True)
        for slot in range(concurrency)
    ]
    start = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - start
    if errors:
        raise RuntimeError(f"load generator client failed: {errors[0]!r}")

    flat_results = [r for per_slot in outcomes for r in per_slot]
    status_counts: Dict[str, int] = {}
    for result in flat_results:
        status_counts[result.status] = status_counts.get(result.status, 0) + 1
    report = LoadReport(
        requests=len(flat_results),
        concurrency=concurrency,
        wall_seconds=wall,
        latencies_s=[l for per_slot in latencies for l in per_slot],
        status_counts=status_counts,
        cache_hits=sum(1 for r in flat_results if r.cache_hit),
    )
    if collect_results:
        report.results = flat_results  # type: ignore[attr-defined]
    return report


def request_pool(
    corpus: Sequence, count: int
) -> List[OptimizeRequest]:
    """``count`` requests cycling over ``(name, ir_text)`` pairs."""
    if not corpus:
        raise ValueError("corpus is empty")
    pool: List[OptimizeRequest] = []
    for i in range(count):
        name, ir_text = corpus[i % len(corpus)]
        pool.append(OptimizeRequest(ir_text=ir_text, name=name))
    return pool


# ---------------------------------------------------------------------------
# Open-loop harness
# ---------------------------------------------------------------------------

#: Statuses that count toward goodput. ``fallback`` still returns a valid
#: (-Oz) optimization to the client, so it is useful work; ``rejected``
#: (including gateway sheds, whose reason starts with ``shed:``) is not.
GOOD_STATUSES = ("ok", "fallback")


@dataclass
class TenantMix:
    """One tenant's slice of open-loop traffic.

    ``weight`` is the tenant's share of arrivals (weights are normalized
    across the mix); ``rate`` optionally overrides the gateway's default
    per-tenant token-bucket rate for this tenant.
    """

    name: str
    weight: float = 1.0
    rate: Optional[float] = None


@dataclass
class OpenLoopReport:
    """Aggregate outcome of one open-loop (fixed offered rate) run."""

    offered: int
    completed: int
    wall_seconds: float
    arrival_rate: float
    latencies_s: List[float] = field(default_factory=list)
    status_counts: Dict[str, int] = field(default_factory=dict)
    shed: int = 0
    cache_hits: int = 0
    max_in_flight: int = 0
    per_tenant: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def good(self) -> int:
        return sum(self.status_counts.get(s, 0) for s in GOOD_STATUSES)

    @property
    def offered_rps(self) -> float:
        return self.offered / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def goodput_rps(self) -> float:
        return self.good / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    def latency_percentile(self, q: float) -> float:
        """Percentile over *served* latencies (sheds resolve in
        microseconds and would drag every quantile toward zero)."""
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_s), q))

    @property
    def p50_ms(self) -> float:
        return 1e3 * self.latency_percentile(50)

    @property
    def p95_ms(self) -> float:
        return 1e3 * self.latency_percentile(95)

    @property
    def p99_ms(self) -> float:
        return 1e3 * self.latency_percentile(99)

    def as_dict(self) -> Dict[str, object]:
        lat = np.asarray(self.latencies_s) if self.latencies_s else np.zeros(1)
        return {
            "offered": self.offered,
            "completed": self.completed,
            "wall_seconds": round(self.wall_seconds, 4),
            "arrival_rate_rps": round(self.arrival_rate, 2),
            "offered_rps": round(self.offered_rps, 2),
            "goodput_rps": round(self.goodput_rps, 2),
            "shed": self.shed,
            "shed_rate": round(self.shed_rate, 4),
            "max_in_flight": self.max_in_flight,
            "served_latency_ms": {
                "mean": round(1e3 * float(lat.mean()), 3),
                "p50": round(self.p50_ms, 3),
                "p95": round(self.p95_ms, 3),
                "p99": round(self.p99_ms, 3),
                "max": round(1e3 * float(lat.max()), 3),
            },
            "status_counts": dict(self.status_counts),
            "cache_hits": self.cache_hits,
            "per_tenant": {k: dict(v) for k, v in self.per_tenant.items()},
        }


def _percentiles(values: List[float]) -> Dict[str, float]:
    if not values:
        return {"p50_ms": 0.0, "p99_ms": 0.0}
    arr = np.asarray(values)
    return {
        "p50_ms": round(1e3 * float(np.percentile(arr, 50)), 3),
        "p99_ms": round(1e3 * float(np.percentile(arr, 99)), 3),
    }


def run_open_loop(
    target,
    requests: Sequence[OptimizeRequest],
    *,
    arrival_rate: float,
    total: Optional[int] = None,
    duration_s: Optional[float] = None,
    seed: int = 0,
    burst_factor: float = 1.0,
    burst_every_s: float = 0.0,
    burst_duty: float = 0.5,
    tenants: Optional[Sequence[TenantMix]] = None,
    result_timeout_s: float = 120.0,
) -> OpenLoopReport:
    """Offer Poisson traffic at ``arrival_rate`` req/s, completions be damned.

    ``target`` is anything with ``submit_request`` — an
    :class:`OptimizationService` or a
    :class:`~repro.serving.gateway.ShardedGateway` (whose
    ``submit_request`` additionally accepts the tenant; detected by
    signature so a plain service works unchanged). Arrivals come from a
    single dispatcher thread with pre-drawn exponential gaps (seeded —
    two runs offer the identical schedule); a dispatcher that falls
    behind the schedule does not re-plan, it catches up, so the offered
    rate is honoured on average even when ``submit`` itself is slow.

    The run length is ``total`` arrivals or ``duration_s`` seconds of
    schedule, whichever is given (``total`` wins if both). Bursts: when
    ``burst_every_s > 0``, each window of that length spends
    ``burst_duty`` of its start multiplying the rate by ``burst_factor``
    — e.g. ``burst_every_s=2, burst_duty=0.25, burst_factor=8`` is a
    0.5 s spike at 8x every 2 s.

    Completions are recorded from done-callbacks; the report therefore
    reflects end-to-end latency including any queueing, and ``shed``
    counts results whose reason marks them as admission-control drops.
    """
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    if not requests:
        raise ValueError("request pool is empty")
    if total is None and duration_s is None:
        raise ValueError("give total arrivals or duration_s")

    import inspect

    takes_tenant = "tenant" in inspect.signature(
        target.submit_request
    ).parameters
    mix = list(tenants) if tenants else [TenantMix("default")]
    weights = np.asarray([max(0.0, t.weight) for t in mix], dtype=float)
    if weights.sum() <= 0:
        raise ValueError("tenant weights must sum to a positive value")
    weights = weights / weights.sum()

    rng = np.random.default_rng(seed)

    def rate_at(t: float) -> float:
        if burst_every_s > 0 and (t % burst_every_s) < burst_duty * burst_every_s:
            return arrival_rate * burst_factor
        return arrival_rate

    # Pre-draw the schedule: (offset_s, request_index, tenant_index).
    schedule: List[tuple] = []
    t = 0.0
    i = 0
    while True:
        if total is not None and len(schedule) >= total:
            break
        if total is None and t >= duration_s:
            break
        t += float(rng.exponential(1.0 / rate_at(t)))
        if total is None and t >= duration_s:
            break
        tenant_idx = int(rng.choice(len(mix), p=weights))
        schedule.append((t, i % len(requests), tenant_idx))
        i += 1
    if not schedule:
        raise ValueError("schedule is empty; raise arrival_rate or duration_s")

    lock = threading.Lock()
    done = threading.Event()
    state = {
        "completed": 0,
        "in_flight": 0,
        "max_in_flight": 0,
        "shed": 0,
        "cache_hits": 0,
    }
    status_counts: Dict[str, int] = {}
    served_latencies: List[float] = []
    tenant_served: Dict[str, List[float]] = {t.name: [] for t in mix}
    tenant_counts: Dict[str, Dict[str, int]] = {
        t.name: {"offered": 0, "good": 0, "shed": 0} for t in mix
    }
    offered_total = len(schedule)

    def completion(tenant: str, submitted: float):
        def callback(future) -> None:
            try:
                result = future.result()
            except Exception:  # noqa: BLE001 - count as rejected
                result = None
            latency = time.monotonic() - submitted
            with lock:
                state["in_flight"] -= 1
                state["completed"] += 1
                if result is None:
                    status_counts["error"] = status_counts.get("error", 0) + 1
                else:
                    status = result.status
                    status_counts[status] = status_counts.get(status, 0) + 1
                    if result.cache_hit:
                        state["cache_hits"] += 1
                    is_shed = bool(
                        result.reason and result.reason.startswith("shed")
                    )
                    if is_shed:
                        state["shed"] += 1
                        tenant_counts[tenant]["shed"] += 1
                    elif status in GOOD_STATUSES:
                        tenant_counts[tenant]["good"] += 1
                        served_latencies.append(latency)
                        tenant_served[tenant].append(latency)
                if state["completed"] >= offered_total:
                    done.set()

        return callback

    start = time.monotonic()
    for offset, req_idx, tenant_idx in schedule:
        now = time.monotonic() - start
        if offset > now:
            time.sleep(offset - now)
        request = requests[req_idx]
        tenant = mix[tenant_idx].name
        submitted = time.monotonic()
        with lock:
            state["in_flight"] += 1
            if state["in_flight"] > state["max_in_flight"]:
                state["max_in_flight"] = state["in_flight"]
            tenant_counts[tenant]["offered"] += 1
        try:
            if takes_tenant:
                future = target.submit_request(request, tenant=tenant)
            else:
                future = target.submit_request(request)
        except Exception:  # noqa: BLE001 - target refused outright
            with lock:
                state["in_flight"] -= 1
                state["completed"] += 1
                status_counts["error"] = status_counts.get("error", 0) + 1
                if state["completed"] >= offered_total:
                    done.set()
            continue
        future.add_done_callback(completion(tenant, submitted))
    # Open loop ends when the last *arrival* is offered; wait for the
    # stragglers so percentiles include requests completed after that.
    done.wait(timeout=result_timeout_s)
    wall = time.monotonic() - start

    per_tenant: Dict[str, Dict[str, float]] = {}
    for t_mix in mix:
        name = t_mix.name
        counts = tenant_counts[name]
        stats: Dict[str, float] = dict(counts)
        stats.update(_percentiles(tenant_served[name]))
        if counts["offered"]:
            stats["shed_rate"] = round(counts["shed"] / counts["offered"], 4)
        per_tenant[name] = stats

    return OpenLoopReport(
        offered=offered_total,
        completed=state["completed"],
        wall_seconds=wall,
        arrival_rate=arrival_rate,
        latencies_s=served_latencies,
        status_counts=status_counts,
        shed=state["shed"],
        cache_hits=state["cache_hits"],
        max_in_flight=state["max_in_flight"],
        per_tenant=per_tenant,
    )
