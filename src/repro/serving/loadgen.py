"""Closed-loop load generator for :class:`OptimizationService`.

``concurrency`` client threads pull requests from a shared pool and
submit them back-to-back (each thread waits for its result before
sending the next — closed-loop, so offered load adapts to service
throughput). Per-request latencies are recorded from submit to result;
the report carries throughput and p50/p95/p99 latency plus per-status
counts, ready for ``benchmarks/results/perf_serving.json``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .service import OptimizationService, OptimizeRequest, OptimizeResult


@dataclass
class LoadReport:
    """Aggregate outcome of one load run."""

    requests: int
    concurrency: int
    wall_seconds: float
    latencies_s: List[float] = field(default_factory=list)
    status_counts: Dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.wall_seconds if self.wall_seconds else 0.0

    def latency_percentile(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_s), q))

    @property
    def p50_ms(self) -> float:
        return 1e3 * self.latency_percentile(50)

    @property
    def p95_ms(self) -> float:
        return 1e3 * self.latency_percentile(95)

    @property
    def p99_ms(self) -> float:
        return 1e3 * self.latency_percentile(99)

    def as_dict(self) -> Dict[str, object]:
        lat = np.asarray(self.latencies_s) if self.latencies_s else np.zeros(1)
        return {
            "requests": self.requests,
            "concurrency": self.concurrency,
            "wall_seconds": round(self.wall_seconds, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "latency_ms": {
                "mean": round(1e3 * float(lat.mean()), 3),
                "p50": round(self.p50_ms, 3),
                "p95": round(self.p95_ms, 3),
                "p99": round(self.p99_ms, 3),
                "max": round(1e3 * float(lat.max()), 3),
            },
            "status_counts": dict(self.status_counts),
            "cache_hits": self.cache_hits,
        }


def run_load(
    service: OptimizationService,
    requests: Sequence[OptimizeRequest],
    concurrency: int = 8,
    collect_results: bool = False,
) -> LoadReport:
    """Drive ``requests`` through ``service`` with closed-loop clients.

    Requests are consumed in order from a shared index; thread ``k`` does
    not own a fixed slice, so a slow request never idles the other
    clients. The service must already be constructed; it is started if
    needed and left running.
    """
    if not requests:
        raise ValueError("request pool is empty")
    concurrency = max(1, min(concurrency, len(requests)))
    service.start()

    next_index = [0]
    index_lock = threading.Lock()
    latencies: List[List[float]] = [[] for _ in range(concurrency)]
    outcomes: List[List[OptimizeResult]] = [[] for _ in range(concurrency)]
    errors: List[BaseException] = []

    def client(slot: int) -> None:
        while True:
            with index_lock:
                i = next_index[0]
                if i >= len(requests):
                    return
                next_index[0] = i + 1
            request = requests[i]
            start = time.monotonic()
            try:
                result = service.submit_request(request).result(
                    timeout=service.request_timeout_s + 60.0
                )
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)
                return
            latencies[slot].append(time.monotonic() - start)
            outcomes[slot].append(result)

    threads = [
        threading.Thread(target=client, args=(slot,), daemon=True)
        for slot in range(concurrency)
    ]
    start = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - start
    if errors:
        raise RuntimeError(f"load generator client failed: {errors[0]!r}")

    flat_results = [r for per_slot in outcomes for r in per_slot]
    status_counts: Dict[str, int] = {}
    for result in flat_results:
        status_counts[result.status] = status_counts.get(result.status, 0) + 1
    report = LoadReport(
        requests=len(flat_results),
        concurrency=concurrency,
        wall_seconds=wall,
        latencies_s=[l for per_slot in latencies for l in per_slot],
        status_counts=status_counts,
        cache_hits=sum(1 for r in flat_results if r.cache_hit),
    )
    if collect_results:
        report.results = flat_results  # type: ignore[attr-defined]
    return report


def request_pool(
    corpus: Sequence, count: int
) -> List[OptimizeRequest]:
    """``count`` requests cycling over ``(name, ir_text)`` pairs."""
    if not corpus:
        raise ValueError("corpus is empty")
    pool: List[OptimizeRequest] = []
    for i in range(count):
        name, ir_text = corpus[i % len(corpus)]
        pool.append(OptimizeRequest(ir_text=ir_text, name=name))
    return pool
